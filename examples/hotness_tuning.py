#!/usr/bin/env python3
"""Hotness-criterion tuning (the paper's Figure 12):

Under skewed (zipfian) access, migrating a small hot fraction of the data
buys almost all of the performance; under uniform access the criterion is
a real knob trading writes for throughput.

Run:  python examples/hotness_tuning.py
"""

from repro.bench.experiments import fig12_hotness


def main() -> None:
    print("sweeping the hotness criterion (this runs the Figure 12 experiment)...\n")
    result = fig12_hotness.run(ops=1_000)
    print(result.report())
    zipf = result.sweeps["zipfian"]
    print(
        f"\ntakeaway: under zipfian access, migrating the top 10% "
        f"({zipf[0].write_mb:.1f} MB of writes) already delivers "
        f"{zipf[0].throughput_mbps / zipf[-1].throughput_mbps:.0%} of the "
        f"full-migration throughput."
    )


if __name__ == "__main__":
    main()
