#!/usr/bin/env python3
"""Database scenario (the paper's Figure 10, interactively):

Age an Ext4 filesystem, load a RocksDB-like LSM store whose tables land in
fragmented free space, run zipfian YCSB-C, and defragment the hot data
with FragPicker while the workload keeps running.

Run:  python examples/database_defrag.py
"""

from repro import GIB, KIB, MIB, FragPicker, FragPickerConfig, make_device, make_filesystem
from repro.bench.harness import corun_until_background_done
from repro.core.report import DefragReport
from repro.workloads import LsmConfig, LsmStore, YcsbConfig, YcsbWorkload, age_filesystem


def main() -> None:
    fs = make_filesystem("ext4", make_device("optane", capacity=2 * GIB))

    print("aging the filesystem (Dabre-profile substitute)...")
    aging = age_filesystem(fs, fill_fraction=0.99, delete_fraction=0.4,
                           min_file=8 * KIB, max_file=64 * KIB, seed=1)
    print(f"  {aging.files_created} files created, {aging.files_deleted} deleted, "
          f"free space shredded into {aging.free_runs} runs")

    print("loading the LSM store (128 KiB blocks, O_DIRECT)...")
    store = LsmStore(fs, LsmConfig(block_size=128 * KIB))
    workload = YcsbWorkload(store, YcsbConfig(record_count=20_000, value_size=1024))
    now = workload.load(0.0)
    frags = [fs.inode_of(p).fragment_count() for p in store.files()]
    print(f"  tables: {len(frags)}, fragments per table: {frags}")

    fs.drop_caches()
    now, before = workload.run_ops(3_000, now)
    print(f"YCSB-C before defrag: {before:,.0f} ops/s")

    # Analysis while the workload runs (the eBPF window).
    picker = FragPicker(fs, FragPickerConfig(hotness_criterion=0.5))
    with picker.monitor(apps={"rocksdb"}) as monitor:
        now, during_analysis = workload.run_ops(3_000, now)
    print(f"YCSB-C during analysis: {during_analysis:,.0f} ops/s "
          f"({(1 - during_analysis / before) * 100:.1f}% overhead)")

    # Migration co-running with the workload.
    plans = picker.analyze(monitor.records, paths=store.files())
    report = DefragReport(tool="fragpicker")
    fg, _bg = corun_until_background_done(
        workload.actor(duration=float("inf")),
        picker.actor(plans, report_out=report),
        start=now,
    )
    print(f"migration took {report.elapsed:.2f}s, moved "
          f"{report.write_bytes / MIB:.1f} MiB "
          f"(workload ran at {fg.timeline.rate():,.0f} ops/s meanwhile)")

    now, after = workload.run_ops(3_000, max(fg.now, report.finished_at))
    print(f"YCSB-C after defrag: {after:,.0f} ops/s (+{(after / before - 1) * 100:.0f}%)")


if __name__ == "__main__":
    main()
