#!/usr/bin/env python3
"""Fleet tour: defrag-as-a-service across a population of volumes.

Builds a seed-keyed fleet (mixed filesystems, device models, aging
profiles, workloads), lets the controller admit FragPicker jobs as
volumes cross the fragmentation trigger — under a global job cap and a
fleet-wide migration budget — and then answers the two operator
questions the SLO report exists for:

1. Does the service actually drain the backlog?  (the volumes-above-
   threshold curve over scheduler ticks)
2. What does it cost the foreground?  (p99 read latency with the
   scheduler on vs. off, same fleet, same seed)

Everything runs in virtual time, so the whole tour takes a few seconds
and both runs are byte-reproducible (note the fingerprints).

Run:  PYTHONPATH=src python examples/fleet_tour.py
"""

from repro.constants import MIB
from repro.fleet import FleetConfig, run_fleet


def curve(rows) -> str:
    return " ".join(str(row.volumes_above) for row in rows)


def main() -> None:
    fleet = dict(volumes=24, seed=7, ticks=10)

    print("== scheduler ON: trigger 4.0 extents/file, 4 MiB/tick budget ==")
    on = run_fleet(FleetConfig(**fleet))
    print(on.text())

    print("\n== scheduler STARVED: same fleet, 1-byte budget ==")
    # jobs are still admitted, but no range can ever reserve payload:
    # the fleet behaves as if defragmentation were disabled
    off = run_fleet(FleetConfig(**fleet, budget_per_tick=1))
    print("  volumes above 4.0 extents/file, per tick:")
    print(f"    starved: {curve(off.ticks)}   (the backlog never drains)")
    print(f"    on     : {curve(on.ticks)}   (the service drains it)")

    print("\n== what the service cost (and bought) the foreground ==")
    print(f"  read latency starved: p50 {off.fg_read_p50_s * 1e3:6.3f} ms  "
          f"p99 {off.fg_read_p99_s * 1e3:6.3f} ms  "
          f"mean {off.fg_read_mean_s * 1e3:6.3f} ms")
    print(f"  read latency on     : p50 {on.fg_read_p50_s * 1e3:6.3f} ms  "
          f"p99 {on.fg_read_p99_s * 1e3:6.3f} ms  "
          f"mean {on.fg_read_mean_s * 1e3:6.3f} ms")
    print(f"  payload migrated    : {on.migrated_payload_bytes / MIB:8.2f} MiB, "
          f"max {on.max_tick_migrated / MIB:.2f} MiB in any tick "
          f"(budget {on.config['budget_per_tick'] / MIB:.0f} MiB)")

    print("\n== reproducibility ==")
    again = run_fleet(FleetConfig(**fleet))
    print(f"  fingerprint run 1: {on.fingerprint}")
    print(f"  fingerprint run 2: {again.fingerprint} "
          f"({'identical' if on.fingerprint == again.fingerprint else 'DRIFTED'})")


if __name__ == "__main__":
    main()
