#!/usr/bin/env python3
"""Quickstart: fragment a file, watch requests split, defragment with
FragPicker, and compare against e4defrag.

Run:  python examples/quickstart.py
"""

from repro import FragPicker, MIB, e4defrag, fragment_count, make_device, make_filesystem
from repro.workloads import make_paper_synthetic_file, sequential_read


def main() -> None:
    # A fresh Ext4 on a simulated Optane SSD.
    fs = make_filesystem("ext4", make_device("optane"))

    # Build the paper's synthetic layout: repeating units of thirty-two
    # 4 KiB fragments plus one 128 KiB extent (dummy writes interleaved).
    now = make_paper_synthetic_file(fs, "/data", size=32 * MIB)
    print(f"file created: {fragment_count(fs, '/data')} fragments")

    # Sequential 128 KiB O_DIRECT reads over the fragmented file.
    now, before = sequential_read(fs, "/data", now=now)
    print(f"fragmented read throughput: {before:7.1f} MB/s")

    # FragPicker phase 1 — analysis: trace the application's syscalls.
    picker = FragPicker(fs)
    with picker.monitor(apps={"bench"}) as monitor:
        now, _ = sequential_read(fs, "/data", now=now)
    print(f"analysis captured {len(monitor.records)} I/O records")

    # FragPicker phase 2 — migration: FIEMAP check + selective rewrite.
    report = picker.defragment(monitor.records, paths=["/data"], now=now)
    print(report.summary())

    now, after = sequential_read(fs, "/data", now=report.finished_at)
    print(f"defragmented read throughput: {after:7.1f} MB/s (+{(after / before - 1) * 100:.0f}%)")

    # Compare with e4defrag on an identical filesystem.
    fs2 = make_filesystem("ext4", make_device("optane"))
    now2 = make_paper_synthetic_file(fs2, "/data", size=32 * MIB)
    conv = e4defrag(fs2).defragment(["/data"], now=now2)
    print(conv.summary())
    print(
        f"\nFragPicker wrote {report.write_bytes / MIB:.0f} MiB vs e4defrag's "
        f"{conv.write_bytes / MIB:.0f} MiB "
        f"({report.write_bytes / conv.write_bytes:.0%}) for the same result."
    )


if __name__ == "__main__":
    main()
