#!/usr/bin/env python3
"""Observability tour: the Fig. 10 protocol with full instrumentation.

Runs the scaled YCSB-C / LSM / aged-Ext4 experiment with `repro.obs`
enabled, then shows what the observability plane saw: per-phase
throughput, the split fan-out (device commands per syscall) shifting
toward 1 after FragPicker migrates the hot ranges, and the five busiest
latency histograms across the stack.  A Chrome `trace_event` file is
written alongside — open it at chrome://tracing or https://ui.perfetto.dev
to see the nested FragPicker phase spans interleaved with the workload.

Run:  PYTHONPATH=src python examples/observability_tour.py
"""

import json

from repro.bench.experiments import obs_trace
from repro.obs.export import histogram_table

TRACE_PATH = "observability_tour_trace.json"


def main() -> None:
    result = obs_trace.run()

    print("== phase throughput (ops/s) ==")
    for phase, ops in result.phase_ops.items():
        print(f"  {phase:10s} {ops:10,.0f}")

    print("\n== the paper's mechanism, as a metric ==")
    before, after = result.fanout_before, result.fanout_after
    print(f"  split fan-out mean: {before.mean:.2f} -> {after.mean:.2f} "
          f"(p95 {before.quantile(0.95):.1f} -> {after.quantile(0.95):.1f})")
    print(f"  defrag: {result.defrag.summary()}")

    print("\n== top-5 latency histograms ==")
    print(histogram_table(result.top_latency_histograms(5)))

    with open(TRACE_PATH, "w") as fh:
        json.dump(result.trace(), fh)
    print(f"\nwrote {TRACE_PATH} — load it in chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()
