#!/usr/bin/env python3
"""Fileserver scenario (the paper's Figure 11):

Populate and churn a fileserver directory on F2FS/flash, measure the
recursive-grep cost (s/GB), then defragment with FragPicker's bypass
option (grep *is* a sequential-read workload, so no tracing is needed).

Run:  python examples/fileserver_grep.py
"""

from repro import GIB, MIB, FragPicker, f2fs_defrag, make_device, make_filesystem
from repro.workloads import FileServer, FileServerConfig, grep_directory


def main() -> None:
    fs = make_filesystem("f2fs", make_device("flash", capacity=4 * GIB))
    server = FileServer(fs, FileServerConfig(file_count=60, mean_file_size=2 * MIB))

    print("populating and churning the file set...")
    now = server.populate(0.0)
    print(f"  {len(server.paths)} files, {server.total_bytes() / MIB:.0f} MiB total, "
          f"{server.average_fragments():.0f} fragments/file on average")

    fs.drop_caches()
    now, fragmented = grep_directory(fs, "/fileserver", now)
    print(f"grep cost fragmented:    {fragmented.cost_per_gb:6.2f} s/GB")

    picker = FragPicker(fs)
    report = picker.defragment(plans=picker.bypass_plans(server.paths), now=now)
    print(f"FragPicker moved {report.write_bytes / MIB:.0f} MiB in {report.elapsed:.2f}s; "
          f"fragments/file now {server.average_fragments():.2f}")

    fs.drop_caches()
    now, defragged = grep_directory(fs, "/fileserver", report.finished_at)
    print(f"grep cost defragmented:  {defragged.cost_per_gb:6.2f} s/GB "
          f"({(1 - defragged.cost_per_gb / fragmented.cost_per_gb) * 100:.0f}% lower)")

    # For contrast: what a full-file rewrite would have written.
    fs2 = make_filesystem("f2fs", make_device("flash", capacity=4 * GIB))
    server2 = FileServer(fs2, FileServerConfig(file_count=60, mean_file_size=2 * MIB))
    now2 = server2.populate(0.0)
    conv = f2fs_defrag(fs2).defragment(server2.paths, now=now2)
    print(f"(a conventional full-file tool would have written "
          f"{conv.write_bytes / MIB:.0f} MiB)")


if __name__ == "__main__":
    main()
