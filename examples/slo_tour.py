#!/usr/bin/env python3
"""SLO tour: burn-rate alerting and the fleet health dashboard.

Walks the judgment layer end to end:

1. A hand-built SLO over a synthetic latency series — watch the error
   budget burn and the multi-window alert fire only when the fast AND
   slow burns agree (one noisy window pages nobody).
2. The same engine judging a whole fleet: clean run vs seeded fault
   storm, same seed, compared direction-aware.
3. One frame of the plain-text dashboard `repro watch` renders live.

Everything runs in virtual time; both fleet documents are
byte-reproducible (note the fingerprints).

Run:  PYTHONPATH=src python examples/slo_tour.py
"""

import dataclasses

from repro.fleet import FleetConfig, FleetSlo, run_fleet
from repro.obs.dashboard import Frame, render, sparkline
from repro.obs.slo import SloPlane, SloSpec, build_document, compare


def main() -> None:
    print("== 1. one SLO, by hand ==")
    # 90% of requests under 1 ms, judged over 0.25 s windows; the alert
    # needs the last window's burn >= 2x AND the 2-window mean >= 1.5x.
    spec = SloSpec(
        name="demo_latency", metric="lat_s", threshold=1e-3, objective="le",
        target=0.90, fast_windows=1, slow_windows=2,
        fast_burn=2.0, slow_burn=1.5,
    )
    plane = SloPlane([spec], window=0.25)
    # three calm windows, then a sustained latency regression
    for index, latencies in enumerate(
        [[0.4e-3] * 8, [0.5e-3] * 8, [0.6e-3] * 8,
         [2.0e-3] * 4 + [0.5e-3] * 4, [2.0e-3] * 6 + [0.5e-3] * 2]
    ):
        for value in latencies:
            plane.observe_at(spec.metric, index, value)
    plane.evaluate_all()
    summary = plane.summaries()[spec.name]
    print(f"  burn per window : {['%.1f' % b for b in summary['burn']]}")
    print(f"  burn sparkline  : {sparkline(summary['burn'])}")
    print(f"  compliance      : {summary['compliance']:.2%} "
          f"(target {spec.target:.0%})")
    print(f"  budget remaining: {summary['budget_remaining']:+.2%}")
    for alert in plane.alerts:
        print(f"  ALERT window {alert['window']}: "
              f"fast {alert['fast_burn']:.2f} slow {alert['slow_burn']:.2f} "
              f"({alert['bad']}/{alert['samples']} bad)")

    print("\n== 2. judging a fleet: clean vs fault storm ==")
    config = FleetConfig(volumes=16, seed=7, ticks=8)
    documents = {}
    for label in ("clean", "storm"):
        run_config = (config if label == "clean"
                      else dataclasses.replace(config, faults=True))
        monitor = FleetSlo.for_config(run_config)
        run_fleet(run_config, slo=monitor)
        documents[label] = monitor.document(
            label, {"kind": "fleet", "config": run_config.to_dict()})
        totals = monitor.fleet_summaries()
        fg = totals["fg_read_latency"]
        alerts = len(monitor.plane.alerts)
        print(f"  {label:5}: fg compliance {fg['compliance']:.2%}, "
              f"budget {fg['budget_remaining']:+.1%}, "
              f"{alerts} alert(s), fingerprint "
              f"{documents[label]['fingerprint']}")
    comparison = compare(documents["clean"], documents["storm"])
    regressions = [f for f in comparison.findings if f.regression]
    print(f"  storm vs clean: {len(regressions)} direction-aware "
          f"regression(s), e.g.")
    for finding in regressions[:3]:
        print(f"    {finding.variant} {finding.metric}: "
              f"{finding.baseline:.4g} -> {finding.candidate:.4g}")

    print("\n== 3. one dashboard frame ==")
    config = FleetConfig(volumes=8, seed=3, ticks=6)
    monitor = FleetSlo.for_config(config)
    report = run_fleet(config, slo=monitor)
    frame = Frame(
        tick=config.ticks - 1, ticks_total=config.ticks,
        now=config.ticks * config.tick_seconds, volumes=config.volumes,
        rows=report.ticks, slo_summaries=monitor.fleet_summaries(),
        alerts=monitor.plane.alerts, firing=monitor.firing(),
        budget_per_tick=config.budget_per_tick,
    )
    print(render(frame))
    print("\n(live view: PYTHONPATH=src python -m repro watch "
          "--volumes 8 --seed 3)")


if __name__ == "__main__":
    main()
