#!/usr/bin/env python3
"""Harvest tour: worker telemetry surviving the process boundary.

Runs a fault-campaign series across 2 spawned workers with the full
observability plane armed — metrics, spans, ring events, *and* causal
provenance.  Before the harvest plane existed, everything the workers
measured died with them; now each shard's telemetry is captured into a
snapshot, merged into the parent strictly in shard order, and the tour
shows what came back:

- merged counters (fault injections, worker-side `par.*` mirrors, one
  `obs.harvest.snapshots` tick per shard),
- per-shard span tracks (`shard0/...`, `shard1/...`),
- a flamegraph built from the *merged* provenance ring — worker pids
  were re-based on merge, so the combined ring still parses into one
  syscall→command forest,
- and the run's manifest appended to the persistent ledger, queried
  back with the same machinery `repro runs` uses.

Run:  PYTHONPATH=src python examples/harvest_tour.py
"""

import time

from repro.faults.campaign import CampaignConfig, run_campaign_series
from repro.obs import hooks, ledger
from repro.obs.critical_path import write_flamegraph
from repro.obs.hooks import Instrumentation
from repro.obs.provenance import build_forest

FLAME_PATH = "harvest_tour_flame.txt"
LEDGER_DIR = "harvest_tour_ledger"
TRIALS = 4
WORKERS = 2


def main() -> None:
    obs = Instrumentation(provenance=True)
    config = CampaignConfig(seed=11, files=2)
    start = time.perf_counter()
    with hooks.use(obs):
        series = run_campaign_series(config, trials=TRIALS, workers=WORKERS)
    wall_s = time.perf_counter() - start

    print(f"== campaign series: {TRIALS} trials across {WORKERS} workers ==")
    print(f"  fingerprint : {series.fingerprint}")
    print(f"  wall        : {wall_s:.3f} s")

    print("\n== counters that crossed the process boundary ==")
    metrics = obs.registry.to_dict()
    for name in ("faults.injected.total", "par.plans", "par.shards",
                 "obs.harvest.snapshots"):
        print(f"  {name:24s} {metrics[name]['value']:>8.0f}")

    tracks = sorted({s.track for s in obs.spans.finished_spans()})
    print(f"\n== {len(tracks)} merged span tracks (one namespace per shard) ==")
    for track in tracks[:8]:
        print(f"  {track}")

    # the merged ring parses into one forest: worker pids were re-based
    forest = build_forest(obs.spans)
    trees = forest.complete_trees()
    print(f"\n== merged provenance: {len(trees)} complete syscall trees ==")
    write_flamegraph(FLAME_PATH, forest, obs.spans)
    print(f"wrote collapsed-stack flamegraph to {FLAME_PATH} "
          "(feed to flamegraph.pl or speedscope)")

    # append this run to a ledger and query it back, `repro runs`-style
    document = {"fingerprint": series.fingerprint,
                "series": series.to_dict(), "ok": True, "sweeps": []}
    ledger.record_run(
        "faults", document, label="harvest-tour", seed=config.seed,
        workers=WORKERS, args={"trials": TRIALS}, wall_s=wall_s,
        directory=LEDGER_DIR,
    )
    runs = ledger.list_runs(LEDGER_DIR)
    print(f"\n== run ledger ({LEDGER_DIR}/, {len(runs)} run(s)) ==")
    print(ledger.runs_table(runs))


if __name__ == "__main__":
    main()
