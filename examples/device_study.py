#!/usr/bin/env python3
"""Device study (the paper's Section 3 / Figure 4 / Table 1):

Sweep fragment size and fragment distance across the four device models
and print the correlation statistics that motivated FragPicker's design:
on modern storage only *request splitting* matters, not fragment distance.

Run:  python examples/device_study.py
"""

from repro.bench.experiments import fig4_frag_metrics


def main() -> None:
    print("running the frag_size / frag_distance sweeps on all devices...\n")
    result = fig4_frag_metrics.run()
    print(result.figure4())
    print("\nTable 1 (CC and NLRS vs sequential-read performance):\n")
    print(result.table1())
    print(
        "\ntakeaway: every modern device's slope collapses once fragments"
        "\nreach the 128 KiB request size, and fragment distance only"
        "\nmatters on the HDD — so a defragmenter for modern storage only"
        "\nneeds to eliminate request splitting."
    )


if __name__ == "__main__":
    main()
