#!/usr/bin/env python3
"""Trace replay tour: from a raw trace to a defrag verdict.

Walks the whole ``repro.replay`` pipeline the way an operator would use
it on a real capture:

1. **Corpus** — generate a seeded 100k-op binary trace (stands in for a
   blktrace/strace capture; the parsers read those formats too).
2. **Reconstruct** — stream it onto a live simulated Ext4/flash stack
   through real syscalls; the churny write mix ages the file set.
3. **Measure** — fragmentation census and cold sequential read cost of
   the reconstructed file set.
4. **Defragment** — run FragPicker over exactly those files.
5. **Re-measure** — same census, same reads: the before/after the
   EXPERIMENTS.md recipe reports.
6. **Round trip** — capture->corpus->replay byte-identity, the property
   that makes replay trustworthy as a regression workload.

Everything is virtual-time and seed-keyed: run it twice, get the same
bytes.  Run:  PYTHONPATH=src python examples/replay_tour.py
"""

import os
import tempfile

from repro.bench.experiments import replay_roundtrip
from repro.constants import KIB, MIB
from repro.core import FragPicker
from repro.device import make_device
from repro.fs import make_filesystem
from repro.obs.sampler import FragmentationSampler
from repro.replay import (
    PlacementPolicy,
    Reconstructor,
    TraceProfile,
    generate_trace,
    open_trace,
)

READ_SIZE = 128 * KIB


def cold_read_cost(fs, paths, now):
    """Cold sequential read of every file; returns (seconds, new now)."""
    fs.drop_caches()
    start = now
    for path in paths:
        handle = fs.open(path, o_direct=True, app="measure")
        size = fs.inode_of(path).size
        offset = 0
        while offset + READ_SIZE <= size:
            now = fs.read(handle, offset, READ_SIZE, now=now).finish_time
            offset += READ_SIZE
    return now - start, now


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="replay-tour-")
    trace_path = os.path.join(workdir, "tour.bin")

    print("== 1. seeded trace corpus (binary repro.replay/v1) ==")
    profile = TraceProfile(
        ops=100_000, seed=11, files=32, file_bytes=4 * MIB,
        read_fraction=0.35, sequential_fraction=0.3,
    )
    written = generate_trace(trace_path, profile)
    size_mib = os.path.getsize(trace_path) / MIB
    print(f"  {written} records, {size_mib:.1f} MiB on disk "
          f"({os.path.getsize(trace_path) // written} bytes/record)")

    print("\n== 2. reconstruct onto a live Ext4/flash stack ==")
    fs = make_filesystem("ext4", make_device("flash"))
    reconstructor = Reconstructor(fs, PlacementPolicy(seed=5))
    reader = open_trace(trace_path)
    now = reconstructor.run(iter(reader), now=0.0)
    stats = reconstructor.stats
    print(f"  {stats.ops} ops re-issued ({stats.ops_read} reads, "
          f"{stats.ops_write} writes, {stats.ops_fsync} fsyncs) onto "
          f"{stats.files_created} files in {now:.3f} virtual s")

    paths = sorted(
        reconstructor.policy.path_for(i) for i in range(profile.files)
        if fs.exists(reconstructor.policy.path_for(i))
    )
    sampler = FragmentationSampler(fs, interval=1.0, paths=paths)

    print("\n== 3. the replayed workload aged the file set ==")
    frag_before = sampler.sample(now)["frag.extents_per_file"]
    cost_before, now = cold_read_cost(fs, paths, now)
    print(f"  extents/file: {frag_before:.1f}")
    print(f"  cold sequential read of every file: {cost_before:.3f} s")

    print("\n== 4. FragPicker over exactly those files ==")
    picker = FragPicker(fs)
    report = picker.defragment(plans=picker.bypass_plans(paths), now=now)
    now = report.finished_at
    print(f"  migrated {report.write_bytes / MIB:.1f} MiB in "
          f"{report.elapsed:.3f} virtual s")

    print("\n== 5. same census, same reads, after ==")
    frag_after = sampler.sample(now)["frag.extents_per_file"]
    cost_after, now = cold_read_cost(fs, paths, now)
    speedup = cost_before / cost_after if cost_after else float("inf")
    print(f"  extents/file: {frag_before:.1f} -> {frag_after:.1f}")
    print(f"  cold read cost: {cost_before:.3f} s -> {cost_after:.3f} s "
          f"({speedup:.2f}x)")

    print("\n== 6. capture -> corpus -> replay round trip ==")
    print(replay_roundtrip.run().report())
    sampler.detach()


if __name__ == "__main__":
    main()
