"""E2/E3 — Figure 4 and Table 1: frag_size / frag_distance sweeps."""

from conftest import run_once

from repro.bench.experiments import fig4_frag_metrics
from repro.constants import KIB

MODERN = ("microsd", "flash", "optane")


def test_fig4_and_table1(benchmark):
    result = run_once(benchmark, fig4_frag_metrics.run)
    print("\n" + result.figure4())
    print("\n" + result.table1())
    for device, sweep in result.sweeps.items():
        row = sweep.table1_row()
        # frag size below the request size strongly correlates with
        # performance on every device
        assert row["cc_size_before"] > 0.6, device
        if device in MODERN:
            # the 128 KiB knee: the slope collapses by >= 10x beyond it
            assert row["nlrs_size_after"] < row["nlrs_size_before"] / 10.0, device
            # frag distance is irrelevant on seekless devices
            assert abs(row["nlrs_distance"]) < row["nlrs_size_before"] / 100.0, device
    hdd = result.sweeps["hdd"].table1_row()
    # the HDD keeps gaining past the request size (seek span shrinks)...
    assert hdd["nlrs_size_after"] > result.sweeps["flash"].table1_row()["nlrs_size_before"]
    # ...and is the only device hurt by fragment distance
    assert hdd["cc_distance"] < -0.4
    # MicroSD is the most request-count-sensitive modern device (no queuing)
    micro = result.sweeps["microsd"].table1_row()
    assert micro["nlrs_size_before"] > result.sweeps["flash"].table1_row()["nlrs_size_before"]
    # kernel overheads make Optane steeper than flash below the knee
    assert (result.sweeps["optane"].table1_row()["nlrs_size_before"]
            > result.sweeps["flash"].table1_row()["nlrs_size_before"])
    # MicroSD's demand mapping cache keeps paying a little beyond 128 KiB
    curve = result.sweeps["microsd"].size_curve
    assert curve[512 * KIB] > curve[128 * KIB]
