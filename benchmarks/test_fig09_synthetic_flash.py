"""E6 — Figure 9: synthetic workloads on the SATA flash SSD."""

import pytest
from conftest import run_once

from repro.bench.experiments import synthetic_defrag
from repro.constants import MIB

FILE_SIZE = 33 * MIB  # paper: 400 MB, scaled


@pytest.mark.parametrize("fs_type", ["ext4", "f2fs"])
def test_fig9_flash(benchmark, fs_type):
    result = run_once(benchmark, synthetic_defrag.run, fs_type, "flash", FILE_SIZE)
    print("\n" + result.report())
    orig = result.cells["original"]
    conv = result.cells["conv"]
    fp = result.cells["fragpicker"]
    # reads gain from defragmentation (paper: ~+30% on flash)
    assert fp["seq_read"].throughput_mbps > 1.10 * orig["seq_read"].throughput_mbps
    # flash gains less than Optane because its higher media latency hides
    # the per-request overheads: the relative gain stays moderate
    assert fp["seq_read"].throughput_mbps < 2.0 * orig["seq_read"].throughput_mbps
    # update gains are smaller than read gains (out-of-place FTL writes
    # stripe over channels regardless of fragmentation, Section 3.3)
    read_gain = fp["seq_read"].throughput_mbps / orig["seq_read"].throughput_mbps
    update_gain = fp["seq_update"].throughput_mbps / orig["seq_update"].throughput_mbps
    assert update_gain < read_gain
    # FragPicker matches the conventional tool at a fraction of the writes
    assert fp["seq_read"].throughput_mbps > 0.95 * conv["seq_read"].throughput_mbps
    assert fp["stride_read"].throughput_mbps > 0.98 * conv["stride_read"].throughput_mbps
    assert fp["seq_read"].defrag_write_mb < 0.75 * conv["seq_read"].defrag_write_mb
