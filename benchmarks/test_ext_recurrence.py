"""E16 — extension: defragmentation as a scheduled routine (Section 2.4)."""

from conftest import run_once

from repro.bench.experiments import ext_recurrence


def test_recurring_defrag(benchmark):
    result = run_once(benchmark, ext_recurrence.run)
    print("\n" + result.report())
    e4 = result.runs["e4defrag"]
    fp = result.runs["fragpicker"]
    # the routine compounds: FragPicker's cumulative writes and wear are
    # a fraction of the conventional tool's
    assert fp.total_write_mb < 0.6 * e4.total_write_mb
    assert fp.pages_programmed < 0.7 * e4.pages_programmed
    # at comparable read performance after the final cycle
    assert fp.final_grep_cost < 1.15 * e4.final_grep_cost
    # FragPicker's later cycles cost less than its first (only the newly
    # churned data needs migrating again)
    assert fp.per_cycle_write_mb[-1] < fp.per_cycle_write_mb[0]
