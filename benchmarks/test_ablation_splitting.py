"""E12 — ablation: the request-splitting mechanism itself."""

from conftest import run_once

from repro.bench.experiments import ablation_splitting
from repro.constants import KIB


def test_request_splitting(benchmark):
    result = run_once(benchmark, ablation_splitting.run)
    print("\n" + result.report())
    by_size = {p.frag_size: p for p in result.points}
    # one syscall -> one command only once fragments reach the request size
    assert by_size[4 * KIB].commands_per_syscall == 32.0
    assert by_size[128 * KIB].commands_per_syscall == 1.0
    # kernel work scales linearly with the split count
    assert by_size[4 * KIB].kernel_time_us > 20 * by_size[128 * KIB].kernel_time_us
    # latency decreases monotonically as fragments grow
    latencies = [p.latency_us for p in result.points]
    assert latencies == sorted(latencies, reverse=True)
