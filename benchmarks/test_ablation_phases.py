"""E13 — ablation: FragPicker's individual design choices."""

from conftest import run_once

from repro.bench.experiments import ablation_phases


def test_fragpicker_phases(benchmark):
    result = run_once(benchmark, ablation_phases.run)
    print("\n" + result.report())
    full = result.cells["full"]
    no_check = result.cells["no_check"]
    # every variant defragments well enough to beat the original
    for name, cell in result.cells.items():
        assert cell.throughput_mbps > 1.2 * result.original_mbps, name
    # fragmentation checking trims writes without costing throughput
    assert full.write_mb < no_check.write_mb
    assert full.throughput_mbps > 0.98 * no_check.throughput_mbps
