"""E7 — Section 5.2.2: discard (fstrim) cost before/after FragPicker."""

from conftest import run_once

from repro.bench.experiments import sec522_discard_cost


def test_discard_cost(benchmark):
    result = run_once(benchmark, sec522_discard_cost.run)
    print("\n" + result.report())
    # deleting the fragmented file costs many discard commands; the
    # defragmented file trims in a fraction of the time (paper: 16.6 ->
    # 8.485 s/GB)
    assert result.cost["fragpicker"] < 0.6 * result.cost["original"]
    assert result.commands["fragpicker"] < 0.2 * result.commands["original"]
