"""Shared helpers for the benchmark suite.

Every benchmark runs its experiment exactly once through
``benchmark.pedantic`` (the experiments are deterministic virtual-time
simulations — repeating them measures host CPU, not the system under
study), prints the same rows the paper reports, and asserts the result
*shape* (who wins, by roughly what factor, where the knees fall).
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment under pytest-benchmark with a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
