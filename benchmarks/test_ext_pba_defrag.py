"""E15 — extension: open-channel (PBA) fragmentation (paper Section 6)."""

from conftest import run_once

from repro.bench.experiments import ext_pba_defrag


def test_pba_defrag(benchmark):
    result = run_once(benchmark, ext_pba_defrag.run)
    print("\n" + result.report())
    # physical concentration destroys parallelism despite clean LBAs
    assert result.conflicted_mbps < 0.5 * result.balanced_mbps
    assert result.imbalance_before > 4.0
    # filefrag-based FragPicker is blind to it (the paper's stated limit)
    assert result.stock_migrated == 0
    assert result.stock_fragpicker_mbps < 1.05 * result.conflicted_mbps
    # the open-channel extension restores the parallelism
    assert result.pba_migrated > 0
    assert result.pba_fragpicker_mbps > 0.9 * result.balanced_mbps
    assert result.imbalance_after < 1.5
