"""E1 — Figure 2: YCSB-A throughput with background defragmentation."""

from conftest import run_once

from repro.bench.experiments import fig2_background_defrag


def test_fig2_background_defrag(benchmark):
    result = run_once(benchmark, fig2_background_defrag.run)
    print("\n" + result.report())
    e4 = result.runs["e4defrag"]
    fp = result.runs["fragpicker"]
    # e4defrag degrades the co-running workload for its whole run
    assert e4.degradation > 0.03, "e4defrag should visibly degrade YCSB-A"
    # and its disruption lasts far longer than FragPicker's
    assert e4.defrag_elapsed > 2.0 * fp.defrag_elapsed
    # the workload recovers once defragmentation ends
    assert e4.after_ops > 0.7 * e4.before_ops
    assert fp.after_ops > 0.7 * fp.before_ops
    # the timeline actually contains the dip
    assert len(e4.timeline) >= 5
