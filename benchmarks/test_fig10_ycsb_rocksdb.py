"""E8 — Figure 10: YCSB-C over the LSM store on aged Ext4 / Optane."""

from conftest import run_once

from repro.bench.experiments import fig10_ycsb_rocksdb


def test_fig10_ycsb_rocksdb(benchmark):
    result = run_once(benchmark, fig10_ycsb_rocksdb.run)
    print("\n" + result.report())
    e4 = result.runs["e4defrag"]
    fp = result.runs["fragpicker"]
    # the database files really were fragmented, and e4defrag fixed them
    assert e4.fragments_before > 20
    assert e4.fragments_after <= 2
    # both tools improve post-defrag throughput
    assert e4.improvement_after() > 0.05
    assert fp.improvement_after() > 0.03
    # the paper's headline trade: FragPicker's post-defrag throughput is
    # within a few percent of e4defrag's...
    gap = 1.0 - fp.phases["after"].ops_per_sec / e4.phases["after"].ops_per_sec
    assert gap < 0.10, f"post-defrag gap {gap:.1%}"
    # ...for a small fraction of the defrag time and I/O
    assert fp.defrag_elapsed < 0.3 * e4.defrag_elapsed
    assert fp.total_io_mb < 0.6 * e4.total_io_mb
    # analysis-phase (eBPF) overhead is small (paper: 1.4%)
    analysis_drop = 1.0 - fp.phases["analysis"].ops_per_sec / fp.phases["before"].ops_per_sec
    assert analysis_drop < 0.05
