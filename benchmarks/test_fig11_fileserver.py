"""E10 — Figure 11: fileserver grep cost on F2FS (flash + Optane)."""

import pytest
from conftest import run_once

from repro.bench.experiments import fig11_fileserver


@pytest.mark.parametrize("device", ["flash", "optane"])
def test_fig11_fileserver(benchmark, device):
    result = run_once(benchmark, fig11_fileserver.run, device)
    print("\n" + result.report())
    orig = result.cells["original"]
    conv = result.cells["conv"]
    fp = result.cells["fragpicker"]
    # the file set aged hard
    assert result.fragments_before > 30
    # defragmentation cuts the grep cost substantially (paper: 29-37%)
    assert fp.grep_cost < 0.85 * orig.grep_cost
    # FragPicker is within a few percent of the full-migration tool
    assert fp.grep_cost < 1.05 * conv.grep_cost
    # while writing much less (paper: 44-52% lower)
    assert fp.defrag_write_mb < 0.70 * conv.defrag_write_mb
    # fragments per file collapse (paper: 1395 -> 1.77 / 1068 -> 2.48)
    assert fp.avg_fragments < 8
