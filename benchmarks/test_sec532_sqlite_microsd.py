"""E9 — Section 5.3.2: SQLite on Btrfs on the MicroSD card."""

from conftest import run_once

from repro.bench.experiments import sec532_sqlite_microsd


def test_sqlite_microsd(benchmark):
    result = run_once(benchmark, sec532_sqlite_microsd.run)
    print("\n" + result.report())
    conv = result.runs["btrfs.defragment"]
    fp = result.runs["fragpicker"]
    # defragmentation transforms the select (paper: 29.5s -> 4.4s); the
    # MicroSD's serialized commands make this the largest gain of any device
    assert fp.select_elapsed < 0.4 * result.select_before
    # FragPicker's select is within a few percent of full migration
    assert fp.select_elapsed < 1.05 * conv.select_elapsed
    # it moves only the selected fraction (paper: 163 MB vs 474 MB reads)
    assert fp.defrag_read_mb < 0.5 * conv.defrag_read_mb
    assert fp.defrag_write_mb < 0.5 * conv.defrag_write_mb
    # and the co-running FIO writer fares far better (paper: ~2x)
    assert fp.fio_mbps > 1.5 * conv.fio_mbps
