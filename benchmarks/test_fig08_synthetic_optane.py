"""E5 — Figure 8: synthetic workloads on the Optane SSD (Ext4/F2FS/Btrfs)."""

import pytest
from conftest import run_once

from repro.bench.experiments import synthetic_defrag
from repro.constants import MIB

FILE_SIZE = 33 * MIB  # paper: 1 GiB, scaled


def _common_checks(result):
    orig = result.cells["original"]
    conv = result.cells["conv"]
    fp = result.cells["fragpicker"]
    # defragmentation helps reads substantially
    assert conv["seq_read"].throughput_mbps > 1.2 * orig["seq_read"].throughput_mbps
    # FragPicker reaches the conventional tool's performance...
    for pattern in ("seq_read", "stride_read"):
        assert fp[pattern].throughput_mbps > 0.95 * conv[pattern].throughput_mbps, pattern
    # ...while writing much less
    assert fp["seq_read"].defrag_write_mb < 0.75 * conv["seq_read"].defrag_write_mb
    assert fp["stride_read"].defrag_write_mb < 0.60 * conv["stride_read"].defrag_write_mb


@pytest.mark.parametrize("fs_type", ["ext4", "f2fs"])
def test_fig8_ext4_f2fs(benchmark, fs_type):
    result = run_once(benchmark, synthetic_defrag.run, fs_type, "optane", FILE_SIZE)
    print("\n" + result.report())
    _common_checks(result)
    orig = result.cells["original"]
    fp = result.cells["fragpicker"]
    fpb = result.cells["fragpicker_b"]
    conv = result.cells["conv"]
    # updates are fragmentation-sensitive on in-place-updating stacks
    assert fp["seq_update"].throughput_mbps > 1.2 * orig["seq_update"].throughput_mbps
    assert fp["seq_update"].throughput_mbps > 0.95 * conv["seq_update"].throughput_mbps
    # the bypass option matches FragPicker on sequential reads
    assert fpb["seq_read"].throughput_mbps > 0.98 * fp["seq_read"].throughput_mbps
    # but loses on stride reads (misaligned plans) while writing more
    assert fpb["stride_read"].throughput_mbps < fp["stride_read"].throughput_mbps
    assert fpb["stride_read"].defrag_write_mb > fp["stride_read"].defrag_write_mb


def test_fig8_btrfs_with_threshold(benchmark):
    result = run_once(
        benchmark, synthetic_defrag.run, "btrfs", "optane", FILE_SIZE,
        ("original", "conv", "conv_t", "fragpicker", "fragpicker_b"),
    )
    print("\n" + result.report())
    _common_checks(result)
    orig = result.cells["original"]
    conv = result.cells["conv"]
    conv_t = result.cells["conv_t"]
    fp = result.cells["fragpicker"]
    # Btrfs updates out of place: defragmentation cannot help update
    # throughput (Section 5.2.1)
    assert abs(conv["seq_update"].throughput_mbps - orig["seq_update"].throughput_mbps) \
        < 0.05 * orig["seq_update"].throughput_mbps
    # the -t threshold option still request-splits stride reads...
    assert conv_t["stride_read"].throughput_mbps < 0.99 * fp["stride_read"].throughput_mbps
    # ...while writing more than FragPicker
    assert conv_t["stride_read"].defrag_write_mb > fp["stride_read"].defrag_write_mb
