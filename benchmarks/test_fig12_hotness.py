"""E11 — Figure 12: hotness-criterion sweep, uniform vs zipfian."""

from conftest import run_once

from repro.bench.experiments import fig12_hotness


def test_fig12_hotness(benchmark):
    result = run_once(benchmark, fig12_hotness.run)
    print("\n" + result.report())
    uniform = result.sweeps["uniform"]
    zipf = result.sweeps["zipfian"]
    # uniform: both performance and writes grow with the criterion
    assert uniform[-1].throughput_mbps > 1.1 * uniform[0].throughput_mbps
    assert uniform[-1].write_mb > 2.0 * uniform[0].write_mb
    # zipfian: the curve is much flatter than uniform's — a small hot set
    # dominates, so migrating the top 10% already recovers most of the win
    zipf_ratio = zipf[0].throughput_mbps / zipf[-1].throughput_mbps
    uniform_ratio = uniform[0].throughput_mbps / uniform[-1].throughput_mbps
    assert zipf_ratio > uniform_ratio + 0.05
    assert zipf_ratio > 0.75
    # writes stay tiny vs uniform at every criterion
    for z, u in zip(zipf, uniform):
        assert z.write_mb < 0.6 * u.write_mb, z.criterion
    # and even the smallest criterion already beats the fragmented original
    assert zipf[0].throughput_mbps > 1.05 * result.original_mbps["zipfian"]
