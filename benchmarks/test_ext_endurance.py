"""E14 — extension: flash wear consumed per defragmentation tool."""

from conftest import run_once

from repro.bench.experiments import ext_endurance


def test_endurance(benchmark):
    result = run_once(benchmark, ext_endurance.run)
    print("\n" + result.report())
    conv = result.cells["conventional"]
    fp = result.cells["fragpicker"]
    # FragPicker programs far fewer flash pages, i.e. burns less lifetime
    assert fp.pages_programmed < 0.75 * conv.pages_programmed
    assert fp.host_write_mb < 0.75 * conv.host_write_mb
