"""E4 — Section 3.3 (text): sequential O_DIRECT update sweeps."""

from conftest import run_once

from repro.bench.experiments import sec33_update_sweep


def test_update_sweep(benchmark):
    result = run_once(benchmark, sec33_update_sweep.run)
    print("\n" + result.report())
    summary = result.summary()
    # updates on Optane are fragmentation-sensitive (in-place banks)
    assert summary["optane"]["update_nlrs"] > 0.001
    # flash updates are *less* sensitive than flash reads: the FTL stripes
    # new pages over channels regardless of LBA fragmentation
    assert summary["flash"]["update_nlrs"] < summary["flash"]["read_nlrs"]
    # and Optane's update sensitivity exceeds flash's
    assert summary["optane"]["update_nlrs"] > summary["flash"]["update_nlrs"]
