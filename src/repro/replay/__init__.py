"""``repro.replay`` — streaming trace ingestion and workload reconstruction.

The pipeline, in the order a ``repro replay`` run uses it:

- :mod:`formats` — streaming parsers for blktrace-style text, CSV, and
  the compact ``repro.replay/v1`` binary format, plus the binary writer.
  All readers are generators with per-stream :class:`ParseStats`; bad
  input is repaired-and-counted, never silently dropped.
- :mod:`generate` — seed-keyed synthetic corpora in the binary format
  (real traces are not redistributable; CI generates its own).
- :mod:`reconstruct` — lifts raw records onto the live simulated
  filesystem through real syscalls, so cache hits, readahead, delayed
  allocation, and request splitting are re-decided by *this* stack.
- :mod:`report` — the ``run_replay`` pipeline and its fingerprinted
  ``repro.replay/v1`` document.
- :mod:`workload` — replay as a first-class workload: bench-pluggable
  :class:`ReplayWorkload` and the fleet's ``trace:<path>`` stream.
"""

from .formats import (
    BINARY_MAGIC,
    BINARY_VERSION,
    FORMATS,
    RECORD_SIZE,
    BinaryTraceReader,
    BinaryTraceWriter,
    BlktraceTextReader,
    CsvTraceReader,
    ParseStats,
    TraceReader,
    open_trace,
    sniff_format,
)
from .generate import TraceProfile, generate_ops, generate_trace
from .reconstruct import (
    DEFAULT_FILE_CAP,
    PlacementPolicy,
    ReconstructionStats,
    Reconstructor,
)
from .report import (
    SCHEMA,
    ReplayConfig,
    ReplayResult,
    compare,
    fingerprint,
    load,
    run_replay,
    save,
    validate,
)
from .workload import ReplayWorkload, cycling_ops, parse_trace_workload

__all__ = [
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "FORMATS",
    "RECORD_SIZE",
    "BinaryTraceReader",
    "BinaryTraceWriter",
    "BlktraceTextReader",
    "CsvTraceReader",
    "ParseStats",
    "TraceReader",
    "open_trace",
    "sniff_format",
    "TraceProfile",
    "generate_ops",
    "generate_trace",
    "DEFAULT_FILE_CAP",
    "PlacementPolicy",
    "ReconstructionStats",
    "Reconstructor",
    "SCHEMA",
    "ReplayConfig",
    "ReplayResult",
    "compare",
    "fingerprint",
    "load",
    "run_replay",
    "save",
    "validate",
    "ReplayWorkload",
    "cycling_ops",
    "parse_trace_workload",
]
