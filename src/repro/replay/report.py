"""The ``repro replay`` pipeline and its fingerprinted document.

One replay run = one streaming pass: parse -> reconstruct -> measure.
The resulting ``REPLAY_<label>.json`` (schema ``repro.replay/v1``) is
canonical JSON fingerprinted the fleet way — everything in it derives
from virtual time and seeded draws, so the same trace + config produces
a byte-identical document, which is what the CI replay-smoke job
asserts.

The document carries the TraceTracker-motivated deltas: how the *live*
cache/readahead treated the replayed traffic (hit ratio, device traffic
vs payload) versus what the raw trace would have forced verbatim, plus
the per-layer latency attribution the obs plane measures at source.

``compare`` reuses the bench pipeline's direction-aware machinery:
throughput down = regression, cache hit ratio down = regression,
attribution component seconds up = regression.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..bench.regression import Comparison, Finding
from ..constants import MIB
from ..device import make_device
from ..errors import InvalidArgument
from ..fs import make_filesystem
from ..obs import analysis as obs_analysis
from ..obs import hooks as obs_hooks
from ..obs.hooks import Instrumentation
from .formats import ParseStats, TraceReader, open_trace
from .reconstruct import (
    DEFAULT_FILE_CAP,
    PlacementPolicy,
    ReconstructionStats,
    Reconstructor,
)

#: document schema tag; bump on incompatible layout changes
SCHEMA = "repro.replay/v1"

#: headline metrics compared by :func:`compare`: name -> higher_is_better
_COMPARED = {
    "ops_per_vsec": True,
    "read_mbps": True,
    "cache_hit_ratio": True,
    "elapsed_s": False,
    "split_fanout_mean": False,
}


@dataclass(frozen=True)
class ReplayConfig:
    """Everything one replay run depends on (fingerprinted)."""

    fs_type: str = "ext4"
    device: str = "flash"
    fmt: str = "auto"
    pacing: str = "afap"
    seed: int = 0
    file_cap: int = DEFAULT_FILE_CAP
    placement_fanout: int = 16

    def __post_init__(self) -> None:
        if self.pacing not in ("afap", "trace"):
            raise InvalidArgument(f"unknown pacing {self.pacing!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "fs_type": self.fs_type,
            "device": self.device,
            "format": self.fmt,
            "pacing": self.pacing,
            "seed": self.seed,
            "file_cap": self.file_cap,
            "placement_fanout": self.placement_fanout,
        }


@dataclass
class ReplayResult:
    """One streaming replay pass, measured."""

    config: ReplayConfig
    trace: str                       # basename, for the report header
    parse: ParseStats = field(default_factory=ParseStats)
    reconstruction: ReconstructionStats = field(default_factory=ReconstructionStats)
    elapsed_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: device-level traffic the replayed workload generated
    device_read_bytes: int = 0
    device_write_bytes: int = 0
    device_read_commands: int = 0
    device_write_commands: int = 0
    #: metadata-commit traffic (journal/checkpoint writes during fsync)
    meta_write_bytes: int = 0
    split_fanout: Dict[str, float] = field(default_factory=dict)
    attribution: Optional[Dict[str, object]] = None

    # -- derived figures ------------------------------------------------

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def ops_per_vsec(self) -> float:
        return self.reconstruction.ops / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def read_mbps(self) -> float:
        if not self.elapsed_s:
            return 0.0
        return self.reconstruction.bytes_read / self.elapsed_s / 1e6

    @property
    def read_amplification(self) -> float:
        """Device read bytes per payload read byte (cache hits and
        readahead push this below/above 1 — the re-simulated part)."""
        if not self.reconstruction.bytes_read:
            return 0.0
        return self.device_read_bytes / self.reconstruction.bytes_read

    # -- document -------------------------------------------------------

    def to_dict(self, label: str = "local") -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema": SCHEMA,
            "label": label,
            "trace": self.trace,
            "config": self.config.to_dict(),
            "parse": self.parse.to_dict(),
            "reconstruction": self.reconstruction.to_dict(),
            "figures": {
                "elapsed_s": self.elapsed_s,
                "ops_per_vsec": self.ops_per_vsec,
                "read_mbps": self.read_mbps,
                "cache_hit_ratio": self.cache_hit_ratio,
                "read_amplification": self.read_amplification,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "device_traffic": {
                "read_bytes": self.device_read_bytes,
                "write_bytes": self.device_write_bytes,
                "read_commands": self.device_read_commands,
                "write_commands": self.device_write_commands,
                "meta_write_bytes": self.meta_write_bytes,
            },
            "split_fanout": dict(self.split_fanout),
        }
        if self.attribution is not None:
            doc["attribution"] = self.attribution
        doc["fingerprint"] = fingerprint(doc)
        return doc

    @property
    def fingerprint(self) -> str:
        return str(self.to_dict()["fingerprint"])

    # -- rendering ------------------------------------------------------

    def text(self) -> str:
        parse, rec = self.parse, self.reconstruction
        lines = [
            "trace replay report",
            "=" * 19,
            "",
            f"trace          : {self.trace} ({self.config.fmt}), "
            f"pacing {self.config.pacing}",
            f"target         : {self.config.fs_type} on {self.config.device}, "
            f"placement seed {self.config.seed}",
            "",
            f"parsed         : {parse.records} records "
            f"({parse.malformed} malformed, {parse.zero_length} zero-length, "
            f"{parse.out_of_order} out-of-order, {parse.filtered} filtered)",
            f"reconstructed  : {rec.ops} ops ({rec.ops_read} reads, "
            f"{rec.ops_write} writes, {rec.ops_fsync} fsyncs) onto "
            f"{rec.files_created} files",
            f"  repairs      : {rec.clamped} clamped, {rec.realigned} realigned, "
            f"{rec.no_space} no-space skips, {rec.dropped} dropped",
            f"  backfill     : {rec.backfill_bytes / MIB:.2f} MiB materialized "
            "for reads beyond EOF",
            "",
            f"virtual elapsed: {self.elapsed_s:.4f} s  "
            f"({self.ops_per_vsec:,.0f} ops/s, {self.read_mbps:.1f} MB/s read)",
            f"live cache     : {self.cache_hits} hits / {self.cache_misses} "
            f"misses (hit ratio {self.cache_hit_ratio:.3f})",
            f"device traffic : {self.device_read_bytes / MIB:.2f} MiB read "
            f"(amplification {self.read_amplification:.3f}), "
            f"{self.device_write_bytes / MIB:.2f} MiB written "
            f"(+{self.meta_write_bytes / MIB:.2f} MiB metadata)",
        ]
        if self.split_fanout.get("count"):
            lines.append(
                f"request split  : mean fan-out {self.split_fanout['mean']:.2f}, "
                f"p95 {self.split_fanout['p95']:.0f}, "
                f"max {self.split_fanout['max']:.0f}"
            )
        lines.append("")
        lines.append(f"fingerprint: {self.fingerprint}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------

def run_replay(
    trace_path: str,
    config: Optional[ReplayConfig] = None,
    reader: Optional[TraceReader] = None,
    mapping: Optional[Dict[int, str]] = None,
) -> ReplayResult:
    """One streaming replay pass over ``trace_path``.

    Builds a fresh filesystem, arms a private observability plane (for
    the per-layer attribution), and pipes the reader straight into the
    reconstructor — the trace is never materialized.  ``reader`` lets
    tests inject a pre-configured parser; ``mapping`` pins file ids to
    existing paths (the round-trip experiment's hook).
    """
    config = config if config is not None else ReplayConfig()
    obs = Instrumentation()
    with obs_hooks.use(obs):
        device = make_device(config.device)
        fs = make_filesystem(config.fs_type, device)
        if reader is None:
            reader = open_trace(trace_path, config.fmt)
        policy = PlacementPolicy(
            seed=config.seed,
            fanout=config.placement_fanout,
            file_cap=config.file_cap,
            mapping=mapping,
        )
        reconstructor = Reconstructor(fs, policy, pacing=config.pacing)
        cache = fs.page_cache.stats
        hits0, misses0 = cache.hits, cache.misses
        start = 0.0
        finish = reconstructor.run(iter(reader), now=start)

        result = ReplayResult(
            config=config,
            trace=trace_path.rsplit("/", 1)[-1],
            parse=reader.stats,
            reconstruction=reconstructor.stats,
            elapsed_s=finish - start,
            cache_hits=cache.hits - hits0,
            cache_misses=cache.misses - misses0,
        )
        replayed = fs.tracer.tag("replay")
        result.device_read_bytes = replayed.read_bytes
        result.device_write_bytes = replayed.write_bytes
        result.device_read_commands = replayed.read_commands
        result.device_write_commands = replayed.write_commands
        result.meta_write_bytes = fs.tracer.tag("meta").write_bytes
        metrics = obs_analysis.delta_metrics(obs.registry, None)
        result.split_fanout = obs_analysis.histogram_summary(
            metrics, "block.split_fanout"
        )
        result.attribution = obs_analysis.attribute(metrics).to_dict()
    return result


# ----------------------------------------------------------------------
# canonical fingerprint + persistence + validation
# ----------------------------------------------------------------------

def fingerprint(document: Dict[str, object]) -> str:
    """sha256 over the canonical document (fingerprint + label excluded,
    so relabeling a run does not change its identity)."""
    body = {k: v for k, v in document.items() if k not in ("fingerprint", "label")}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def save(path: str, document: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load(path: str) -> Dict[str, object]:
    with open(path) as fh:
        document = json.load(fh)
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported replay schema {schema!r} (want {SCHEMA!r})"
        )
    return document


#: required top-level sections and the counters inside them
_REQUIRED = {
    "parse": ("records", "malformed", "zero_length", "out_of_order"),
    "reconstruction": ("ops", "ops_read", "ops_write", "bytes_read",
                       "backfill_bytes", "clamped", "no_space"),
    "figures": ("elapsed_s", "ops_per_vsec", "cache_hit_ratio"),
    "cache": ("hits", "misses"),
    "device_traffic": ("read_bytes", "write_bytes"),
}


def validate(document: Dict[str, object]) -> None:
    """Schema check for CI: raises ``ValueError`` on a malformed doc."""
    if document.get("schema") != SCHEMA:
        raise ValueError(f"bad schema {document.get('schema')!r}")
    for section, keys in _REQUIRED.items():
        body = document.get(section)
        if not isinstance(body, dict):
            raise ValueError(f"missing section {section!r}")
        for key in keys:
            if key not in body:
                raise ValueError(f"missing {section}.{key}")
    expected = fingerprint(document)
    if document.get("fingerprint") != expected:
        raise ValueError(
            f"fingerprint mismatch: {document.get('fingerprint')} != {expected}"
        )


# ----------------------------------------------------------------------
# direction-aware comparison (reuses the bench machinery)
# ----------------------------------------------------------------------

def _headline(document: Dict[str, object]) -> Dict[str, float]:
    figures = document.get("figures", {})
    fanout = document.get("split_fanout", {}) or {}
    return {
        "ops_per_vsec": float(figures.get("ops_per_vsec", 0.0)),
        "read_mbps": float(figures.get("read_mbps", 0.0)),
        "cache_hit_ratio": float(figures.get("cache_hit_ratio", 0.0)),
        "elapsed_s": float(figures.get("elapsed_s", 0.0)),
        "split_fanout_mean": float(fanout.get("mean", 0.0) or 0.0),
    }


def compare(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    threshold: float = 0.10,
) -> Comparison:
    """Direction-aware comparison of two REPLAY documents."""
    comparison = Comparison(
        baseline_label=str(baseline.get("label", "?")),
        candidate_label=str(candidate.get("label", "?")),
        threshold=threshold,
        kind="replay",
    )
    if baseline.get("config") != candidate.get("config") or (
        baseline.get("trace") != candidate.get("trace")
    ):
        comparison.warnings.append(
            "replay configurations differ: the documents describe "
            "different traces or targets"
        )
    base_values = _headline(baseline)
    cand_values = _headline(candidate)
    for metric, higher_is_better in _COMPARED.items():
        base, cand = base_values[metric], cand_values[metric]
        if max(abs(base), abs(cand)) < 1e-12:
            continue
        change = (cand - base) / abs(base) if abs(base) >= 1e-12 else 1.0
        if higher_is_better:
            regression = change <= -threshold
        else:
            regression = change >= threshold
        comparison.findings.append(Finding(
            figure="replay", variant="stream", metric=metric,
            baseline=base, candidate=cand, change=change,
            regression=regression,
        ))
    base_attr = (baseline.get("attribution") or {}).get("components_s", {})
    cand_attr = (candidate.get("attribution") or {}).get("components_s", {})
    for component in sorted(base_attr):
        if component not in cand_attr:
            continue
        base, cand = float(base_attr[component]), float(cand_attr[component])
        if max(abs(base), abs(cand)) < 1e-6:
            continue
        change = (cand - base) / abs(base) if abs(base) >= 1e-12 else 1.0
        comparison.findings.append(Finding(
            figure="replay", variant="stream",
            metric=f"attribution.{component}",
            baseline=base, candidate=cand, change=change,
            regression=change >= threshold,
        ))
    return comparison
