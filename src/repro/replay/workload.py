"""Trace replay as a first-class workload.

Everything else in :mod:`repro.workloads` is synthetic — closed-form op
streams parameterized by a handful of knobs.  This module makes a
*captured trace* interchangeable with them: :class:`ReplayWorkload`
wraps a trace file plus reconstruction policy behind the same
"drive this filesystem forward in virtual time" shape the bench
experiments use, and :func:`cycling_ops` turns a finite trace into the
endless op stream the fleet's foreground loop wants (re-opening the file
at EOF, so memory stays bounded no matter how many laps a long fleet run
takes).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import InvalidArgument
from ..fs.base import Filesystem
from ..types import IoOp
from .formats import open_trace
from .reconstruct import PlacementPolicy, ReconstructionStats, Reconstructor

#: fleet workload-spec prefix: ``--workload trace:<path>``
TRACE_PREFIX = "trace:"


def parse_trace_workload(workload: str) -> Optional[str]:
    """``"trace:/path/to.bin"`` -> ``"/path/to.bin"``; None otherwise."""
    if not workload.startswith(TRACE_PREFIX):
        return None
    path = workload[len(TRACE_PREFIX):]
    if not path:
        raise InvalidArgument("trace workload needs a path: trace:<path>")
    return path


def cycling_ops(path: str, fmt: str = "auto", **reader_kwargs) -> Iterator[IoOp]:
    """Endless op stream over a finite trace (re-opens at EOF).

    Timestamps are ignored by consumers of this stream (the fleet runs
    closed-loop inside tick windows), so the wrap seam needs no time
    rebasing.  An empty or all-malformed trace raises rather than
    spinning forever.
    """
    while True:
        reader = open_trace(path, fmt, **reader_kwargs)
        yielded = 0
        for record in reader:
            yielded += 1
            yield record
        if not yielded:
            raise InvalidArgument(
                f"{path}: trace contains no replayable records "
                f"({reader.stats.malformed} malformed)"
            )


class ReplayWorkload:
    """A trace bound to a reconstruction policy; pluggable workload.

    The bench-harness-facing shape: construct once, then ``run(fs, now)``
    streams the whole trace through the filesystem and returns the new
    virtual time — the same contract as the synthetic drivers
    (``sequential_read`` et al.), so an experiment can swap a captured
    trace in for a closed-form pattern without changing its measurement
    window.  ``stats`` holds the reconstruction counters afterwards.
    """

    def __init__(
        self,
        trace_path: str,
        fmt: str = "auto",
        seed: int = 0,
        pacing: str = "afap",
        mapping: Optional[Dict[int, str]] = None,
        app: str = "replay",
        **reader_kwargs: object,
    ) -> None:
        self.trace_path = trace_path
        self.fmt = fmt
        self.seed = seed
        self.pacing = pacing
        self.mapping = mapping
        self.app = app
        self.reader_kwargs = reader_kwargs
        self.stats: Optional[ReconstructionStats] = None
        self.parse_stats = None

    def ops(self) -> Iterator[IoOp]:
        """One streaming pass over the trace (records, not syscalls)."""
        reader = open_trace(self.trace_path, self.fmt, **self.reader_kwargs)
        self.parse_stats = reader.stats
        return iter(reader)

    def run(self, fs: Filesystem, now: float = 0.0) -> float:
        """Replay the whole trace against ``fs``; returns finish time."""
        policy = PlacementPolicy(seed=self.seed, mapping=self.mapping)
        reconstructor = Reconstructor(fs, policy, pacing=self.pacing, app=self.app)
        finish = reconstructor.run(self.ops(), now=now)
        self.stats = reconstructor.stats
        return finish
