"""Workload reconstruction: lift trace records onto the live filesystem.

The TraceTracker argument (PAPERS.md): a stale trace replayed verbatim
bakes in the cache behaviour of the machine it was captured on.  The fix
is *reconstruction* — map each trace entity onto a file of the simulated
filesystem and re-issue its ops through the real syscall layer, so page
cache hits, readahead, delayed allocation, and request splitting are
decided live by *this* stack, not by the dead trace.

Two pieces:

- :class:`PlacementPolicy` — deterministic, seed-keyed mapping from
  trace ``file_id`` to a path on the simulated fs (string-seeded RNG per
  file id, the fleet-spec idiom, so two runs with the same seed place
  every entity identically and replay fingerprints are byte-stable).
  An explicit ``mapping`` overrides the policy per file id — that is how
  the capture->replay round-trip targets the exact files the original
  run touched.

- :class:`Reconstructor` — the streaming executor.  One record in, one
  (or two) syscalls out, O(distinct files) state, O(1) per op.  Nothing
  about the trace is retained; badly-shaped records are repaired and
  **counted**: offsets past the per-file cap wrap (``clamped``),
  unaligned O_DIRECT ranges are block-aligned (``realigned``), reads
  beyond EOF first materialize the missing file body the way the capture
  machine must have had it (``backfill_bytes``), and ops the device has
  no room for are skipped (``no_space``), never raised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..constants import BLOCK_SIZE, MIB, block_align_down, block_align_up
from ..errors import InvalidArgument, NoSpaceError
from ..fs.base import FallocMode, FileHandle, Filesystem
from ..types import IoOp

#: default per-file address-space cap (trace offsets wrap into it)
DEFAULT_FILE_CAP = 16 * MIB


class PlacementPolicy:
    """Deterministic seed-keyed ``file_id -> path`` placement."""

    def __init__(
        self,
        seed: int = 0,
        root: str = "/replay",
        fanout: int = 16,
        file_cap: int = DEFAULT_FILE_CAP,
        mapping: Optional[Dict[int, str]] = None,
    ) -> None:
        if fanout < 1:
            raise InvalidArgument("fanout must be >= 1")
        if file_cap < BLOCK_SIZE:
            raise InvalidArgument("file_cap must cover at least one block")
        self.seed = seed
        self.root = root.rstrip("/")
        self.fanout = fanout
        self.file_cap = file_cap
        self.mapping = dict(mapping) if mapping else {}
        self._cache: Dict[int, str] = {}

    def path_for(self, file_id: int) -> str:
        explicit = self.mapping.get(file_id)
        if explicit is not None:
            return explicit
        cached = self._cache.get(file_id)
        if cached is None:
            rng = random.Random(f"repro.replay:{self.seed}:place:{file_id}")
            bucket = rng.randrange(self.fanout)
            cached = f"{self.root}/d{bucket:02d}/f{file_id:08x}"
            self._cache[file_id] = cached
        return cached

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "root": self.root,
            "fanout": self.fanout,
            "file_cap": self.file_cap,
            "explicit_mappings": len(self.mapping),
        }


@dataclass
class ReconstructionStats:
    """What reconstruction did to make the trace land (all counted)."""

    ops_read: int = 0
    ops_write: int = 0
    ops_fsync: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: file body materialized so reads-beyond-EOF have something to hit
    backfill_bytes: int = 0
    files_created: int = 0
    #: offsets wrapped into the per-file cap
    clamped: int = 0
    #: unaligned O_DIRECT ranges repaired to block alignment
    realigned: int = 0
    #: ops skipped because the device ran out of space
    no_space: int = 0
    #: ops dropped for shapes even repair cannot fix
    dropped: int = 0

    @property
    def ops(self) -> int:
        return self.ops_read + self.ops_write + self.ops_fsync

    def to_dict(self) -> Dict[str, object]:
        return {
            "ops": self.ops,
            "ops_read": self.ops_read,
            "ops_write": self.ops_write,
            "ops_fsync": self.ops_fsync,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "backfill_bytes": self.backfill_bytes,
            "files_created": self.files_created,
            "clamped": self.clamped,
            "realigned": self.realigned,
            "no_space": self.no_space,
            "dropped": self.dropped,
        }


class Reconstructor:
    """Streaming executor: one trace record -> live syscalls.

    ``pacing`` selects the arrival model:

    - ``"afap"`` (default): closed-loop — each op is issued the moment
      the previous one completes.  This is what makes the capture->replay
      round-trip byte-identical to a closed-loop direct run.
    - ``"trace"``: open-loop — each op is issued no earlier than
      ``epoch + (record.time - first_record.time)``, preserving the
      trace's inter-arrival gaps (device idle periods are re-simulated).
    """

    def __init__(
        self,
        fs: Filesystem,
        policy: Optional[PlacementPolicy] = None,
        pacing: str = "afap",
        app: str = "replay",
    ) -> None:
        if pacing not in ("afap", "trace"):
            raise InvalidArgument(f"unknown pacing {pacing!r}")
        self.fs = fs
        self.policy = policy if policy is not None else PlacementPolicy()
        self.pacing = pacing
        self.app = app
        self.stats = ReconstructionStats()
        #: (file_id, o_direct) -> open handle; O(distinct files) state
        self._handles: Dict[Tuple[int, bool], FileHandle] = {}
        self._trace_epoch: Optional[float] = None
        self._virtual_epoch = 0.0

    # -- plumbing ------------------------------------------------------

    def _handle(self, file_id: int, o_direct: bool) -> FileHandle:
        key = (file_id, o_direct)
        handle = self._handles.get(key)
        if handle is None:
            path = self.policy.path_for(file_id)
            created = not self.fs.exists(path)
            handle = self.fs.open(
                path, o_direct=o_direct, app=self.app, create=True
            )
            if created:
                self.stats.files_created += 1
            self._handles[key] = handle
        return handle

    def _shape(self, record: IoOp) -> Optional[Tuple[int, int]]:
        """Repair one record's range; None when it cannot be issued."""
        cap = self.policy.file_cap
        offset, size = record.offset, record.size
        if size <= 0:
            self.stats.dropped += 1
            return None
        if size > cap:
            size = cap
            self.stats.clamped += 1
        if offset + size > cap:
            # wrap rather than truncate: the tail of a huge file is real
            # traffic, it just lands lower in the reconstructed file
            offset = offset % cap
            if offset + size > cap:
                offset = cap - size
            self.stats.clamped += 1
        if record.o_direct and (offset % BLOCK_SIZE or size % BLOCK_SIZE):
            aligned_start = block_align_down(offset)
            aligned_end = block_align_up(offset + size)
            if aligned_end - aligned_start > cap:
                aligned_end = aligned_start + cap
            offset, size = aligned_start, aligned_end - aligned_start
            self.stats.realigned += 1
        return offset, size

    # -- the one-op step ------------------------------------------------

    def apply(self, record: IoOp, now: float) -> float:
        """Issue one record; returns the new virtual time."""
        if self.pacing == "trace":
            if self._trace_epoch is None:
                self._trace_epoch = record.time
                self._virtual_epoch = now
            now = max(now, self._virtual_epoch + record.time - self._trace_epoch)
        try:
            if record.op == "fsync":
                handle = self._handle(record.file_id, record.o_direct)
                result = self.fs.fsync(handle, now=now)
                self.stats.ops_fsync += 1
                return result.finish_time
            shaped = self._shape(record)
            if shaped is None:
                return now
            offset, size = shaped
            handle = self._handle(record.file_id, record.o_direct)
            if record.op == "read":
                inode = self.fs.inode(handle.ino)
                end = offset + size
                if inode.size < end:
                    # the capture machine had this file body; rebuild it
                    grow = end - inode.size
                    now = self.fs.fallocate(
                        handle, FallocMode.ALLOCATE, inode.size, grow, now=now
                    ).finish_time
                    self.stats.backfill_bytes += grow
                result = self.fs.read(handle, offset, size, now=now)
                self.stats.ops_read += 1
                self.stats.bytes_read += size
            elif record.op == "write":
                result = self.fs.write(handle, offset, size, now=now)
                self.stats.ops_write += 1
                self.stats.bytes_written += size
            else:
                self.stats.dropped += 1
                return now
            return result.finish_time
        except NoSpaceError:
            self.stats.no_space += 1
            return now

    # -- the streaming pass ---------------------------------------------

    def run(self, records: Iterable[IoOp], now: float = 0.0) -> float:
        """Replay a whole stream; returns the finish time."""
        apply = self.apply
        for record in records:
            now = apply(record, now)
        return now
