"""Streaming trace readers/writers for the three supported formats.

Every reader is a *generator over a file*: it yields unified
:class:`~repro.types.IoOp` records one at a time and never materializes
the trace in memory (the bounded-memory contract behind "replay millions
of ops").  Records a reader cannot make sense of are **counted, never
silent**: each reader carries a :class:`ParseStats` whose ``malformed`` /
``zero_length`` / ``out_of_order`` counters land verbatim in the replay
report.

Formats
-------

``blktrace`` — the text format ``blkparse`` prints::

    8,0  1  42  0.000104000  1234  Q  R  7864360 + 8 [fio]

  (device, cpu, seq, time, pid, action, rwbs, sector + nsectors, process).
  Only one action kind is accepted (default ``Q``, the queue event) so a
  trace that logs the full Q->G->I->D->C lifecycle is not counted five
  times.  Block traces address the *device*, not files; following
  TraceTracker's entity-mapping step, the reader lifts each record onto a
  synthetic file entity by splitting the LBA space into fixed-size
  regions: ``file_id = byte_offset // region_bytes``, with the offset
  rebased into the region.  Reconstruction then re-places those entities
  onto the simulated filesystem.

``csv`` — ``time,op,file_id,offset,size[,o_direct]`` with an optional
  header line; tolerant of blank lines and comments (``#``).

``binary`` — the compact ``repro.replay/v1`` container: an 8-byte header
  (magic ``RRPL``, version byte, record-size byte, 2 pad bytes) followed
  by fixed 34-byte struct-packed records.  ~3x smaller than the text
  forms and the only format the capture writer emits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from ..constants import MIB
from ..errors import InvalidArgument
from ..types import IO_OP_KINDS, IoOp

#: binary container magic + version (the ``repro.replay/v1`` wire format)
BINARY_MAGIC = b"RRPL"
BINARY_VERSION = 1

#: one packed record: op(u8), flags(u8), file_id(u64), offset(u64),
#: size(u64), time(f64) — little-endian, no padding
_RECORD = struct.Struct("<BBQQQd")
RECORD_SIZE = _RECORD.size  # 34

#: 8-byte header: magic(4) + version(u8) + record_size(u8) + pad(2)
_HEADER = struct.Struct("<4sBB2x")
HEADER_SIZE = _HEADER.size

#: op kind <-> wire code
_OP_CODE: Dict[str, int] = {op: i for i, op in enumerate(IO_OP_KINDS)}
_CODE_OP: Dict[int, str] = {i: op for op, i in _OP_CODE.items()}

_FLAG_O_DIRECT = 0x01

#: LBA-region size used to lift block-trace records onto file entities
DEFAULT_REGION_BYTES = 4 * MIB

#: actions accepted from blktrace text (Q = queued at the block layer)
DEFAULT_ACTIONS = frozenset({"Q"})


@dataclass
class ParseStats:
    """What a reader saw besides clean records (counted, never silent)."""

    records: int = 0          # clean records yielded
    malformed: int = 0        # unparseable lines / truncated tail bytes
    zero_length: int = 0      # ops with size <= 0 (skipped)
    out_of_order: int = 0     # timestamps behind the high-water mark (clamped)
    filtered: int = 0         # well-formed but outside the accepted set
    #: trace-time span covered by yielded records
    first_time: float = 0.0
    last_time: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "records": self.records,
            "malformed": self.malformed,
            "zero_length": self.zero_length,
            "out_of_order": self.out_of_order,
            "filtered": self.filtered,
            "first_time": self.first_time,
            "last_time": self.last_time,
        }


class TraceReader:
    """Base: iterate a trace source as a stream of :class:`IoOp`.

    ``stats`` is live while iterating and final after exhaustion.
    Timestamps are forced monotonic non-decreasing: a record behind the
    high-water mark is *clamped* to it and counted ``out_of_order``
    (replay needs a sane arrival order; dropping the op would silently
    shrink the workload).
    """

    format_name = "abstract"

    def __init__(self) -> None:
        self.stats = ParseStats()
        self._clock = 0.0

    def __iter__(self) -> Iterator[IoOp]:
        for record in self._records():
            time = record.time
            if time < self._clock:
                self.stats.out_of_order += 1
                record = IoOp(
                    record.op, record.file_id, record.offset, record.size,
                    self._clock, record.o_direct,
                )
            else:
                self._clock = time
            if self.stats.records == 0:
                self.stats.first_time = record.time
            self.stats.last_time = record.time
            self.stats.records += 1
            yield record

    def _records(self) -> Iterator[IoOp]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _skip(self, kind: str) -> None:
        setattr(self.stats, kind, getattr(self.stats, kind) + 1)


class BlktraceTextReader(TraceReader):
    """Streaming parser for blkparse-style text traces."""

    format_name = "blktrace"

    def __init__(
        self,
        path: str,
        region_bytes: int = DEFAULT_REGION_BYTES,
        actions: frozenset = DEFAULT_ACTIONS,
        sector_bytes: int = 512,
    ) -> None:
        super().__init__()
        if region_bytes <= 0:
            raise InvalidArgument("region_bytes must be positive")
        self.path = path
        self.region_bytes = region_bytes
        self.actions = actions
        self.sector_bytes = sector_bytes

    def _records(self) -> Iterator[IoOp]:
        with open(self.path, "r", errors="replace") as fh:
            for line in fh:
                record = self._parse_line(line)
                if record is not None:
                    yield record

    def _parse_line(self, line: str) -> Optional[IoOp]:
        parts = line.split()
        if not parts:
            return None  # blank: not even malformed
        # dev cpu seq time pid action rwbs sector + nsectors [proc]
        if len(parts) < 10 or parts[8] != "+":
            self._skip("malformed")
            return None
        try:
            time = float(parts[3])
            action = parts[5]
            rwbs = parts[6]
            sector = int(parts[7])
            nsectors = int(parts[9])
        except ValueError:
            self._skip("malformed")
            return None
        if action not in self.actions:
            self._skip("filtered")
            return None
        if "R" in rwbs:
            op = "read"
        elif "W" in rwbs:
            op = "write"
        else:
            self._skip("filtered")  # discard/flush/barrier records
            return None
        if nsectors <= 0 or sector < 0 or time < 0:
            self._skip("zero_length" if nsectors <= 0 else "malformed")
            return None
        byte_offset = sector * self.sector_bytes
        # TraceTracker-style entity lifting: LBA region -> file entity
        file_id = byte_offset // self.region_bytes
        offset = byte_offset % self.region_bytes
        return IoOp(op, file_id, offset, nsectors * self.sector_bytes, time)


class CsvTraceReader(TraceReader):
    """Streaming parser for ``time,op,file_id,offset,size[,o_direct]``."""

    format_name = "csv"

    _TRUE = frozenset({"1", "true", "yes", "y"})

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path

    def _records(self) -> Iterator[IoOp]:
        with open(self.path, "r", errors="replace") as fh:
            for line in fh:
                record = self._parse_line(line)
                if record is not None:
                    yield record

    def _parse_line(self, line: str) -> Optional[IoOp]:
        line = line.strip()
        if not line or line.startswith("#"):
            return None
        fields = [f.strip() for f in line.split(",")]
        if fields[0].lower() in ("time", "timestamp"):
            return None  # header
        if len(fields) < 5:
            self._skip("malformed")
            return None
        try:
            time = float(fields[0])
            op = fields[1].lower()
            file_id = int(fields[2])
            offset = int(fields[3])
            size = int(fields[4])
        except ValueError:
            self._skip("malformed")
            return None
        if op not in IO_OP_KINDS:
            self._skip("malformed")
            return None
        if op != "fsync" and size <= 0:
            self._skip("zero_length")
            return None
        if offset < 0 or file_id < 0 or time < 0:
            self._skip("malformed")
            return None
        o_direct = True
        if len(fields) > 5:
            o_direct = fields[5].lower() in self._TRUE
        return IoOp(op, file_id, offset, max(size, 0), time, o_direct)


class BinaryTraceReader(TraceReader):
    """Streaming parser for the compact ``repro.replay/v1`` container.

    Reads in 64 KiB chunks; a truncated tail (fewer bytes than one
    record) is counted ``malformed``, not raised.
    """

    format_name = "binary"

    _CHUNK_RECORDS = 1 << 11  # 2048 records (~68 KiB) per read

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path

    def _records(self) -> Iterator[IoOp]:
        with open(self.path, "rb") as fh:
            header = fh.read(HEADER_SIZE)
            if len(header) < HEADER_SIZE:
                self.stats.malformed += 1
                return
            magic, version, record_size = _HEADER.unpack(header)
            if magic != BINARY_MAGIC:
                raise InvalidArgument(
                    f"{self.path}: not a repro.replay trace (magic {magic!r})"
                )
            if version != BINARY_VERSION or record_size != RECORD_SIZE:
                raise InvalidArgument(
                    f"{self.path}: unsupported trace version {version} "
                    f"(record size {record_size}; want v{BINARY_VERSION}/"
                    f"{RECORD_SIZE})"
                )
            tail = b""
            while True:
                chunk = tail + fh.read(self._CHUNK_RECORDS * RECORD_SIZE)
                if not chunk:
                    return
                usable = len(chunk) - len(chunk) % RECORD_SIZE
                if usable == 0:
                    # truncated tail: fewer bytes than one record remain
                    self.stats.malformed += 1
                    return
                for start in range(0, usable, RECORD_SIZE):
                    code, flags, file_id, offset, size, time = _RECORD.unpack_from(
                        chunk, start
                    )
                    op = _CODE_OP.get(code)
                    if op is None:
                        self._skip("malformed")
                        continue
                    if op != "fsync" and size <= 0:
                        self._skip("zero_length")
                        continue
                    yield IoOp(
                        op, file_id, offset, size, time,
                        bool(flags & _FLAG_O_DIRECT),
                    )
                # a partial record at the chunk boundary is carried into
                # the next read; at EOF the loop above counts it malformed
                tail = chunk[usable:]


class BinaryTraceWriter:
    """Streaming writer for the compact container (context manager).

    Appends one packed record per :meth:`write_op`; nothing is buffered
    beyond the OS file buffer, so capture is as memory-bounded as replay.
    """

    def __init__(self, path_or_file) -> None:
        if isinstance(path_or_file, (str, bytes)):
            self._fh = open(path_or_file, "wb")
            self._owns = True
        else:
            self._fh = path_or_file
            self._owns = False
        self._fh.write(_HEADER.pack(BINARY_MAGIC, BINARY_VERSION, RECORD_SIZE))
        self.written = 0

    def write_op(self, record: IoOp) -> None:
        code = _OP_CODE.get(record.op)
        if code is None:
            raise InvalidArgument(f"unknown op kind {record.op!r}")
        flags = _FLAG_O_DIRECT if record.o_direct else 0
        self._fh.write(_RECORD.pack(
            code, flags, record.file_id, record.offset,
            max(record.size, 0), record.time,
        ))
        self.written += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# format detection
# ----------------------------------------------------------------------

FORMATS = ("blktrace", "csv", "binary")


def sniff_format(path: str) -> str:
    """Detect a trace file's format from its first bytes."""
    with open(path, "rb") as fh:
        head = fh.read(len(BINARY_MAGIC))
    if head == BINARY_MAGIC:
        return "binary"
    if path.endswith(".csv"):
        return "csv"
    with open(path, "r", errors="replace") as fh:
        first = fh.readline()
    fields = first.split(",")
    if len(fields) >= 5:
        return "csv"
    return "blktrace"


def open_trace(path: str, fmt: str = "auto", **kwargs) -> TraceReader:
    """A streaming reader for ``path`` (``fmt='auto'`` sniffs)."""
    if fmt == "auto":
        fmt = sniff_format(path)
    if fmt == "binary":
        return BinaryTraceReader(path)
    if fmt == "csv":
        return CsvTraceReader(path)
    if fmt == "blktrace":
        return BlktraceTextReader(path, **kwargs)
    raise InvalidArgument(f"unknown trace format {fmt!r} (want one of {FORMATS})")
