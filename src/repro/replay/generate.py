"""Seeded synthetic trace corpora in the compact binary format.

Real traces are not redistributable with the repo, so CI and the
acceptance run generate their own: a seed-keyed stream with the shape
block traces actually have — zipfian file popularity, sequential runs
broken by strided jumps, a read-heavy mix with write bursts, and
jittered-but-monotonic timestamps.  Generation is as streaming as
replay: one record is drawn, written, and forgotten, so a 100M-op corpus
needs the same memory as a 100-op one.
"""

from __future__ import annotations

import io
import random
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..constants import BLOCK_SIZE, KIB, MIB
from ..errors import InvalidArgument
from ..par import run_sharded
from ..types import IoOp
from .formats import BinaryTraceWriter, HEADER_SIZE


@dataclass(frozen=True)
class TraceProfile:
    """Knobs of the generated workload shape."""

    ops: int = 100_000
    seed: int = 0
    files: int = 64
    #: per-file address-space cap the generator draws offsets from
    file_bytes: int = 8 * MIB
    #: fraction of ops that are reads
    read_fraction: float = 0.7
    #: fraction of ops continuing the file's current sequential run
    sequential_fraction: float = 0.6
    #: request-size choices (block-aligned)
    request_sizes: tuple = (4 * KIB, 16 * KIB, 64 * KIB, 128 * KIB)
    #: zipf-ish skew: probability mass concentrates on low file ids
    skew: float = 1.1
    #: mean virtual inter-arrival gap between ops, seconds
    interarrival: float = 0.0002
    #: fsync roughly every N writes per file (0 disables)
    fsync_every: int = 32
    #: fraction of ops issued O_DIRECT (the rest go through the page
    #: cache, so replay exercises hit/readahead re-simulation)
    direct_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise InvalidArgument("ops must be >= 0")
        if self.files < 1:
            raise InvalidArgument("files must be >= 1")
        if self.file_bytes < BLOCK_SIZE:
            raise InvalidArgument("file_bytes must cover one block")

    def to_dict(self) -> Dict[str, object]:
        return {
            "ops": self.ops,
            "seed": self.seed,
            "files": self.files,
            "file_bytes": self.file_bytes,
            "read_fraction": self.read_fraction,
            "sequential_fraction": self.sequential_fraction,
            "request_sizes": list(self.request_sizes),
            "skew": self.skew,
            "interarrival": self.interarrival,
            "fsync_every": self.fsync_every,
            "direct_fraction": self.direct_fraction,
        }


def generate_ops(profile: TraceProfile) -> Iterator[IoOp]:
    """The seeded op stream (a generator; nothing is materialized)."""
    rng = random.Random(f"repro.replay.gen:{profile.seed}")
    # zipf-ish popularity via inverse-power draw (no scipy dependency)
    files = profile.files
    cursor: Dict[int, int] = {}      # file_id -> next sequential offset
    dirty_writes: Dict[int, int] = {}  # file_id -> writes since last fsync
    now = 0.0
    slots = max(1, profile.file_bytes // BLOCK_SIZE)
    for _ in range(profile.ops):
        u = rng.random()
        file_id = min(files - 1, int(files * (u ** profile.skew)))
        size = rng.choice(profile.request_sizes)
        if rng.random() < profile.sequential_fraction:
            offset = cursor.get(file_id, 0)
            if offset + size > profile.file_bytes:
                offset = 0
        else:
            offset = rng.randrange(slots) * BLOCK_SIZE
            offset = min(offset, profile.file_bytes - size)
            offset -= offset % BLOCK_SIZE
        cursor[file_id] = offset + size
        is_read = rng.random() < profile.read_fraction
        o_direct = rng.random() < profile.direct_fraction
        now += rng.expovariate(1.0 / profile.interarrival) if profile.interarrival else 0.0
        if is_read:
            yield IoOp("read", file_id, offset, size, now, o_direct)
            continue
        yield IoOp("write", file_id, offset, size, now, o_direct)
        count = dirty_writes.get(file_id, 0) + 1
        if profile.fsync_every and count >= profile.fsync_every:
            now += rng.expovariate(1.0 / profile.interarrival) if profile.interarrival else 0.0
            yield IoOp("fsync", file_id, 0, 0, now, o_direct)
            count = 0
        dirty_writes[file_id] = count


#: ops per shard when ``generate_trace`` runs parallel (the boundary is
#: part of the chunked scheme: it must not depend on the worker count)
DEFAULT_CHUNK_OPS = 25_000


def generate_ops_chunk(
    profile: TraceProfile, start: int, count: int
) -> Iterator[IoOp]:
    """Ops ``[start, start + count)`` of the *chunked* seeded stream.

    The chunked scheme differs from :func:`generate_ops` by design: each
    chunk draws from its own RNG (keyed on the seed *and* the chunk's
    start index) and resets the sequential cursors, so any chunk can be
    produced without generating its predecessors.  Timestamps are
    anchored to the global op index — op ``i`` lands in
    ``[i*ia, i*ia + 0.5*ia)`` and a trailing fsync in
    ``[i*ia + 0.5*ia, (i+1)*ia)`` — so the merged stream is monotonic
    across chunk boundaries.  The output depends only on
    ``(profile, start, count)``, never on how many workers ran.
    """
    rng = random.Random(f"repro.replay.gen:{profile.seed}:chunk:{start}")
    files = profile.files
    cursor: Dict[int, int] = {}
    dirty_writes: Dict[int, int] = {}
    interarrival = profile.interarrival
    slots = max(1, profile.file_bytes // BLOCK_SIZE)
    for index in range(start, start + count):
        u = rng.random()
        file_id = min(files - 1, int(files * (u ** profile.skew)))
        size = rng.choice(profile.request_sizes)
        if rng.random() < profile.sequential_fraction:
            offset = cursor.get(file_id, 0)
            if offset + size > profile.file_bytes:
                offset = 0
        else:
            offset = rng.randrange(slots) * BLOCK_SIZE
            offset = min(offset, profile.file_bytes - size)
            offset -= offset % BLOCK_SIZE
        cursor[file_id] = offset + size
        is_read = rng.random() < profile.read_fraction
        o_direct = rng.random() < profile.direct_fraction
        now = index * interarrival + rng.random() * 0.5 * interarrival
        if is_read:
            yield IoOp("read", file_id, offset, size, now, o_direct)
            continue
        yield IoOp("write", file_id, offset, size, now, o_direct)
        count_dirty = dirty_writes.get(file_id, 0) + 1
        if profile.fsync_every and count_dirty >= profile.fsync_every:
            now = index * interarrival + (
                0.5 + rng.random() * 0.5
            ) * interarrival
            yield IoOp("fsync", file_id, 0, 0, now, o_direct)
            count_dirty = 0
        dirty_writes[file_id] = count_dirty


def _generate_chunk(payload: Tuple[TraceProfile, int, int]) -> Tuple[bytes, int]:
    """Shard fn: pack one chunk, return its header-stripped bytes."""
    profile, start, count = payload
    buffer = io.BytesIO()
    writer = BinaryTraceWriter(buffer)
    for record in generate_ops_chunk(profile, start, count):
        writer.write_op(record)
    writer.close()
    return buffer.getvalue()[HEADER_SIZE:], writer.written


def generate_trace(
    path: str,
    profile: TraceProfile,
    workers: Optional[int] = None,
    chunk_ops: int = DEFAULT_CHUNK_OPS,
) -> int:
    """Stream a seeded corpus to ``path``; returns records written.

    Serial (``workers=None``) emits the legacy single-stream corpus of
    :func:`generate_ops` — existing seeds keep their bytes.  With
    ``workers`` the *chunked* scheme is used instead: the op range is
    cut into fixed ``chunk_ops`` shards packed in worker processes and
    concatenated in chunk order, so the file is byte-identical for any
    worker count (but is a different — equally valid — corpus than the
    serial stream for the same seed).
    """
    if workers is None:
        with BinaryTraceWriter(path) as writer:
            for record in generate_ops(profile):
                writer.write_op(record)
            return writer.written
    if chunk_ops < 1:
        raise InvalidArgument("chunk_ops must be >= 1")
    payloads = [
        (profile, start, min(chunk_ops, profile.ops - start))
        for start in range(0, profile.ops, chunk_ops)
    ]
    chunks = run_sharded(
        _generate_chunk, payloads, workers=workers, label="replay generate"
    )
    header = io.BytesIO()
    BinaryTraceWriter(header).close()
    total = 0
    with open(path, "wb") as fh:
        fh.write(header.getvalue())
        for body, written in chunks:
            fh.write(body)
            total += written
    return total
