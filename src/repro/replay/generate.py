"""Seeded synthetic trace corpora in the compact binary format.

Real traces are not redistributable with the repo, so CI and the
acceptance run generate their own: a seed-keyed stream with the shape
block traces actually have — zipfian file popularity, sequential runs
broken by strided jumps, a read-heavy mix with write bursts, and
jittered-but-monotonic timestamps.  Generation is as streaming as
replay: one record is drawn, written, and forgotten, so a 100M-op corpus
needs the same memory as a 100-op one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator

from ..constants import BLOCK_SIZE, KIB, MIB
from ..errors import InvalidArgument
from ..types import IoOp
from .formats import BinaryTraceWriter


@dataclass(frozen=True)
class TraceProfile:
    """Knobs of the generated workload shape."""

    ops: int = 100_000
    seed: int = 0
    files: int = 64
    #: per-file address-space cap the generator draws offsets from
    file_bytes: int = 8 * MIB
    #: fraction of ops that are reads
    read_fraction: float = 0.7
    #: fraction of ops continuing the file's current sequential run
    sequential_fraction: float = 0.6
    #: request-size choices (block-aligned)
    request_sizes: tuple = (4 * KIB, 16 * KIB, 64 * KIB, 128 * KIB)
    #: zipf-ish skew: probability mass concentrates on low file ids
    skew: float = 1.1
    #: mean virtual inter-arrival gap between ops, seconds
    interarrival: float = 0.0002
    #: fsync roughly every N writes per file (0 disables)
    fsync_every: int = 32
    #: fraction of ops issued O_DIRECT (the rest go through the page
    #: cache, so replay exercises hit/readahead re-simulation)
    direct_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise InvalidArgument("ops must be >= 0")
        if self.files < 1:
            raise InvalidArgument("files must be >= 1")
        if self.file_bytes < BLOCK_SIZE:
            raise InvalidArgument("file_bytes must cover one block")

    def to_dict(self) -> Dict[str, object]:
        return {
            "ops": self.ops,
            "seed": self.seed,
            "files": self.files,
            "file_bytes": self.file_bytes,
            "read_fraction": self.read_fraction,
            "sequential_fraction": self.sequential_fraction,
            "request_sizes": list(self.request_sizes),
            "skew": self.skew,
            "interarrival": self.interarrival,
            "fsync_every": self.fsync_every,
            "direct_fraction": self.direct_fraction,
        }


def generate_ops(profile: TraceProfile) -> Iterator[IoOp]:
    """The seeded op stream (a generator; nothing is materialized)."""
    rng = random.Random(f"repro.replay.gen:{profile.seed}")
    # zipf-ish popularity via inverse-power draw (no scipy dependency)
    files = profile.files
    cursor: Dict[int, int] = {}      # file_id -> next sequential offset
    dirty_writes: Dict[int, int] = {}  # file_id -> writes since last fsync
    now = 0.0
    slots = max(1, profile.file_bytes // BLOCK_SIZE)
    for _ in range(profile.ops):
        u = rng.random()
        file_id = min(files - 1, int(files * (u ** profile.skew)))
        size = rng.choice(profile.request_sizes)
        if rng.random() < profile.sequential_fraction:
            offset = cursor.get(file_id, 0)
            if offset + size > profile.file_bytes:
                offset = 0
        else:
            offset = rng.randrange(slots) * BLOCK_SIZE
            offset = min(offset, profile.file_bytes - size)
            offset -= offset % BLOCK_SIZE
        cursor[file_id] = offset + size
        is_read = rng.random() < profile.read_fraction
        o_direct = rng.random() < profile.direct_fraction
        now += rng.expovariate(1.0 / profile.interarrival) if profile.interarrival else 0.0
        if is_read:
            yield IoOp("read", file_id, offset, size, now, o_direct)
            continue
        yield IoOp("write", file_id, offset, size, now, o_direct)
        count = dirty_writes.get(file_id, 0) + 1
        if profile.fsync_every and count >= profile.fsync_every:
            now += rng.expovariate(1.0 / profile.interarrival) if profile.interarrival else 0.0
            yield IoOp("fsync", file_id, 0, 0, now, o_direct)
            count = 0
        dirty_writes[file_id] = count


def generate_trace(path: str, profile: TraceProfile) -> int:
    """Stream a seeded corpus to ``path``; returns records written."""
    with BinaryTraceWriter(path) as writer:
        for record in generate_ops(profile):
            writer.write_op(record)
        return writer.written
