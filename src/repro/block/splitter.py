"""Turning mapped disk ranges into device commands.

``split_ranges`` is where *request splitting* physically happens in this
stack: the filesystem maps a system call to a list of ``(disk_offset,
length)`` ranges (one per extent piece), adjacent ranges are merged back
together (the block layer's request merging), and every surviving range is
capped at ``MAX_REQUEST_SIZE`` and emitted as one :class:`IoCommand`.

A perfectly contiguous file therefore yields one command per syscall, while
a file fragmented into 4 KiB pieces yields one command per piece — exactly
the effect Figure 1 of the paper illustrates.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..constants import MAX_REQUEST_SIZE
from .request import IoCommand, IoOp

DiskRange = Tuple[int, int]  # (device byte offset, length)


def merge_adjacent(ranges: Iterable[DiskRange]) -> List[DiskRange]:
    """Coalesce back-to-back disk ranges (block layer request merging).

    Ranges are merged only when the end of one equals the start of the
    next — i.e. when they are physically contiguous in LBA space.  The
    input order is preserved (an elevator would sort; the default
    ``none``/``mq-deadline`` path the paper measures keeps submission
    order for a single synchronous syscall).
    """
    merged: List[DiskRange] = []
    for offset, length in ranges:
        if length <= 0:
            continue
        if merged and merged[-1][0] + merged[-1][1] == offset:
            merged[-1] = (merged[-1][0], merged[-1][1] + length)
        else:
            merged.append((offset, length))
    return merged


def split_ranges(
    op: IoOp,
    ranges: Sequence[DiskRange],
    tag: str = "",
    max_request_size: int = MAX_REQUEST_SIZE,
    pid: int = 0,
) -> List[IoCommand]:
    """Build the command list for one system call.

    Returns one command per contiguous LBA run, each at most
    ``max_request_size`` bytes.  ``len(result)`` is the paper's
    "number of I/O requests" for the syscall.

    ``pid`` is the originating syscall's provenance id (0 = untracked);
    every emitted command carries it so device completions can be tied
    back to the syscall that caused them.

    Merging and capping happen in a single pass — this runs once per
    syscall with one entry per extent piece, so no intermediate merged
    list is allocated.  Semantics match ``merge_adjacent`` followed by
    capping (the property tests assert exactly that).
    """
    commands: List[IoCommand] = []
    append = commands.append
    extend = commands.extend
    # Construct commands through tuple.__new__ directly: this is the
    # hottest allocation site in the stack (one command per emitted
    # request) and the generated NamedTuple __new__ wrapper costs ~2x a
    # raw tuple fill.  Field order must match IoCommand's declaration.
    # Full-size caps for a long run are emitted as one list.extend over a
    # generator — the count is arithmetic, not a subtract-and-test loop.
    new = tuple.__new__
    cur_offset = 0
    cur_length = 0
    for offset, length in ranges:
        if length <= 0:
            continue
        if cur_length and cur_offset + cur_length == offset:
            cur_length += length
            continue
        if cur_length:
            caps = (cur_length - 1) // max_request_size
            if caps:
                extend(
                    new(IoCommand, (op, cur_offset + i * max_request_size,
                                    max_request_size, tag, pid))
                    for i in range(caps)
                )
                cur_offset += caps * max_request_size
                cur_length -= caps * max_request_size
            append(new(IoCommand, (op, cur_offset, cur_length, tag, pid)))
        cur_offset = offset
        cur_length = length
    if cur_length:
        caps = (cur_length - 1) // max_request_size
        if caps:
            extend(
                new(IoCommand, (op, cur_offset + i * max_request_size,
                                max_request_size, tag, pid))
                for i in range(caps)
            )
            cur_offset += caps * max_request_size
            cur_length -= caps * max_request_size
        append(new(IoCommand, (op, cur_offset, cur_length, tag, pid)))
    return commands
