"""Block layer: contiguous-LBA I/O commands, splitting, scheduling, tracing.

This layer reproduces the structural cause of the paper's *request
splitting*: a single system call against a fragmented file maps to several
disjoint LBA ranges, and because an :class:`IoCommand` (like a Linux ``bio``)
can only describe one contiguous range, the call becomes several commands.
"""

from .request import IoCommand, IoOp
from .splitter import split_ranges, merge_adjacent
from .scheduler import BlockScheduler, SubmitResult
from .tracer import BlockTracer, TrafficCounter

__all__ = [
    "IoCommand",
    "IoOp",
    "split_ranges",
    "merge_adjacent",
    "BlockScheduler",
    "SubmitResult",
    "BlockTracer",
    "TrafficCounter",
]
