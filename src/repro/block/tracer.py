"""blktrace-equivalent traffic accounting.

Counts bytes and commands below the filesystem, split by the ``tag`` each
command carries, so experiments can report e.g. "the defragmenter issued
163 MB of reads and 137 MB of writes" separately from workload traffic —
exactly what the paper measures with blktrace/iotop.

When the observability plane is enabled the tracer also emits each
command into the shared ``repro.obs`` event ring (track ``"block"``), so
Chrome traces show raw block commands without a second private log; the
in-memory ``keep_log`` list remains available for callers that need
random access to the raw commands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..obs import hooks as obs_hooks
from .request import IoCommand, IoOp


@dataclass
class TrafficCounter:
    """Bytes/commands for one tag."""

    read_bytes: int = 0
    write_bytes: int = 0
    discard_bytes: int = 0
    read_commands: int = 0
    write_commands: int = 0
    discard_commands: int = 0

    def account(self, command: IoCommand) -> None:
        if command.op is IoOp.READ:
            self.read_bytes += command.length
            self.read_commands += 1
        elif command.op is IoOp.WRITE:
            self.write_bytes += command.length
            self.write_commands += 1
        else:
            self.discard_bytes += command.length
            self.discard_commands += 1

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def snapshot(self) -> "TrafficCounter":
        return TrafficCounter(
            self.read_bytes, self.write_bytes, self.discard_bytes,
            self.read_commands, self.write_commands, self.discard_commands,
        )

    def delta(self, earlier: "TrafficCounter") -> "TrafficCounter":
        return TrafficCounter(
            self.read_bytes - earlier.read_bytes,
            self.write_bytes - earlier.write_bytes,
            self.discard_bytes - earlier.discard_bytes,
            self.read_commands - earlier.read_commands,
            self.write_commands - earlier.write_commands,
            self.discard_commands - earlier.discard_commands,
        )


class BlockTracer:
    """Per-tag traffic counters plus an optional raw command log."""

    def __init__(self, keep_log: bool = False) -> None:
        self.by_tag: Dict[str, TrafficCounter] = {}
        self.total = TrafficCounter()
        self.keep_log = keep_log
        self.log: List[IoCommand] = []
        self.obs = obs_hooks.current()
        # pre-resolved sentinel: null-plane observe() never touches the facade
        self._emitting = self.obs.enabled

    def observe(self, commands: Iterable[IoCommand], now: float = 0.0) -> None:
        emit = self._emitting
        by_tag = self.by_tag
        total_account = self.total.account
        keep_log = self.keep_log
        for command in commands:
            total_account(command)
            counter = by_tag.get(command.tag)
            if counter is None:
                counter = by_tag[command.tag] = TrafficCounter()
            counter.account(command)
            if keep_log:
                self.log.append(command)
            if emit:
                # pid ties the raw command back to its syscall's
                # provenance tree (0 = untracked)
                self.obs.event(
                    "block.cmd", now, track="block",
                    op=command.op.value, offset=command.offset,
                    length=command.length, tag=command.tag,
                    pid=command.pid,
                )

    def tag(self, name: str) -> TrafficCounter:
        """Counter for one tag (empty counter if never seen)."""
        return self.by_tag.get(name, TrafficCounter())
