"""I/O command structures.

An :class:`IoCommand` corresponds to the chain ``bio -> request -> device
command`` in Linux: it can only express one *contiguous* LBA range.  That
restriction is what makes fragmentation expensive on modern devices — the
paper's *request splitting*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import InvalidArgument


class IoOp(enum.Enum):
    READ = "read"
    WRITE = "write"
    DISCARD = "discard"


@dataclass(frozen=True)
class IoCommand:
    """One contiguous-LBA device command.

    Attributes:
        op: read / write / discard.
        offset: device byte address (LBA * block size).
        length: bytes, > 0.
        tag: origin label used by the tracer to attribute traffic
            (e.g. ``"workload"`` vs ``"defrag"``).
    """

    op: IoOp
    offset: int
    length: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise InvalidArgument(f"negative device offset {self.offset}")
        if self.length <= 0:
            raise InvalidArgument(f"non-positive command length {self.length}")

    @property
    def end(self) -> int:
        return self.offset + self.length

    def retagged(self, tag: str) -> "IoCommand":
        return IoCommand(self.op, self.offset, self.length, tag)
