"""I/O command structures.

An :class:`IoCommand` corresponds to the chain ``bio -> request -> device
command`` in Linux: it can only express one *contiguous* LBA range.  That
restriction is what makes fragmentation expensive on modern devices — the
paper's *request splitting*.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from ..errors import InvalidArgument


class IoOp(enum.Enum):
    READ = "read"
    WRITE = "write"
    DISCARD = "discard"


class IoCommand(NamedTuple):
    """One contiguous-LBA device command.

    A ``NamedTuple`` rather than a dataclass: commands are constructed in
    the per-piece splitter loop, the single hottest allocation site in the
    stack, and the tuple constructor is about twice as fast.  Argument
    validation lives in :meth:`validate` — ranges are validated once at
    the syscall boundary, not per command.

    Attributes:
        op: read / write / discard.
        offset: device byte address (LBA * block size).
        length: bytes, > 0.
        tag: origin label used by the tracer to attribute traffic
            (e.g. ``"workload"`` vs ``"defrag"``).
        pid: provenance id of the originating syscall, 0 when causal
            tracing is disarmed or the command has no syscall origin
            (GC, fstrim).  Minted by the fs layer only when an armed
            :class:`~repro.obs.hooks.Instrumentation` is installed; the
            device layer keys per-command completion edges on it.
    """

    op: IoOp
    offset: int
    length: int
    tag: str = ""
    pid: int = 0

    @property
    def end(self) -> int:
        return self.offset + self.length

    def validate(self) -> "IoCommand":
        if self.offset < 0:
            raise InvalidArgument(f"negative device offset {self.offset}")
        if self.length <= 0:
            raise InvalidArgument(f"non-positive command length {self.length}")
        return self

    def retagged(self, tag: str) -> "IoCommand":
        return IoCommand(self.op, self.offset, self.length, tag, self.pid)
