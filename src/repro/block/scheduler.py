"""Host-side block scheduler: kernel cost + submission to the device.

Charges the per-request kernel overhead (bio/request/command construction,
completion handling — the cost the paper says request splitting multiplies
and that dominates on Optane) and dispatches the batch to the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from .request import IoCommand
from .tracer import BlockTracer
from ..errors import DeviceIOError, InjectedCrash
from ..faults import hooks as fault_hooks
from ..obs import hooks as obs_hooks

if TYPE_CHECKING:  # avoid a block <-> device import cycle at runtime
    from ..device.base import StorageDevice


@dataclass(frozen=True)
class SubmitResult:
    """What the caller (VFS) learns about one submitted batch."""

    finish_time: float
    latency: float
    commands: int
    kernel_time: float
    device_time: float


class BlockScheduler:
    """Per-request kernel accounting in front of a single device."""

    def __init__(
        self,
        device: "StorageDevice",
        kernel_overhead_per_request: float = 0.000003,
        tracer: Optional[BlockTracer] = None,
    ) -> None:
        self.device = device
        self.kernel_overhead_per_request = kernel_overhead_per_request
        self.tracer = tracer if tracer is not None else BlockTracer()
        self.obs = obs_hooks.current()
        self.faults = fault_hooks.current()
        # pre-resolved sentinels so the null-plane submit path skips
        # facade dispatch entirely
        self._observing = self.obs.enabled
        self._faulting = self.faults.enabled
        # causal tracing armed (obs enabled AND a provenance recorder
        # installed); only ever consulted inside the _observing branch
        self._tracing = self._observing and self.obs.provenance is not None
        self.requests_submitted = 0
        self.kernel_time_total = 0.0
        #: shared kernel-CPU timeline: request construction serializes
        #: across *all* submitters, so a co-running process that floods
        #: the block layer with small requests steals CPU from everyone
        #: (the paper's "kernel overheads for creating and managing I/Os")
        self._cpu_free = 0.0

    def submit(self, commands: Sequence[IoCommand], now: float = 0.0) -> SubmitResult:
        """Submit one syscall's command batch; returns completion info.

        The kernel builds and queues every request before the device can
        finish the batch, so kernel time is serial and precedes device
        service.  Synchronous semantics: the result's ``finish_time`` is
        when *all* split requests completed.
        """
        if not commands:
            return SubmitResult(now, 0.0, 0, 0.0, 0.0)
        kernel_time = self.kernel_overhead_per_request * len(commands)
        if self._faulting:
            first = commands[0]
            fire = self.faults.check(
                "block.submit", op=first.op.value, offset=first.offset,
                length=sum(c.length for c in commands), now=now,
            )
            if fire is not None:
                if fire.kind == "io_error":
                    raise DeviceIOError("block layer: injected I/O error before dispatch")
                if fire.kind == "crash":
                    raise InjectedCrash("injected power-off in the block layer")
                if fire.kind == "latency":
                    # a kernel-side stall (e.g. writeback throttling): the
                    # batch burns extra CPU time before dispatch
                    kernel_time += (
                        fire.latency if fire.latency is not None
                        else fault_hooks.DEFAULT_LATENCY_SPIKE
                    )
        cpu_start = max(now, self._cpu_free)
        cpu_done = cpu_start + kernel_time
        self._cpu_free = cpu_done
        batch = self.device.submit(commands, cpu_done)
        self.requests_submitted += len(commands)
        self.kernel_time_total += kernel_time
        self.tracer.observe(commands, now)
        if self._observing:
            # split fan-out (commands per syscall), kernel CPU, and how far
            # behind real time the shared kernel-CPU timeline is running;
            # queue_wait/base_cpu partition this submit's latency for
            # attribution (base = what one unsplit request would have cost)
            self.obs.block_submit(
                len(commands), kernel_time, max(0.0, self._cpu_free - now),
                queue_wait=cpu_start - now,
                base_cpu=self.kernel_overhead_per_request,
            )
            if self._tracing and commands[0].pid:
                # causal edge: syscall -> this batch's kernel-CPU window
                self.obs.provenance.submit(
                    commands[0].pid, len(commands), now, cpu_start, cpu_done
                )
        latency = batch.finish_time - now
        return SubmitResult(
            finish_time=batch.finish_time,
            latency=latency,
            commands=len(commands),
            kernel_time=kernel_time,
            device_time=batch.service_time,
        )
