"""Shared primitive types.

The whole stack measures file offsets, LBAs, and lengths in *bytes* (block
aligned where the layer requires it).  ``ByteRange`` is the half-open
interval primitive used by the VFS, the extent maps, and FragPicker's file
range lists.

``IoOp`` is the *workload-level* operation record: one read/write/fsync a
workload intends to issue against a file, before the VFS has applied
readahead, the page cache, or request splitting.  Synthetic generators
(:mod:`repro.workloads`) and trace replay (:mod:`repro.replay`) both
describe their op streams with it, so a captured trace and a synthetic
workload are the same thing to every consumer.  It is distinct from
:class:`repro.block.request.IoOp`, the block-layer *command kind* enum —
one is "what the application asked for", the other is "what the device
was told to do".
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import InvalidArgument

#: the operation kinds a workload-level :class:`IoOp` may carry
IO_OP_KINDS = ("read", "write", "fsync")


@dataclass(frozen=True)
class IoOp:
    """One workload-level I/O operation (the unified op record).

    No ``__post_init__`` validation on purpose: op streams are built in
    per-request loops (millions of records for a replayed trace), and the
    boundary that consumes them — the filesystem syscall layer or the
    replay reconstructor — validates once anyway.

    Attributes:
        op: ``"read"`` / ``"write"`` / ``"fsync"``.
        file_id: trace-scoped file identity (an inode number for captured
            syscall traces, a synthetic id for generators, a lifted
            region index for block traces).  Placement policies map it to
            a path; single-file workloads use 0.
        offset: file byte offset (0 for fsync).
        size: bytes (0 for fsync).
        time: submission timestamp in trace/virtual seconds (0.0 for
            closed-loop synthetic streams, which are paced by completion).
        o_direct: whether the op bypasses the page cache.
    """

    op: str
    file_id: int
    offset: int
    size: int
    time: float = 0.0
    o_direct: bool = True

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True, order=True)
class ByteRange:
    """Half-open byte interval ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise InvalidArgument(f"bad range [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "ByteRange") -> bool:
        """True when the two ranges share at least one byte, or touch.

        Touching ranges (``self.end == other.start``) are treated as
        overlapping on purpose: FragPicker's merge step must coalesce
        adjacent I/Os, otherwise migrating them separately would re-create
        fragmentation at their boundary (Section 4.1.2 of the paper).
        """
        return self.start <= other.end and other.start <= self.end

    def intersects(self, other: "ByteRange") -> bool:
        """Strict overlap: the ranges share at least one byte."""
        return max(self.start, other.start) < min(self.end, other.end)

    def union(self, other: "ByteRange") -> "ByteRange":
        return ByteRange(min(self.start, other.start), max(self.end, other.end))

    def intersection(self, other: "ByteRange") -> "ByteRange":
        if not self.intersects(other):
            raise InvalidArgument(f"{self} and {other} do not intersect")
        return ByteRange(max(self.start, other.start), min(self.end, other.end))

    def contains(self, other: "ByteRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def shift(self, delta: int) -> "ByteRange":
        return ByteRange(self.start + delta, self.end + delta)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end})"
