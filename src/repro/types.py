"""Shared primitive types.

The whole stack measures file offsets, LBAs, and lengths in *bytes* (block
aligned where the layer requires it).  ``ByteRange`` is the half-open
interval primitive used by the VFS, the extent maps, and FragPicker's file
range lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import InvalidArgument


@dataclass(frozen=True, order=True)
class ByteRange:
    """Half-open byte interval ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise InvalidArgument(f"bad range [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "ByteRange") -> bool:
        """True when the two ranges share at least one byte, or touch.

        Touching ranges (``self.end == other.start``) are treated as
        overlapping on purpose: FragPicker's merge step must coalesce
        adjacent I/Os, otherwise migrating them separately would re-create
        fragmentation at their boundary (Section 4.1.2 of the paper).
        """
        return self.start <= other.end and other.start <= self.end

    def intersects(self, other: "ByteRange") -> bool:
        """Strict overlap: the ranges share at least one byte."""
        return max(self.start, other.start) < min(self.end, other.end)

    def union(self, other: "ByteRange") -> "ByteRange":
        return ByteRange(min(self.start, other.start), max(self.end, other.end))

    def intersection(self, other: "ByteRange") -> "ByteRange":
        if not self.intersects(other):
            raise InvalidArgument(f"{self} and {other} do not intersect")
        return ByteRange(max(self.start, other.start), min(self.end, other.end))

    def contains(self, other: "ByteRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def shift(self, delta: int) -> "ByteRange":
        return ByteRange(self.start + delta, self.end + delta)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end})"
