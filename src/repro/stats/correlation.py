"""The two statistics of the paper's Section 3 analysis.

Equation (1): correlation coefficient (Pearson's r) —

    CC(X, Y) = sum((x - mx)(y - my)) / sqrt(sum((x - mx)^2) sum((y - my)^2))

Equation (2): normalized linear regression slope —

    NLRS(X, Y) = sum((x - mx)(y - my)) / sum((x - mx)^2)

where Y is performance *normalized to the lowest measurement* (the paper
normalizes "because the storage devices show an immense performance
difference").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import InvalidArgument


def _as_arrays(xs: Sequence[float], ys: Sequence[float]):
    if len(xs) != len(ys):
        raise InvalidArgument(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise InvalidArgument("need at least two samples")
    return np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)


def correlation_coefficient(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient, Equation (1) of the paper."""
    x, y = _as_arrays(xs, ys)
    dx, dy = x - x.mean(), y - y.mean()
    denom = float(np.sqrt((dx * dx).sum() * (dy * dy).sum()))
    if denom == 0.0:
        return 0.0
    return float((dx * dy).sum() / denom)


def nlrs(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Normalized linear regression slope, Equation (2) of the paper.

    Callers are expected to pass ``ys`` already normalized via
    :func:`normalize_to_min`; this function is the raw least-squares slope.
    """
    x, y = _as_arrays(xs, ys)
    dx, dy = x - x.mean(), y - y.mean()
    denom = float((dx * dx).sum())
    if denom == 0.0:
        return 0.0
    return float((dx * dy).sum() / denom)


def normalize_to_min(ys: Sequence[float]) -> list:
    """Normalize performance samples to the smallest one (paper Section 3)."""
    if not ys:
        raise InvalidArgument("empty sample list")
    lo = min(ys)
    if lo <= 0:
        raise InvalidArgument("performance samples must be positive")
    return [y / lo for y in ys]
