"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables and figure
captions report; this keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a monospace table with a header rule."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.6f}"
    return str(cell)
