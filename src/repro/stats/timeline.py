"""Event timelines and windowed throughput (the Figure 2 / Figure 10 view).

A :class:`Timeline` collects ``(virtual_time, amount)`` completion events —
e.g. one event per finished YCSB operation — and can be reduced to
operations-per-second over fixed windows, which is exactly how the paper
plots co-running application performance while a defragmenter works in the
background.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass
class Timeline:
    """Ordered completion events ``(time, amount)``."""

    events: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, amount: float = 1.0) -> None:
        self.events.append((time, amount))

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1][0] - self.events[0][0]

    def total(self) -> float:
        return sum(amount for _, amount in self.events)

    def rate(self) -> float:
        """Mean events/sec over the whole timeline."""
        if self.duration <= 0:
            return 0.0
        return self.total() / self.duration

    def between(self, start: float, end: float) -> "Timeline":
        return Timeline([(t, a) for t, a in self.events if start <= t < end])


@dataclass
class Series:
    """A named sampled curve: monotone ``(time, value)`` points.

    Timelines hold *completion events* (amounts to be rate-reduced);
    a Series holds *readings* — fragmentation scores, free-run counts —
    sampled over virtual time, e.g. by
    :class:`repro.obs.sampler.FragmentationSampler`.
    """

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def samples(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def decimate(self) -> None:
        """Drop every other interior sample (keeps first and last)."""
        if len(self.times) < 4:
            return
        keep = [0] + list(range(1, len(self.times) - 1, 2)) + [len(self.times) - 1]
        self.times = [self.times[i] for i in keep]
        self.values = [self.values[i] for i in keep]

    def summary(self) -> dict:
        if not self.values:
            return {"count": 0, "first": 0.0, "last": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": len(self.values),
            "first": self.values[0],
            "last": self.values[-1],
            "min": min(self.values),
            "max": max(self.values),
        }

    def to_dict(self) -> dict:
        return {"name": self.name, "samples": [list(p) for p in self.samples()]}


def windowed_throughput(
    timeline: Timeline, window: float, start: float = 0.0, end: float = None
) -> List[Tuple[float, float]]:
    """Reduce a timeline to ``(window_center, amount_per_second)`` samples."""
    if not timeline.events and end is None:
        return []
    if end is None:
        end = timeline.events[-1][0]
    samples = []
    t = start
    events = sorted(timeline.events)
    idx = 0
    while t < end:
        hi = t + window
        amount = 0.0
        while idx < len(events) and events[idx][0] < hi:
            if events[idx][0] >= t:
                amount += events[idx][1]
            idx += 1
        samples.append((t + window / 2.0, amount / window))
        t = hi
    return samples


def mean_rate(samples: Sequence[Tuple[float, float]]) -> float:
    """Average of windowed throughput samples."""
    if not samples:
        return 0.0
    return sum(v for _, v in samples) / len(samples)
