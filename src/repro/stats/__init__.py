"""Statistics helpers used by the paper's analysis (Section 3) and benches."""

from .correlation import correlation_coefficient, nlrs, normalize_to_min
from .timeline import Timeline, windowed_throughput
from .tables import format_table

__all__ = [
    "correlation_coefficient",
    "nlrs",
    "normalize_to_min",
    "Timeline",
    "windowed_throughput",
    "format_table",
]
