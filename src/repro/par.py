"""Deterministic fan-out across worker processes.

Every heavy run in this repo — fault campaigns, crash-point sweeps, the
bench/perf suites, fleet ticks, corpus generation — is seed-keyed and
decomposes into independent shards.  This module executes those shards
on N spawned interpreters while keeping every fingerprinted document
**byte-identical to the serial run**: results are collected in shard
order (never completion order), floats are merged in the same order the
serial code would have produced them, and workers start from scrubbed
process-global state.

Two execution shapes:

- :class:`ParallelPlan` — stateless shards through a spawn-context
  ``ProcessPoolExecutor``.  One payload in, one result out; a shard that
  raises surfaces as :class:`ShardError` carrying the shard index, and
  every already-collected partial result is discarded.  A per-shard
  wall-clock timeout degrades gracefully: the straggler is cancelled and
  its payload re-executed serially in the parent, counted in the
  ``par.shard_timeouts`` / ``par.serial_fallbacks`` metrics — work is
  never silently dropped.
- :class:`StickyPool` — N persistent spawned workers each hosting one
  long-lived stateful shard (the fleet's volumes), driven over pipes
  with a ``call``/``call_all``/``call_each`` protocol.  Used where
  shards must retain state across rounds (fleet ticks).

When the ambient :class:`~repro.obs.hooks.Instrumentation` is armed,
plans **harvest** worker telemetry (:mod:`repro.obs.harvest`): each
shard runs under a fresh child instrumentation — in the worker *and* on
the serial path — whose :class:`TelemetrySnapshot` is merged into the
parent in shard order, so armed ``--workers N`` exports stay
byte-identical to serial and nothing a worker measured is lost.

``workers=None`` everywhere means the legacy serial path — byte-for-byte
the pre-parallel code — so committed baselines and CI stay valid; any
``workers >= 1`` goes through the engine (``--workers 1`` must equal
``--workers 4``, which the determinism tests assert).

Spawn (not fork) is used on every platform: each worker imports the
package fresh, so no parent caches, hook installations, or debug flags
leak in — :func:`reset_worker_state` re-scrubs anyway as a guard against
a future fork-based context.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .errors import InvalidArgument, ReproError


class ShardError(ReproError):
    """A worker failed while executing one shard.

    Carries the shard index and the worker-side traceback text; pickles
    across the process boundary intact (``__reduce__``).
    """

    def __init__(
        self,
        message: str,
        shard: Optional[int] = None,
        cause_type: Optional[str] = None,
        traceback_text: str = "",
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.cause_type = cause_type
        self.traceback_text = traceback_text

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.shard, self.cause_type, self.traceback_text),
        )


def resolve_workers(workers: Optional[int]) -> Optional[int]:
    """Validate a ``--workers`` value (None = serial path)."""
    if workers is None:
        return None
    if workers < 1:
        raise InvalidArgument("workers must be >= 1 (omit for the serial path)")
    return workers


def reset_worker_state() -> None:
    """Scrub process-global state so a worker's first result matches a
    fresh process.

    Spawn workers are already fresh interpreters; this is the explicit
    contract (and the guard if the start method ever changes): debug
    flags off, the null instrumentation installed, no fault plane armed.
    Device cost-model memos are instance-level and need no scrubbing.
    """
    from .faults import hooks as fault_hooks
    from .fs import extent_map
    from .obs import hooks as obs_hooks

    extent_map.DEBUG_CHECKS = False
    obs_hooks.install(obs_hooks.NULL)
    fault_hooks.install(fault_hooks.NULL)


def _spawn_context():
    import multiprocessing

    return multiprocessing.get_context("spawn")


def _call_shard(
    fn: Callable, index: int, payload: object, spec=None
) -> object:
    """Worker-side wrapper: tag any failure with its shard index.

    With a :class:`~repro.obs.harvest.HarvestSpec`, the shard runs under
    a fresh armed child instrumentation and returns ``(result,
    TelemetrySnapshot)`` — the parent merges the snapshot in shard order
    so a ``--workers N`` run loses no telemetry.
    """
    try:
        if spec is None:
            return fn(payload)
        from .obs import harvest
        from .obs import hooks as obs_hooks

        child = spec.child()
        with obs_hooks.use(child):
            result = fn(payload)
        return result, harvest.capture(child)
    except ShardError:
        raise
    except Exception as exc:
        raise ShardError(
            f"shard {index} failed: {type(exc).__name__}: {exc}",
            shard=index,
            cause_type=type(exc).__name__,
            traceback_text=traceback.format_exc(),
        ) from None


@dataclass
class PlanStats:
    """What one :meth:`ParallelPlan.run` did (mirrored into obs)."""

    shards: int = 0
    parallel: bool = False
    timeouts: int = 0
    serial_fallbacks: int = 0


class ParallelPlan:
    """Shard a seed-keyed work list across spawned workers.

    ``fn`` must be a picklable module-level callable taking one payload;
    payloads must pickle too.  :meth:`run` returns results **in payload
    order** regardless of completion order — the canonical merge that
    makes parallel output order-independent, hence byte-identical to
    serial.
    """

    def __init__(
        self,
        fn: Callable[[object], object],
        payloads: Sequence[object],
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        label: str = "par",
        harvest: bool = True,
    ) -> None:
        self.fn = fn
        self.payloads = list(payloads)
        self.workers = resolve_workers(workers)
        self.timeout_s = timeout_s
        self.label = label
        #: harvest=False opts out of plan-level telemetry capture for
        #: call sites whose shard fn manages its own instrumentation and
        #: returns its own snapshots (the bench suite)
        self.harvest = harvest
        self.stats = PlanStats()

    def run(self) -> List[object]:
        from .obs import hooks as obs_hooks

        payloads = self.payloads
        self.stats = PlanStats(
            shards=len(payloads),
            parallel=self.workers is not None and len(payloads) > 0,
        )
        obs = obs_hooks.current()
        spec = self._harvest_spec(obs)
        if self.workers is None or not payloads:
            results = self._run_serial(payloads, obs, spec)
        else:
            results = self._run_pool(payloads, obs, spec)
        # mirrored on BOTH paths: armed serial and parallel runs must
        # export identical par.* counters (the byte-parity contract)
        self._mirror(obs)
        return results

    def _harvest_spec(self, obs):
        if not (self.harvest and obs.enabled):
            return None
        from .obs import harvest

        return harvest.HarvestSpec.from_obs(obs)

    def _run_serial(self, payloads, obs, spec) -> List[object]:
        if spec is None:
            return [self.fn(payload) for payload in payloads]
        # Same per-shard child-capture-merge dance as the pool path, so
        # serial and parallel armed runs accumulate float sums in the
        # identical grouping and order (byte-identical exports).
        return [
            self._harvested_call(index, payload, obs, spec)
            for index, payload in enumerate(payloads)
        ]

    def _harvested_call(self, index, payload, obs, spec) -> object:
        from .obs import harvest
        from .obs import hooks as obs_hooks

        child = spec.child()
        with obs_hooks.use(child):
            result = self.fn(payload)
        harvest.capture(child).merge_into(
            obs, track_prefix=harvest.shard_track_prefix(index)
        )
        return result

    def _run_pool(self, payloads: List[object], obs, spec) -> List[object]:
        from .obs import harvest

        pool = ProcessPoolExecutor(
            max_workers=min(self.workers, len(payloads)),
            mp_context=_spawn_context(),
            initializer=reset_worker_state,
        )
        results: List[object] = [None] * len(payloads)
        hung = False
        try:
            futures = [
                pool.submit(_call_shard, self.fn, index, payload, spec)
                for index, payload in enumerate(payloads)
            ]
            # Collect strictly in shard order: the merge is independent
            # of which worker finishes first.  Each shard's wait doubles
            # as its wall-clock timeout window.  Snapshot merges happen
            # inside this loop, so they land in shard order too.
            for index, future in enumerate(futures):
                try:
                    value = future.result(timeout=self.timeout_s)
                except (_FuturesTimeout, TimeoutError):
                    future.cancel()
                    hung = True
                    self.stats.timeouts += 1
                    # graceful degradation: re-execute the straggler's
                    # payload serially in the parent — same fn, same
                    # payload, same deterministic result (harvested the
                    # same way, so no telemetry is lost either)
                    if spec is None:
                        results[index] = self.fn(payloads[index])
                    else:
                        results[index] = self._harvested_call(
                            index, payloads[index], obs, spec
                        )
                    self.stats.serial_fallbacks += 1
                    continue
                if spec is None:
                    results[index] = value
                else:
                    results[index], snapshot = value
                    snapshot.merge_into(
                        obs, track_prefix=harvest.shard_track_prefix(index)
                    )
        except ShardError:
            # partial results are discarded: the caller sees only the
            # failure, never a half-merged document
            raise
        finally:
            # a hung worker would block a waiting shutdown forever
            pool.shutdown(wait=not hung, cancel_futures=True)
        return results

    def _mirror(self, obs=None) -> None:
        if obs is None:
            from .obs import hooks as obs_hooks

            obs = obs_hooks.current()
        if not obs.enabled:
            return
        registry = obs.registry
        registry.counter("par.plans").inc()
        registry.counter("par.shards").inc(self.stats.shards)
        if self.stats.timeouts:
            registry.counter("par.shard_timeouts").inc(self.stats.timeouts)
            registry.counter("par.serial_fallbacks").inc(
                self.stats.serial_fallbacks
            )


def run_sharded(
    fn: Callable[[object], object],
    payloads: Sequence[object],
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    label: str = "par",
    harvest: bool = True,
) -> List[object]:
    """One-shot :class:`ParallelPlan` (the common call-site shape)."""
    return ParallelPlan(
        fn, payloads, workers=workers, timeout_s=timeout_s, label=label,
        harvest=harvest,
    ).run()


# ----------------------------------------------------------------------
# persistent stateful workers
# ----------------------------------------------------------------------


def _sticky_worker_main(conn, factory, payload, index: int) -> None:
    """Worker loop: build the shard state, then serve method calls."""
    reset_worker_state()
    try:
        state = factory(payload)
    except Exception as exc:
        conn.send(("err", ShardError(
            f"shard {index} failed to build: {type(exc).__name__}: {exc}",
            shard=index,
            cause_type=type(exc).__name__,
            traceback_text=traceback.format_exc(),
        )))
        conn.close()
        return
    conn.send(("ok", None))  # ready handshake
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message[0] == "close":
                break
            _, method, args, kwargs = message
            try:
                result = getattr(state, method)(*args, **kwargs)
                conn.send(("ok", result))
            except Exception as exc:
                conn.send(("err", ShardError(
                    f"shard {index} {method}() failed: "
                    f"{type(exc).__name__}: {exc}",
                    shard=index,
                    cause_type=type(exc).__name__,
                    traceback_text=traceback.format_exc(),
                )))
    finally:
        close = getattr(state, "close", None)
        if callable(close):
            try:
                close()
            except Exception:
                pass
        conn.close()


class StickyPool:
    """N persistent spawned workers, each hosting one stateful shard.

    ``factory`` (picklable, module-level) builds shard ``i``'s state from
    ``payloads[i]`` inside worker ``i``; the state then serves method
    calls until :meth:`close`, which also invokes its ``close()`` if it
    has one.  ``timeout_s`` bounds every reply wait (build included) —
    a silent shard raises :class:`ShardError` instead of hanging the run.
    """

    def __init__(
        self,
        factory: Callable[[object], object],
        payloads: Sequence[object],
        label: str = "shard",
        timeout_s: Optional[float] = None,
    ) -> None:
        ctx = _spawn_context()
        self.label = label
        self.timeout_s = timeout_s
        self._conns = []
        self._procs = []
        try:
            for index, payload in enumerate(payloads):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_sticky_worker_main,
                    args=(child_conn, factory, payload, index),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            for index in range(len(self._procs)):
                self._recv(index)  # ready handshake (or build failure)
        except BaseException:
            self.close()
            raise

    def __len__(self) -> int:
        return len(self._procs)

    def __enter__(self) -> "StickyPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _recv(self, shard: int) -> object:
        conn = self._conns[shard]
        if self.timeout_s is not None and not conn.poll(self.timeout_s):
            raise ShardError(
                f"{self.label} {shard} timed out after {self.timeout_s}s",
                shard=shard,
            )
        try:
            kind, value = conn.recv()
        except EOFError:
            raise ShardError(
                f"{self.label} {shard} died without replying", shard=shard
            ) from None
        if kind == "err":
            raise value
        return value

    def call(self, shard: int, method: str, *args, **kwargs) -> object:
        """Synchronous method call on one shard's state."""
        self._conns[shard].send(("call", method, args, kwargs))
        return self._recv(shard)

    def call_all(self, method: str, *args, **kwargs) -> List[object]:
        """Issue to every shard, then collect in shard order (the sends
        overlap, so the shards execute concurrently)."""
        for conn in self._conns:
            conn.send(("call", method, args, kwargs))
        return [self._recv(shard) for shard in range(len(self._conns))]

    def call_each(
        self, calls: Sequence[Tuple[int, str, tuple]]
    ) -> List[object]:
        """Issue per-shard calls concurrently; results in ``calls`` order.

        At most one outstanding call per shard — replies on one pipe are
        FIFO, so interleaving two methods to the same shard in one batch
        would still collect correctly, but callers here never need it.
        """
        for shard, method, args in calls:
            self._conns[shard].send(("call", method, args, {}))
        return [self._recv(shard) for shard, _, _ in calls]

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for conn in self._conns:
            conn.close()
