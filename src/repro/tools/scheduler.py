"""Scheduled (recurring) defragmentation — the paper's Section 2.4 context.

Fragmentation recurs quickly (within a week in [30]'s measurements), so
real deployments schedule defragmentation daily/weekly (Windows drive
optimizer, Defraggler; Diskeeper even recommends daily runs for database
and mail servers).  That is precisely when a tool's per-run I/O cost
compounds: this module provides a recurring-defrag actor so experiments
can integrate the cost of defragmentation *as a routine*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from ..core.report import DefragReport
from ..errors import InvalidArgument
from ..fs.base import Filesystem

#: builds a fresh background actor for one defrag cycle; receives the
#: report to fill.  Both ConventionalDefragmenter.actor(...) and
#: FragPicker.actor(...) producers fit.
CycleFactory = Callable[[DefragReport], Callable]


@dataclass
class ScheduleOutcome:
    """Accumulated cost of running defragmentation as a routine."""

    cycles: List[DefragReport] = field(default_factory=list)

    @property
    def total_write_bytes(self) -> int:
        return sum(r.write_bytes for r in self.cycles)

    @property
    def total_read_bytes(self) -> int:
        return sum(r.read_bytes for r in self.cycles)

    @property
    def total_elapsed(self) -> float:
        return sum(r.elapsed for r in self.cycles)


class ScheduledDefrag:
    """Runs a defrag cycle every ``period`` of virtual time.

    Use as a co-running actor::

        scheduled = ScheduledDefrag(make_cycle, period=86400.0, cycles=7)
        run_concurrently({"workload": ..., "defrag": scheduled.actor()})
    """

    def __init__(self, make_cycle: CycleFactory, period: float, cycles: int) -> None:
        if period <= 0 or cycles <= 0:
            raise InvalidArgument("period and cycles must be positive")
        self.make_cycle = make_cycle
        self.period = period
        self.cycles = cycles
        self.outcome = ScheduleOutcome()

    def actor(self):
        def _run(ctx):
            next_fire = ctx.now + self.period
            for _ in range(self.cycles):
                # idle until the next scheduled run
                if ctx.now < next_fire:
                    ctx.now = next_fire
                    yield
                report = DefragReport(tool="scheduled")
                cycle_actor = self.make_cycle(report)
                for _ in cycle_actor(ctx):
                    yield
                self.outcome.cycles.append(report)
                next_fire += self.period
        return _run

    def run_synchronously(self, fs: Filesystem, now: float = 0.0) -> float:
        """Back-to-back cycles without a co-running workload."""
        for _ in range(self.cycles):
            now += self.period
            report = DefragReport(tool="scheduled")

            class _Ctx:
                pass

            ctx = _Ctx()
            ctx.now = now
            for _ in self.make_cycle(report)(ctx):
                pass
            now = ctx.now
            self.outcome.cycles.append(report)
        return now
