"""Conventional full-file defragmenters (Section 2.3).

All of them migrate the *entire* content of each fragmented file — the
behaviour FragPicker's selective migration is measured against:

- On in-place filesystems (Ext4) the tool must relocate blocks explicitly:
  modelled as read-everything, punch, reallocate contiguously, rewrite —
  I/O-equivalent to e4defrag's donor-file + ``EXT4_IOC_MOVE_EXT`` dance.
  e4defrag's observed pathology of issuing 4 KiB reads for fragmented data
  (Section 5.3.1) is reproduced via ``read_io_size``.
- On out-of-place filesystems (F2FS with IPU off, Btrfs) a plain rewrite
  relocates data, so the tool reads and rewrites in place.

``extent_threshold`` reproduces ``btrfs filesystem defragment -t``: extents
at least that large are left alone, so only runs of smaller extents are
rewritten.  Because those runs align with *extent* boundaries rather than
request boundaries, stride reads can still split (the paper's Conv.-T
misalignment argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..constants import KIB, MIB, block_align_down
from ..core.range_list import FileRange
from ..core.recovery import MigrationJournal
from ..core.report import DefragReport
from ..errors import NoSpaceError
from ..fs.base import FallocMode, FileHandle, Filesystem
from ..fs.fiemap import fragment_count


@dataclass(frozen=True)
class ConventionalConfig:
    read_io_size: int = 1 * MIB
    write_io_size: int = 1 * MIB
    #: skip extents >= this size (btrfs -t); None migrates everything
    extent_threshold: Optional[int] = None
    #: Conventional tools write through the page cache (e4defrag's donor
    #: file, Btrfs CoW rewrite).  Dirty data then hits the device in large
    #: writeback bursts at fsync time — the mechanism behind the heavy
    #: co-running interference of Figures 2 and 10.
    buffered_writes: bool = True
    #: fsync cadence while migrating (one writeback burst per this much)
    fsync_every_bytes: int = 4 * MIB
    app: str = "defrag"


class ConventionalDefragmenter:
    """Full-file migration tool."""

    def __init__(
        self,
        fs: Filesystem,
        config: Optional[ConventionalConfig] = None,
        tool_name: str = "conventional",
        journal: Optional[MigrationJournal] = None,
    ) -> None:
        self.fs = fs
        self.config = config = config if config is not None else ConventionalConfig()
        self.tool_name = tool_name
        #: optional crash-safety journal for the in-place punch path, so
        #: the crash harness can hold conventional tools to the same
        #: recoverability contract as FragPicker
        self.journal = journal

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def defragment(self, paths: Iterable[str], now: float = 0.0) -> DefragReport:
        """Defragment each file fully, sequentially."""
        report = self._new_report(paths, now)
        for path, file_range in self._work_items(report):
            report.ranges_examined += 1
            now = self._migrate_whole(path, file_range, report, now)
        return self._finish_report(report, now)

    def actor(self, paths: Sequence[str], report_out: Optional[DefragReport] = None):
        """Co-running generator: yields once per migrated chunk."""
        def _run(ctx):
            report = report_out if report_out is not None else DefragReport(tool=self.tool_name)
            self._start_report(report, paths, ctx.now)
            for path, file_range in self._work_items(report):
                report.ranges_examined += 1
                for finish in self._migrate_chunked(path, file_range, report, ctx.now):
                    ctx.now = finish
                    yield
            self._finish_report(report, ctx.now)
        return _run

    # ------------------------------------------------------------------
    # work selection
    # ------------------------------------------------------------------

    def _work_items(self, report: DefragReport):
        """(path, range) pairs to migrate: whole files, or sub-threshold
        extent runs when an extent threshold is configured."""
        for path in list(report.fragments_before):
            if path not in self.fs.paths:
                continue
            if report.fragments_before[path] <= 1:
                report.ranges_skipped_contiguous += 1
                continue
            inode = self.fs.inode_of(path)
            end = block_align_down(inode.size)
            if end <= 0:
                continue
            if self.config.extent_threshold is None:
                yield path, FileRange(0, end)
                continue
            for run in self._small_extent_runs(path, end):
                yield path, run

    def _small_extent_runs(self, path: str, file_end: int) -> List[FileRange]:
        """Maximal runs of consecutive extents smaller than the threshold."""
        threshold = self.config.extent_threshold
        runs: List[FileRange] = []
        current: Optional[Tuple[int, int]] = None
        for extent in self.fs.inode_of(path).extent_map:
            if extent.file_offset >= file_end:
                break
            small = extent.length < threshold
            if small:
                if current is not None and current[1] == extent.file_offset:
                    current = (current[0], extent.file_end)
                else:
                    if current is not None:
                        runs.append(FileRange(current[0], min(current[1], file_end)))
                    current = (extent.file_offset, extent.file_end)
            else:
                if current is not None:
                    runs.append(FileRange(current[0], min(current[1], file_end)))
                    current = None
        if current is not None:
            runs.append(FileRange(current[0], min(current[1], file_end)))
        return runs

    # ------------------------------------------------------------------
    # migration mechanics
    # ------------------------------------------------------------------

    def _out_of_place(self) -> bool:
        if self.fs.fs_type == "f2fs":
            return not self.fs.ipu_enabled
        return not getattr(self.fs, "in_place_updates", False)

    def _migrate_whole(self, path: str, file_range: FileRange, report: DefragReport, now: float) -> float:
        for finish in self._migrate_chunked(path, file_range, report, now):
            now = finish
        return now

    def _migrate_chunked(self, path: str, file_range: FileRange, report: DefragReport, now: float):
        """Migrate a range, yielding after every syscall (for actors).

        Per-syscall granularity matters for co-running fairness: a real
        defragmenter's requests interleave with foreground traffic in the
        device queue rather than monopolizing it for megabytes at a time.
        """
        inode = self.fs.inode_of(path)
        handle = FileHandle(self.fs, inode.ino, o_direct=True, app=self.config.app)
        write_handle = FileHandle(
            self.fs, inode.ino, o_direct=not self.config.buffered_writes, app=self.config.app
        )
        before = self.fs.tracer.tag(self.config.app).snapshot()
        out_of_place = self._out_of_place()
        ipu_restore = None
        if self.fs.fs_type == "f2fs" and self.fs.ipu_enabled:
            ipu_restore = True
            self.fs.set_ipu(False)
        try:
            pos = file_range.start
            unsynced = 0
            while pos < file_range.end:
                chunk = min(self.config.write_io_size, file_range.end - pos)
                for now in self._migrate_chunk(handle, write_handle, pos, chunk, out_of_place, now):
                    yield now
                pos += chunk
                unsynced += chunk
                if unsynced >= self.config.fsync_every_bytes:
                    now = self.fs.fsync(write_handle, now=now).finish_time
                    unsynced = 0
                    yield now
            now = self.fs.fsync(write_handle, now=now).finish_time
        except NoSpaceError:
            pass  # like real tools: give up on this file
        finally:
            if ipu_restore:
                self.fs.set_ipu(True)
        delta = self.fs.tracer.tag(self.config.app).delta(before)
        report.read_bytes += delta.read_bytes
        report.write_bytes += delta.write_bytes
        report.ranges_migrated += 1
        yield now

    def _migrate_chunk(self, handle: FileHandle, write_handle: FileHandle, offset: int,
                       length: int, out_of_place: bool, now: float):
        """Generator: yields the running time after each syscall."""
        # reads happen at the tool's read granularity (4 KiB for e4defrag)
        data_needed = self.fs.page_store.any_content(handle.ino, offset, length)
        buffered: List[bytes] = []
        pos = offset
        while pos < offset + length:
            take = min(self.config.read_io_size, offset + length - pos)
            result = self.fs.read(handle, pos, take, now=now, want_data=data_needed)
            if data_needed and result.data is not None:
                buffered.append(result.data)
            now = result.finish_time
            pos += take
            yield now
        data = b"".join(buffered) if data_needed else None
        token = None
        if not out_of_place:
            if self.journal is not None:
                token = self.journal.record(handle.path, handle.ino, offset, length, data)
            now = self.fs.fallocate(handle, FallocMode.PUNCH_HOLE, offset, length, now=now).finish_time
            now = self.fs.fallocate(handle, FallocMode.ALLOCATE, offset, length, now=now).finish_time
        now = self.fs.write(write_handle, offset, length=length, data=data, now=now).finish_time
        if token is not None:
            self.journal.commit(token)
        yield now

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def _new_report(self, paths: Iterable[str], now: float) -> DefragReport:
        report = DefragReport(tool=self.tool_name)
        self._start_report(report, paths, now)
        return report

    def _start_report(self, report: DefragReport, paths: Iterable[str], now: float) -> None:
        report.started_at = now
        for path in paths:
            if path in self.fs.paths:
                report.fragments_before[path] = fragment_count(self.fs, path)
        report.files_examined = len(report.fragments_before)

    def _finish_report(self, report: DefragReport, now: float) -> DefragReport:
        report.finished_at = now
        for path in report.fragments_before:
            if path in self.fs.paths:
                report.fragments_after[path] = fragment_count(self.fs, path)
        return report


# ----------------------------------------------------------------------
# factories matching the paper's tools
# ----------------------------------------------------------------------

def e4defrag(fs: Filesystem) -> ConventionalDefragmenter:
    """Ext4's e4defrag: full migration, 4 KiB reads of fragmented data."""
    return ConventionalDefragmenter(
        fs, ConventionalConfig(read_io_size=4 * KIB), tool_name="e4defrag"
    )


def btrfs_defragment(fs: Filesystem, extent_threshold: Optional[int] = None) -> ConventionalDefragmenter:
    """btrfs filesystem defragment, optionally with ``-t <threshold>``."""
    name = "btrfs.defragment" + ("-t" if extent_threshold else "")
    return ConventionalDefragmenter(
        fs, ConventionalConfig(extent_threshold=extent_threshold), tool_name=name
    )


def f2fs_defrag(fs: Filesystem) -> ConventionalDefragmenter:
    """The paper's F2FS full-file-rewrite mimic."""
    return ConventionalDefragmenter(fs, ConventionalConfig(), tool_name="f2fs-defrag")


def make_conventional(fs: Filesystem, extent_threshold: Optional[int] = None) -> ConventionalDefragmenter:
    """The natural conventional tool for a filesystem type (Conv. in figures)."""
    if fs.fs_type == "ext4":
        return e4defrag(fs)
    if fs.fs_type == "btrfs":
        return btrfs_defragment(fs, extent_threshold)
    return f2fs_defrag(fs)
