"""Conventional defragmentation tools (the paper's baselines) and fstrim.

- :func:`e4defrag` — Ext4's tool: full-file migration into a donor area,
  observed by the paper to read fragmented data in 4 KiB I/Os.
- :func:`btrfs_defragment` — Btrfs's tool: full-file CoW rewrite, with the
  optional extent-size threshold (``-t``, "Conv.-T" in Figure 8c).
- :func:`f2fs_defrag` — the paper's stand-in for F2FS (which lacks a
  user-friendly file-level tool): full-file rewrite with IPU disabled.
- :class:`Fstrim` — discards free space, one command per free run.
"""

from .conventional import (
    ConventionalDefragmenter,
    e4defrag,
    btrfs_defragment,
    f2fs_defrag,
    make_conventional,
)
from .fstrim import Fstrim, FstrimResult

__all__ = [
    "ConventionalDefragmenter",
    "e4defrag",
    "btrfs_defragment",
    "f2fs_defrag",
    "make_conventional",
    "Fstrim",
    "FstrimResult",
]
