"""fstrim: discard the filesystem's free space.

A discard command, like any other, can only describe one contiguous LBA
range, so fragmented free space (e.g. right after deleting a fragmented
file) costs many commands — the paper's Section 5.2.2 discard-cost
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..block.request import IoCommand, IoOp
from ..constants import GIB
from ..fs.base import Filesystem


@dataclass(frozen=True)
class FstrimResult:
    elapsed: float
    discarded_bytes: int
    commands: int

    def cost_per_gb(self) -> float:
        """Seconds per GiB discarded (the paper's s/GB metric)."""
        if self.discarded_bytes == 0:
            return 0.0
        return self.elapsed / (self.discarded_bytes / GIB)


class Fstrim:
    """Issue one DISCARD per free-space run."""

    def __init__(self, fs: Filesystem, max_discard_size: int = 2 * GIB, app: str = "fstrim") -> None:
        self.fs = fs
        self.max_discard_size = max_discard_size
        self.app = app

    def run(self, now: float = 0.0, min_run: int = 0) -> FstrimResult:
        """Trim every free run of at least ``min_run`` bytes."""
        start = now
        discarded = 0
        commands = 0
        for run_start, run_len in self.fs.free_space.runs():
            if run_len < max(min_run, 1):
                continue
            pos = run_start
            remaining = run_len
            while remaining > 0:
                take = min(remaining, self.max_discard_size)
                command = IoCommand(IoOp.DISCARD, pos, take, self.app)
                # fstrim issues trims synchronously, one ioctl at a time
                now = self.fs.scheduler.submit([command], now).finish_time
                discarded += take
                commands += 1
                pos += take
                remaining -= take
        if self.fs.obs.enabled and commands:
            # FITRIM is a syscall (ioctl): count its elapsed time into the
            # measured total so the discard traffic's slices stay balanced
            self.fs.obs.syscall("fitrim", now - start)
        return FstrimResult(now - start, discarded, commands)
