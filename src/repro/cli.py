"""Command-line interface: run any paper experiment and print its report.

Usage::

    python -m repro list
    python -m repro run fig4
    python -m repro run fig8 --fs-type f2fs --device optane
    python -m repro run all
    python -m repro obs --out trace.json     # instrumented Fig. 10 run
    python -m repro obs --smoke              # fast CI smoke variant
    python -m repro obs --smoke --critical-path   # + wall-clock decomposition
    python -m repro trace --smoke            # causal provenance run:
                                             # syscall->cmd trees, critical
                                             # path, flamegraph, flow trace
    python -m repro bench --smoke --json BENCH_ci.json   # persist a suite run
    python -m repro bench --compare BENCH_base.json BENCH_ci.json
    python -m repro faults --smoke           # crash sweep + fault campaign
    python -m repro faults --devices hdd microsd flash optane
    python -m repro perf --smoke --json PERF_ci.json     # wall-clock suite
    python -m repro perf --compare PERF_base.json PERF_ci.json
    python -m repro fleet --volumes 64 --seed 7 --json   # defrag-as-a-service
    python -m repro fleet --smoke --volumes 8            # CI smoke fleet
    python -m repro fleet --smoke --slo                  # + SLO admission gating
    python -m repro fleet --compare FLEET_a.json FLEET_b.json
    python -m repro slo --smoke --json SLO_ci.json       # SLO engine over a fleet
    python -m repro slo --compare SLO_clean.json SLO_storm.json
    python -m repro slo --smoke --prom slo.prom          # budget gauges, Prom text
    python -m repro watch --smoke --once                 # final dashboard frame
    python -m repro watch --volumes 16 --every 2         # frame every 2nd tick
    python -m repro replay --generate 1000000 --out t.bin --seed 7
    python -m repro replay --trace t.bin --json R.json   # reconstruct + replay
    python -m repro replay --trace blk.txt --format blktrace --pacing trace
    python -m repro replay --smoke                       # generate + replay
    python -m repro replay --compare REPLAY_a.json REPLAY_b.json
    python -m repro fleet --smoke --workload trace:t.bin # trace-driven fleet
    python -m repro runs                                 # run-ledger history
    python -m repro runs trajectory --verb perf          # figures across runs
    python -m repro runs show 000003                     # one full manifest
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from . import cli_util
from .constants import MIB


def _fig4():
    from .bench.experiments import fig4_frag_metrics
    result = fig4_frag_metrics.run()
    return result.figure4() + "\n\n" + result.table1()


def _sec33():
    from .bench.experiments import sec33_update_sweep
    return sec33_update_sweep.run().report()


def _fig8(fs_type: str = "ext4", device: str = "optane"):
    from .bench.experiments import synthetic_defrag
    variants = ("original", "conv", "fragpicker", "fragpicker_b")
    if fs_type == "btrfs":
        variants = ("original", "conv", "conv_t", "fragpicker", "fragpicker_b")
    return synthetic_defrag.run(fs_type, device, 33 * MIB, variants).report()


def _fig9(fs_type: str = "ext4", device: str = "flash"):
    return _fig8(fs_type, device)


def _fig2():
    from .bench.experiments import fig2_background_defrag
    return fig2_background_defrag.run().report()


def _fig10():
    from .bench.experiments import fig10_ycsb_rocksdb
    return fig10_ycsb_rocksdb.run().report()


def _fig11(device: str = "flash"):
    from .bench.experiments import fig11_fileserver
    return fig11_fileserver.run(device).report()


def _fig12():
    from .bench.experiments import fig12_hotness
    return fig12_hotness.run().report()


def _sqlite():
    from .bench.experiments import sec532_sqlite_microsd
    return sec532_sqlite_microsd.run().report()


def _discard():
    from .bench.experiments import sec522_discard_cost
    return sec522_discard_cost.run().report()


def _splitting(device: str = "optane"):
    from .bench.experiments import ablation_splitting
    return ablation_splitting.run(device).report()


def _phases():
    from .bench.experiments import ablation_phases
    return ablation_phases.run().report()


def _endurance():
    from .bench.experiments import ext_endurance
    return ext_endurance.run().report()


def _pba():
    from .bench.experiments import ext_pba_defrag
    return ext_pba_defrag.run().report()


def _recurrence():
    from .bench.experiments import ext_recurrence
    return ext_recurrence.run().report()


EXPERIMENTS: Dict[str, Dict] = {
    "fig2": {"fn": _fig2, "help": "Figure 2: YCSB-A with background e4defrag"},
    "fig4": {"fn": _fig4, "help": "Figure 4 + Table 1: frag size/distance sweeps"},
    "sec33": {"fn": _sec33, "help": "Section 3.3: update sweeps"},
    "fig8": {"fn": _fig8, "help": "Figure 8: synthetic workloads (Optane)", "fs": True, "device": True},
    "fig9": {"fn": _fig9, "help": "Figure 9: synthetic workloads (flash)", "fs": True, "device": True},
    "fig10": {"fn": _fig10, "help": "Figure 10: YCSB-C / LSM on aged Ext4"},
    "fig11": {"fn": _fig11, "help": "Figure 11: fileserver grep cost", "device": True},
    "fig12": {"fn": _fig12, "help": "Figure 12: hotness criterion sweep"},
    "sqlite": {"fn": _sqlite, "help": "Section 5.3.2: SQLite on Btrfs/MicroSD"},
    "discard": {"fn": _discard, "help": "Section 5.2.2: discard (fstrim) cost"},
    "splitting": {"fn": _splitting, "help": "ablation: request splitting mechanics", "device": True},
    "phases": {"fn": _phases, "help": "ablation: FragPicker design choices"},
    "endurance": {"fn": _endurance, "help": "extension: flash wear per tool"},
    "pba": {"fn": _pba, "help": "extension: open-channel PBA fragmentation"},
    "recurrence": {"fn": _recurrence, "help": "extension: scheduled defrag routine"},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FragPicker (SOSP 2021) reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    runner.add_argument("--fs-type", default=None, choices=["ext4", "f2fs", "btrfs"])
    runner.add_argument("--device", default=None,
                        choices=["hdd", "microsd", "flash", "optane"])
    observer = sub.add_parser(
        "obs",
        help="instrumented Fig. 10 run: Chrome trace + metrics tables",
    )
    observer.add_argument("--smoke", action="store_true",
                          help="small/fast variant (CI smoke test)")
    observer.add_argument("--out", default="trace.json",
                          help="Chrome trace_event output path ('' to skip)")
    observer.add_argument("--metrics-json", default=None,
                          help="also dump the metrics registry as JSON here")
    observer.add_argument("--critical-path", action="store_true",
                          help="arm causal tracing and print the run's "
                               "critical-path decomposition")
    trace = sub.add_parser(
        "trace",
        help="causal provenance run: per-syscall command trees, critical "
             "path, flamegraph, and a Chrome trace with flow arrows",
    )
    trace.add_argument("--smoke", action="store_true",
                       help="small/fast variant (CI smoke test)")
    trace.add_argument("--top", type=int, default=10, metavar="N",
                       help="slowest-syscall table depth (default 10)")
    trace.add_argument("--device", default="optane",
                       choices=["hdd", "microsd", "flash", "optane"],
                       help="device model under the aged fs (default optane)")
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace_event output path ('' to skip)")
    trace.add_argument("--flame", default="flame.txt", metavar="PATH",
                       help="collapsed-stack flamegraph output ('' to skip)")
    trace.add_argument("--json", default=None, metavar="PATH",
                       help="also dump forest summary + critical path as JSON")
    trace.add_argument("--max-events", type=int, default=262144,
                       help="event-ring capacity for the armed run "
                            "(default 262144; wraps drop oldest edges)")
    bench = sub.add_parser(
        "bench",
        help="instrumented benchmark suite: persist BENCH_*.json, compare runs",
    )
    bench.add_argument("--smoke", action="store_true",
                       help="small/fast suite variant (CI smoke job)")
    bench.add_argument("--trace", default=None, metavar="PATH",
                       help="also write the instrumented run's Chrome trace "
                            "(spans + fragmentation timeline)")
    bench.add_argument("--metrics-json", default=None, metavar="PATH",
                       help="arm the ambient obs plane for the suite and "
                            "dump its metrics registry as JSON here")
    bench.add_argument("--prom", default=None, metavar="PATH",
                       help="arm the ambient obs plane and dump Prometheus "
                            "text-format metrics here")
    cli_util.add_workers_arg(bench)
    cli_util.add_document_args(bench, "BENCH", "BENCH", threshold=0.10)
    cli_util.add_ledger_args(bench)
    perf = sub.add_parser(
        "perf",
        help="wall-clock performance suite: persist PERF_*.json, compare runs",
    )
    perf.add_argument("--smoke", action="store_true",
                      help="small/fast suite variant (CI smoke job)")
    perf.add_argument("--no-profile", action="store_true",
                      help="skip the bundled cProfile hot-function table")
    perf.add_argument("--scaling", action="store_true",
                      help="also measure the parallel engine's scaling "
                           "curve (workers=1/2/4/8 over a fault-campaign "
                           "series) and record it in the document")
    cli_util.add_workers_arg(perf)
    cli_util.add_document_args(
        perf, "PERF", "PERF", threshold=0.20,
        threshold_help="relative regression threshold (default 0.20; "
                       "wall clock is noisier than virtual time)",
    )
    cli_util.add_ledger_args(perf)
    fleet = sub.add_parser(
        "fleet",
        help="defrag-as-a-service fleet simulator: persist FLEET_*.json, "
             "compare runs",
    )
    fleet.add_argument("--volumes", type=int, default=64,
                       help="fleet size (default 64)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="fleet seed (same seed => byte-identical fleet)")
    fleet.add_argument("--smoke", action="store_true",
                       help="small/fast fleet variant (CI smoke job)")
    fleet.add_argument("--ticks", type=int, default=None,
                       help="scheduler ticks to run (default: config)")
    fleet.add_argument("--budget", type=float, default=None, metavar="MIB",
                       help="fleet-wide migration budget per tick, in MiB "
                            "(0 = unthrottled; default: config)")
    fleet.add_argument("--trigger", type=float, default=None,
                       help="extents-per-file admission trigger (default: config)")
    fleet.add_argument("--max-jobs", type=int, default=None,
                       help="global concurrent defrag-job cap (default: config)")
    fleet.add_argument("--faults", action="store_true",
                       help="arm the seeded fleet fault storm (transient "
                            "errors + one mid-migration power-off)")
    fleet.add_argument("--slo", action="store_true",
                       help="arm the SLO monitor: burn-rate alerting plus "
                            "admission gating (alerting volumes jump the "
                            "queue); alerts land in the FLEET report")
    fleet.add_argument("--latency-slo-ms", type=float, default=None,
                       metavar="MS",
                       help="foreground read-latency objective for --slo "
                            "(default 2.0 ms)")
    fleet.add_argument("--workload", default=None, metavar="KIND",
                       help="override every volume's foreground workload: "
                            "one of read_seq/read_stride/rw_mix, or "
                            "'trace:<path>' to replay a captured trace as "
                            "the foreground stream")
    fleet.add_argument("--trace", default=None, metavar="PATH",
                       help="also write the run's Chrome trace")
    fleet.add_argument("--metrics-json", default=None, metavar="PATH",
                       help="also dump the metrics registry as JSON here")
    fleet.add_argument("--prom", default=None, metavar="PATH",
                       help="also dump Prometheus text-format metrics here")
    cli_util.add_workers_arg(fleet)
    cli_util.add_document_args(fleet, "FLEET", "FLEET", threshold=0.10)
    cli_util.add_ledger_args(fleet)
    slo = sub.add_parser(
        "slo",
        help="SLO engine over a fleet run: persist SLO_*.json, compare "
             "runs, export budget gauges as Prometheus text",
    )
    slo.add_argument("--volumes", type=int, default=64,
                     help="fleet size (default 64)")
    slo.add_argument("--seed", type=int, default=0,
                     help="fleet seed (same seed => byte-identical document)")
    slo.add_argument("--smoke", action="store_true",
                     help="small/fast fleet variant (CI smoke job)")
    slo.add_argument("--ticks", type=int, default=None,
                     help="scheduler ticks to run (default: config)")
    slo.add_argument("--faults", action="store_true",
                     help="arm the seeded fleet fault storm")
    slo.add_argument("--latency-slo-ms", type=float, default=None,
                     metavar="MS",
                     help="foreground read-latency objective (default 2.0 ms)")
    slo.add_argument("--spec", default=None, metavar="PATH",
                     help="JSON file of SLO specs replacing the fleet "
                          "defaults ({\"slos\": [...]} or a bare list)")
    slo.add_argument("--prom", default=None, metavar="PATH",
                     help="also export budget-remaining/compliance gauges "
                          "as Prometheus text format here")
    cli_util.add_document_args(slo, "SLO", "SLO", threshold=0.10)
    cli_util.add_ledger_args(slo)
    watch = sub.add_parser(
        "watch",
        help="fleet health dashboard: per-tick frames with SLO burn "
             "sparklines and firing alerts (plain text, deterministic)",
    )
    watch.add_argument("--volumes", type=int, default=16,
                       help="fleet size (default 16)")
    watch.add_argument("--seed", type=int, default=0,
                       help="fleet seed (same seed => byte-identical frames)")
    watch.add_argument("--smoke", action="store_true",
                       help="small/fast fleet variant")
    watch.add_argument("--ticks", type=int, default=None,
                       help="scheduler ticks to run (default: config)")
    watch.add_argument("--faults", action="store_true",
                       help="arm the seeded fleet fault storm")
    watch.add_argument("--latency-slo-ms", type=float, default=None,
                       metavar="MS",
                       help="foreground read-latency objective (default 2.0 ms)")
    watch.add_argument("--every", type=int, default=1, metavar="N",
                       help="render every Nth tick (default 1; the final "
                            "tick always renders)")
    watch.add_argument("--once", action="store_true",
                       help="render only the final frame (the CI golden "
                            "output mode)")
    replay = sub.add_parser(
        "replay",
        help="trace replay: parse a block/syscall trace, reconstruct it on "
             "a live simulated fs, persist REPLAY_*.json, compare runs",
    )
    replay.add_argument("--trace", default=None, metavar="PATH",
                        help="trace file to replay (blktrace text, CSV, or "
                             "repro.replay/v1 binary; format auto-sniffed)")
    replay.add_argument("--format", default="auto",
                        choices=["auto", "blktrace", "csv", "binary"],
                        help="trace format (default: auto-detect)")
    replay.add_argument("--fs-type", default="ext4",
                        choices=["ext4", "f2fs", "btrfs"],
                        help="filesystem personality to replay onto")
    replay.add_argument("--device", default="flash",
                        choices=["hdd", "microsd", "flash", "optane"],
                        help="device model under the fs (default flash)")
    replay.add_argument("--pacing", default="afap",
                        choices=["afap", "trace"],
                        help="afap = closed loop; trace = preserve the "
                             "trace's inter-arrival gaps (default afap)")
    replay.add_argument("--seed", type=int, default=0,
                        help="placement seed (same seed => byte-identical "
                             "reconstruction and document)")
    replay.add_argument("--generate", type=int, default=None, metavar="OPS",
                        help="generate a seeded binary corpus of OPS ops "
                             "(to --out) instead of, or before, replaying")
    replay.add_argument("--out", default="trace.bin", metavar="PATH",
                        help="output path for --generate (default trace.bin)")
    replay.add_argument("--files", type=int, default=64,
                        help="distinct files in the generated corpus")
    replay.add_argument("--smoke", action="store_true",
                        help="no trace needed: generate a small seeded "
                             "corpus in a temp dir and replay it (CI smoke)")
    cli_util.add_workers_arg(replay)
    cli_util.add_document_args(replay, "REPLAY", "REPLAY", threshold=0.10)
    cli_util.add_ledger_args(replay)
    faults = sub.add_parser(
        "faults",
        help="fault-injection survival report: crash-point sweep + seeded campaign",
    )
    faults.add_argument("--smoke", action="store_true",
                        help="fast CI variant (one device, FragPicker only)")
    faults.add_argument("--seed", type=int, default=0,
                        help="campaign seed (same seed => same storm)")
    faults.add_argument("--device", default="optane",
                        choices=["hdd", "microsd", "flash", "optane"])
    faults.add_argument("--devices", nargs="+", default=None, metavar="DEV",
                        choices=["hdd", "microsd", "flash", "optane"],
                        help="sweep crash points on several device models")
    faults.add_argument("--fs-type", default="ext4", choices=["ext4"],
                        help="crash sweep targets the in-place migration path")
    faults.add_argument("--json", default=None, metavar="PATH",
                        help="also write the survival report as JSON here")
    faults.add_argument("--trials", type=int, default=None, metavar="N",
                        help="also run an N-trial seed-perturbed campaign "
                             "series (fingerprinted per trial)")
    cli_util.add_workers_arg(faults)
    cli_util.add_ledger_args(faults)
    runs = sub.add_parser(
        "runs",
        help="query the persistent run ledger: every document verb "
             "appends a fingerprinted manifest per run",
    )
    runs.add_argument("action", nargs="?", default="list",
                      choices=["list", "show", "trajectory"],
                      help="list = one line per run; show = full manifest "
                           "JSON; trajectory = headline figures across "
                           "runs (default: list)")
    runs.add_argument("selector", nargs="?", default=None,
                      help="for show: a sequence number or manifest "
                           "fingerprint prefix")
    runs.add_argument("--verb", default=None,
                      choices=["bench", "perf", "fleet", "slo", "replay",
                               "faults"],
                      help="only runs recorded by this verb")
    runs.add_argument("--ledger-dir", default=None, metavar="DIR",
                      help="run-ledger directory (default: "
                           "$REPRO_LEDGER_DIR or benchmarks/ledger)")
    return parser


def _invoke(name: str, args) -> str:
    spec = EXPERIMENTS[name]
    kwargs = {}
    if spec.get("fs") and args.fs_type:
        kwargs["fs_type"] = args.fs_type
    if spec.get("device") and args.device:
        kwargs["device"] = args.device
    return spec["fn"](**kwargs)


def _run_obs(args) -> int:
    import json

    from .bench.experiments import obs_trace
    from .obs.export import metrics_json
    from .obs.hooks import Instrumentation

    obs = Instrumentation(provenance=True) if args.critical_path else None
    result = obs_trace.run(smoke=args.smoke, obs=obs)
    print(result.report())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.trace(), fh)
        print(f"\nwrote Chrome trace to {args.out} "
              "(load it at chrome://tracing or ui.perfetto.dev)")
    if args.metrics_json:
        with open(args.metrics_json, "w") as fh:
            fh.write(metrics_json(result.obs.registry))
        print(f"wrote metrics JSON to {args.metrics_json}")
    if args.critical_path and not result.critical_path().check():
        print("critical-path check FAILED (segments do not sum to wall-clock)")
        return 1
    return 0


def _run_trace(args) -> int:
    import json

    from .bench.experiments import obs_trace
    from .obs.critical_path import write_flamegraph
    from .obs.hooks import Instrumentation

    obs = Instrumentation(provenance=True, max_events=args.max_events)
    result = obs_trace.run(smoke=args.smoke, obs=obs, device=args.device)
    forest = result.forest()
    summary = forest.summary()
    path = result.critical_path()
    print(f"provenance: {summary['syscalls']} syscalls traced, "
          f"{summary['layer_crossing']} crossed fs -> block -> device, "
          f"{summary['commands']} device commands, "
          f"max fan-out {summary['max_fanout']} "
          f"({summary['orphan_edges']} orphan edges, "
          f"{summary['events_dropped']} ring drops)")
    print()
    print(f"top {args.top} slowest syscalls:")
    print(forest.table(args.top))
    print()
    print(path.table())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.trace(), fh)
        print(f"\nwrote Chrome trace (with causal flow arrows) to {args.out}")
    if args.flame:
        write_flamegraph(args.flame, forest, result.obs.spans)
        print(f"wrote collapsed-stack flamegraph to {args.flame} "
              "(feed to flamegraph.pl or speedscope)")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"schema": "repro.obs.trace/v1",
                       "provenance": summary,
                       "critical_path": path.to_dict()}, fh, indent=2)
        print(f"wrote trace summary JSON to {args.json}")
    if not path.check():
        print("critical-path check FAILED (segments do not sum to wall-clock)")
        return 1
    return 0


def _run_bench(args) -> int:
    import time

    from .bench import regression, suite
    from .obs import hooks as obs_hooks
    from .obs.export import metrics_json, prometheus_text, write_chrome_trace
    from .obs.hooks import Instrumentation

    code = cli_util.run_compare(args, regression.load, regression.compare)
    if code is not None:
        return code

    label, path = cli_util.document_path(args, "BENCH")
    armed = bool(args.metrics_json or args.prom)
    start = time.perf_counter()
    if armed:
        # ambient arming: worker-side telemetry is harvested back and
        # merged in shard order, so --workers N exports the same bytes
        obs = Instrumentation()
        with obs_hooks.use(obs):
            document, trace_result = suite.run_suite(
                smoke=args.smoke, label=label, obs=obs, workers=args.workers
            )
    else:
        document, trace_result = suite.run_suite(
            smoke=args.smoke, label=label, workers=args.workers
        )
    wall_s = time.perf_counter() - start
    regression.save(path, document)
    print(f"wrote bench document to {path} "
          f"(schema {document['schema']}, fingerprint {document['fingerprint']})")
    for figure, variants in document["figures"].items():
        print(f"  {figure}: {len(variants)} variant(s)")
    if args.trace:
        write_chrome_trace(
            args.trace, trace_result.obs.spans, trace_result.obs.registry,
            sampler=trace_result.sampler,
        )
        print(f"wrote Chrome trace to {args.trace}")
    if args.metrics_json:
        with open(args.metrics_json, "w") as fh:
            fh.write(metrics_json(obs.registry))
        print(f"wrote metrics JSON to {args.metrics_json}")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(prometheus_text(obs.registry))
        print(f"wrote Prometheus metrics to {args.prom}")
    cli_util.record_ledger(
        args, "bench", document, label=label, wall_s=wall_s,
        extra={"smoke": args.smoke},
    )
    print()
    print(trace_result.attribution().table())
    return 0


def _run_perf(args) -> int:
    import time

    from . import perf

    code = cli_util.run_compare(args, perf.load, perf.compare)
    if code is not None:
        return code

    label, path = cli_util.document_path(args, "PERF")
    scaling = None
    if args.scaling:
        scaling = perf.scaling_curve(smoke=args.smoke)
    start = time.perf_counter()
    document, results = perf.run_suite(
        smoke=args.smoke, label=label, profile=not args.no_profile,
        workers=args.workers, scaling=scaling,
    )
    wall_s = time.perf_counter() - start
    perf.save(path, document)
    cli_util.record_ledger(
        args, "perf", document, label=label, wall_s=wall_s,
        extra={"smoke": args.smoke, "scaling": bool(args.scaling)},
    )
    print(f"wrote perf document to {path} "
          f"(schema {document['schema']}, fingerprint {document['fingerprint']})")
    width = max(len(result.name) for result in results)
    for result in results:
        print(f"  {result.name.ljust(width)}  {result.ops:>8} ops  "
              f"{result.wall_s:>9.4f} s  {result.ops_per_sec:>12.0f} ops/s")
    print(f"  {'total'.ljust(width)}  {'':>8}      "
          f"{document['total_wall_s']:>9.4f} s")
    if document["profile"]:
        print("\nhot functions (end-to-end run, by self time):")
        for row in document["profile"][:10]:
            print(f"  {row['tottime_s']:>9.4f} s  {row['calls']:>8}  {row['func']}")
    return 0


def _fleet_config(args):
    """Build the FleetConfig a fleet-sourced verb (fleet/slo/watch) asked
    for; knobs a verb does not expose just fall through to the config."""
    from .fleet import FleetConfig

    overrides = {"faults": args.faults}
    if getattr(args, "workload", None) is not None:
        overrides["workload"] = args.workload
    if getattr(args, "ticks", None) is not None:
        overrides["ticks"] = args.ticks
    if getattr(args, "budget", None) is not None:
        overrides["budget_per_tick"] = (
            None if args.budget <= 0 else int(args.budget * MIB)
        )
    if getattr(args, "trigger", None) is not None:
        overrides["trigger"] = args.trigger
    if getattr(args, "max_jobs", None) is not None:
        overrides["max_jobs"] = args.max_jobs
    if args.smoke:
        return FleetConfig.smoke(
            volumes=args.volumes, seed=args.seed, **overrides
        )
    return FleetConfig(volumes=args.volumes, seed=args.seed, **overrides)


def _latency_slo_s(args) -> float:
    from .fleet.slo import DEFAULT_LATENCY_SLO_S

    if getattr(args, "latency_slo_ms", None) is not None:
        return args.latency_slo_ms / 1e3
    return DEFAULT_LATENCY_SLO_S


def _run_fleet(args) -> int:
    import time

    from .fleet import FleetSlo, run_fleet
    from .fleet import report as fleet_report
    from .obs import hooks as obs_hooks
    from .obs.export import metrics_json, prometheus_text, write_chrome_trace
    from .obs.hooks import Instrumentation

    code = cli_util.run_compare(args, fleet_report.load, fleet_report.compare)
    if code is not None:
        return code

    config = _fleet_config(args)
    monitor = (
        FleetSlo.for_config(config, latency_slo_s=_latency_slo_s(args))
        if args.slo else None
    )

    armed = bool(args.trace or args.metrics_json or args.prom)
    start = time.perf_counter()
    if armed:
        obs = Instrumentation()
        with obs_hooks.use(obs):
            report = run_fleet(config, slo=monitor, workers=args.workers)
    else:
        report = run_fleet(config, slo=monitor, workers=args.workers)
    wall_s = time.perf_counter() - start

    print(report.text())
    label, path = cli_util.document_path(args, "FLEET")
    document = report.to_dict()
    fleet_report.save(path, document)
    print(f"\nwrote fleet document to {path} "
          f"(schema {document['schema']}, fingerprint {document['fingerprint']})")
    if args.trace:
        write_chrome_trace(args.trace, obs.spans, obs.registry)
        print(f"wrote Chrome trace to {args.trace}")
    if args.metrics_json:
        with open(args.metrics_json, "w") as fh:
            fh.write(metrics_json(obs.registry))
        print(f"wrote metrics JSON to {args.metrics_json}")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(prometheus_text(obs.registry))
        print(f"wrote Prometheus metrics to {args.prom}")
    cli_util.record_ledger(
        args, "fleet", document, label=label, seed=args.seed, wall_s=wall_s,
        extra={"smoke": args.smoke, "volumes": args.volumes,
               "slo": args.slo, "faults": args.faults},
    )
    return 0 if report.budget_ok else 1


def _run_slo(args) -> int:
    import time

    from .fleet import FleetSlo, run_fleet
    from .obs import slo as obs_slo
    from .obs.export import prometheus_text

    code = cli_util.run_compare(args, obs_slo.load, obs_slo.compare)
    if code is not None:
        return code

    config = _fleet_config(args)
    specs = obs_slo.load_specs(args.spec) if args.spec else None
    monitor = FleetSlo.for_config(
        config, latency_slo_s=_latency_slo_s(args), specs=specs
    )
    start = time.perf_counter()
    run_fleet(config, slo=monitor)
    wall_s = time.perf_counter() - start

    label, path = cli_util.document_path(args, "SLO")
    source = {"kind": "fleet", "config": config.to_dict()}
    document = monitor.document(label, source)
    obs_slo.validate(document)
    obs_slo.save(path, document)
    print(obs_slo.report_text(document))
    print(f"\nwrote SLO document to {path} "
          f"(schema {document['schema']}, fingerprint {document['fingerprint']})")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(prometheus_text(obs_slo.prometheus_registry(document)))
        print(f"wrote Prometheus budget gauges to {args.prom}")
    cli_util.record_ledger(
        args, "slo", document, label=label, seed=args.seed, wall_s=wall_s,
        extra={"smoke": args.smoke, "volumes": args.volumes,
               "faults": args.faults},
    )
    return 0


def _run_watch(args) -> int:
    from .fleet import FleetSlo, run_fleet
    from .obs.dashboard import Frame, render

    config = _fleet_config(args)
    monitor = FleetSlo.for_config(config, latency_slo_s=_latency_slo_s(args))
    every = max(1, args.every)

    def on_tick(controller, tick: int, row) -> None:
        last = tick == config.ticks - 1
        if args.once and not last:
            return
        if not last and tick % every != every - 1:
            return
        frame = Frame(
            tick=tick,
            ticks_total=config.ticks,
            now=max((v.now for v in controller.volumes), default=0.0),
            volumes=len(controller.volumes),
            rows=controller.report.ticks,
            slo_summaries=monitor.fleet_summaries(),
            alerts=monitor.plane.alerts,
            firing=monitor.firing(),
            budget_per_tick=config.budget_per_tick,
        )
        print(render(frame))
        if not last:
            print()

    run_fleet(config, slo=monitor, on_tick=on_tick)
    return 0


def _run_replay(args) -> int:
    import os
    import tempfile
    import time

    from . import replay as replay_mod
    from .replay import ReplayConfig, TraceProfile, generate_trace, run_replay

    code = cli_util.run_compare(args, replay_mod.load, replay_mod.compare)
    if code is not None:
        return code

    trace_path = args.trace
    if args.generate is not None:
        profile = TraceProfile(ops=args.generate, seed=args.seed,
                               files=args.files)
        written = generate_trace(args.out, profile, workers=args.workers)
        size = os.path.getsize(args.out)
        print(f"wrote {written} records ({size} bytes) to {args.out} "
              f"(seed {args.seed}, {args.files} files)")
        if trace_path is None and not args.smoke:
            return 0
        trace_path = trace_path or args.out
    elif trace_path is None and args.smoke:
        tmpdir = tempfile.mkdtemp(prefix="repro-replay-")
        trace_path = os.path.join(tmpdir, "smoke.bin")
        generate_trace(trace_path, TraceProfile(ops=20_000, seed=args.seed))
    elif trace_path is None:
        print("replay: need --trace PATH, --generate OPS, or --smoke",
              file=sys.stderr)
        return 2

    config = ReplayConfig(
        fs_type=args.fs_type, device=args.device, fmt=args.format,
        pacing=args.pacing, seed=args.seed,
    )
    start = time.perf_counter()
    result = run_replay(trace_path, config)
    wall_s = time.perf_counter() - start
    print(result.text())
    label, path = cli_util.document_path(args, "REPLAY")
    document = result.to_dict(label)
    replay_mod.validate(document)
    replay_mod.save(path, document)
    print(f"\nwrote replay document to {path} "
          f"(schema {document['schema']}, fingerprint {document['fingerprint']})")
    cli_util.record_ledger(
        args, "replay", document, label=label, seed=args.seed, wall_s=wall_s,
        extra={"smoke": args.smoke, "fs_type": args.fs_type,
               "device": args.device, "pacing": args.pacing},
    )
    return 0


def _run_faults(args) -> int:
    import json
    import time

    from .faults.campaign import survival_report

    start = time.perf_counter()
    report = survival_report(
        seed=args.seed,
        device=args.device,
        fs_type=args.fs_type,
        devices=args.devices,
        smoke=args.smoke,
        workers=args.workers,
        trials=args.trials,
    )
    wall_s = time.perf_counter() - start
    print(report.text())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"\nwrote survival report JSON to {args.json}")
    cli_util.record_ledger(
        args, "faults", json.loads(report.to_json()),
        label="smoke" if args.smoke else "full",
        seed=args.seed, wall_s=wall_s,
        extra={"smoke": args.smoke, "device": args.device,
               "trials": args.trials},
    )
    return 0 if report.ok else 1


def _run_runs(args) -> int:
    import json
    import os

    from .obs import ledger

    runs = ledger.list_runs(args.ledger_dir, verb=args.verb)
    if args.action == "show":
        if not args.selector:
            print("runs show: need a sequence number or fingerprint prefix",
                  file=sys.stderr)
            return 2
        selector = args.selector
        matches = [
            run for run in runs
            if str(run["fingerprint"]).startswith(selector)
            or os.path.basename(str(run["path"])).split("_")[0]
            == selector.zfill(6)
        ]
        if not matches:
            print(f"runs show: no recorded run matches {selector!r}",
                  file=sys.stderr)
            return 1
        for run in matches:
            manifest = {k: v for k, v in run.items() if k != "path"}
            print(f"# {run['path']}")
            print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    if not runs:
        print("run ledger is empty (document verbs append manifests under "
              f"{ledger.resolve_dir(args.ledger_dir)})")
        return 0
    if args.action == "trajectory":
        print(ledger.trajectory_table(runs))
    else:
        print(ledger.runs_table(runs))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "fleet":
        return _run_fleet(args)
    if args.command == "slo":
        return _run_slo(args)
    if args.command == "watch":
        return _run_watch(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "faults":
        return _run_faults(args)
    if args.command == "runs":
        return _run_runs(args)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name.ljust(width)}  {EXPERIMENTS[name]['help']}")
        return 0
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in targets:
        print(f"=== {name}: {EXPERIMENTS[name]['help']} ===")
        print(_invoke(name, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
