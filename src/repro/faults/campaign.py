"""Seeded fault-injection campaigns and the survival report.

A campaign arms a probabilistic :class:`FaultPlan` — transient I/O errors,
torn writes, fallocate failures, device latency spikes, FIEMAP errors —
and runs FragPicker's migration under it.  Because every probabilistic
rule draws from a dedicated seeded RNG stream, the same seed reproduces
the same storm bit-for-bit: the survival report carries a fingerprint
hashing the fault fires, the defrag report, and the final file contents,
and two runs with equal seeds must produce equal fingerprints.

The campaign measures the graceful-degradation contract:

- transient faults are retried with bounded backoff (``RetryPolicy``);
- files whose retries are exhausted are skipped and reported, never
  silently corrupted;
- after the run an operator-level :meth:`MigrationJournal.recover` drains
  whatever a failed repair left pending, and the harness asserts every
  file is byte-identical to its pre-migration content.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..constants import KIB
from ..core import FragPicker
from ..core.report import DefragReport
from ..errors import InjectedCrash
from . import hooks as fault_hooks
from .crashpoints import TOOLS, Scenario, build_scenario, crash_sweep, _run_quietly
from .plan import FaultPlan


@dataclass(frozen=True)
class CampaignConfig:
    """A storm's shape: where it blows, and how hard."""

    seed: int = 0
    device: str = "optane"
    fs_type: str = "ext4"
    files: int = 4
    pieces: int = 8
    piece_size: int = 4 * KIB
    #: per-op fault probabilities (each gets its own RNG stream); tuned so
    #: the default seed produces a storm that exercises retries without
    #: exhausting them
    write_error_rate: float = 0.12
    torn_write_rate: float = 0.08
    fallocate_error_rate: float = 0.08
    fiemap_error_rate: float = 0.04
    device_latency_rate: float = 0.12

    def plan(self) -> FaultPlan:
        """Compile the storm into a fault plan (unbounded-fire rules)."""
        return (
            FaultPlan(self.seed)
            .io_error("fs.write", probability=self.write_error_rate, max_fires=0)
            .torn_write("fs.write", probability=self.torn_write_rate, max_fires=0)
            .io_error("fs.fallocate", probability=self.fallocate_error_rate, max_fires=0)
            .io_error("fs.fiemap", probability=self.fiemap_error_rate, max_fires=0)
            .latency_spike("device.submit", probability=self.device_latency_rate, max_fires=0)
        )


@dataclass
class CampaignResult:
    """What one seeded storm did, and whether the data survived it."""

    config: CampaignConfig
    report: DefragReport
    faults_injected: int
    by_site_kind: Dict[str, int]
    data_intact: bool
    pending_after_recovery: int
    fingerprint: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.config.seed,
            "device": self.config.device,
            "fs_type": self.config.fs_type,
            "faults_injected": self.faults_injected,
            "by_site_kind": dict(sorted(self.by_site_kind.items())),
            "retries": self.report.retries,
            "ranges_failed": self.report.ranges_failed,
            "files_skipped": sorted(self.report.failures),
            "data_intact": self.data_intact,
            "pending_after_recovery": self.pending_after_recovery,
            "fingerprint": self.fingerprint,
        }


def _fingerprint(plane: fault_hooks.FaultPlane, report: DefragReport,
                 contents: Dict[str, bytes]) -> str:
    """A digest over everything the seed is supposed to pin down."""
    digest = hashlib.sha256()
    for fire in plane.stats.fires:
        digest.update(
            f"{fire.rule_index}:{fire.kind}:{fire.site}:{fire.op}:"
            f"{fire.now:.9f}:{fire.torn_length}\n".encode()
        )
    digest.update(
        f"{report.retries}:{report.ranges_failed}:{sorted(report.failures)}\n".encode()
    )
    for path in sorted(contents):
        digest.update(path.encode())
        digest.update(hashlib.sha256(contents[path]).digest())
    return digest.hexdigest()[:16]


def run_campaign(config: Optional[CampaignConfig] = None) -> CampaignResult:
    """One seeded storm: arm the plan, migrate, recover, verify."""
    config = config if config is not None else CampaignConfig()
    plane = fault_hooks.FaultPlane(config.plan())
    with fault_hooks.use(plane):
        scenario = build_scenario(
            config.device, config.fs_type,
            files=config.files, pieces=config.pieces, piece_size=config.piece_size,
        )
        before = scenario.contents()
        picker = FragPicker(scenario.fs)
        plane.activate()
        report = _run_quietly(lambda: picker.defragment_bypass(scenario.paths, now=scenario.now))
        # the storm has passed: operator-level recovery drains anything a
        # failed mid-run repair had to leave pending
        plane.deactivate()
        journal = picker.journal
        _, _recovery = journal.recover(scenario.fs, now=report.finished_at)
        after = scenario.contents()
    return CampaignResult(
        config=config,
        report=report,
        faults_injected=plane.stats.total,
        by_site_kind=dict(plane.stats.by_site_kind),
        data_intact=after == before,
        pending_after_recovery=len(journal),
        fingerprint=_fingerprint(plane, report, after),
    )


# ----------------------------------------------------------------------
# campaign series (many independent storms)
# ----------------------------------------------------------------------

@dataclass
class CampaignSeries:
    """N independent storms: trial ``t`` replays the campaign at
    ``base.seed + t``.

    Trials share no state, so they shard across workers
    (:mod:`repro.par`); the series fingerprint hashes the per-trial
    fingerprints in trial order and must match the serial run exactly.
    """

    base: CampaignConfig
    trials: List[CampaignResult]
    fingerprint: str

    @property
    def ok(self) -> bool:
        return all(
            t.data_intact and not t.pending_after_recovery for t in self.trials
        )

    @property
    def faults_injected(self) -> int:
        return sum(t.faults_injected for t in self.trials)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.base.seed,
            "device": self.base.device,
            "fs_type": self.base.fs_type,
            "trials": len(self.trials),
            "faults_injected": self.faults_injected,
            "retries": sum(t.report.retries for t in self.trials),
            "files_skipped": sum(t.report.ranges_failed for t in self.trials),
            "data_intact": all(t.data_intact for t in self.trials),
            "trial_fingerprints": [t.fingerprint for t in self.trials],
            "fingerprint": self.fingerprint,
        }


def series_fingerprint(results: List[CampaignResult]) -> str:
    """Digest over the per-trial fingerprints, in trial order."""
    digest = hashlib.sha256()
    for result in results:
        digest.update(result.fingerprint.encode())
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def run_campaign_series(
    config: Optional[CampaignConfig] = None,
    trials: int = 8,
    workers: Optional[int] = None,
) -> CampaignSeries:
    """Run ``trials`` independent storms (seed, seed+1, ...)."""
    from ..par import run_sharded

    config = config if config is not None else CampaignConfig()
    payloads = [replace(config, seed=config.seed + t) for t in range(trials)]
    results = run_sharded(
        run_campaign, payloads, workers=workers, label="campaign trial"
    )
    return CampaignSeries(
        base=config,
        trials=list(results),
        fingerprint=series_fingerprint(results),
    )


# ----------------------------------------------------------------------
# the `repro faults` survival report
# ----------------------------------------------------------------------

@dataclass
class SurvivalReport:
    """Crash sweeps + fault campaign, ready for the CLI."""

    sweeps: List[object] = field(default_factory=list)  # CrashSweepReport
    campaign: Optional[CampaignResult] = None
    series: Optional[CampaignSeries] = None

    @property
    def ok(self) -> bool:
        if not all(sweep.ok for sweep in self.sweeps):
            return False
        if self.campaign is not None:
            if not self.campaign.data_intact or self.campaign.pending_after_recovery:
                return False
        if self.series is not None and not self.series.ok:
            return False
        return True

    def text(self) -> str:
        lines = ["fault-injection survival report", "=" * 31, ""]
        lines.append("crash-point sweeps (kill at every syscall, recover, compare):")
        for sweep in self.sweeps:
            lines.append(f"  {sweep.summary()}")
        if self.campaign is not None:
            result = self.campaign
            lines.append("")
            lines.append(
                f"fault campaign (seed {result.config.seed} on "
                f"{result.config.fs_type}/{result.config.device}):"
            )
            lines.append(f"  faults injected : {result.faults_injected}")
            for key, count in sorted(result.by_site_kind.items()):
                lines.append(f"    {key:<28s} {count}")
            lines.append(f"  retries         : {result.report.retries}")
            lines.append(f"  files skipped   : {result.report.ranges_failed}")
            for path, reason in sorted(result.report.failures.items()):
                lines.append(f"    {path}: {reason}")
            lines.append(f"  data intact     : {'yes' if result.data_intact else 'NO'}")
            lines.append(f"  fingerprint     : {result.fingerprint}")
        if self.series is not None:
            series = self.series
            lines.append("")
            lines.append(
                f"campaign series ({len(series.trials)} trials, seeds "
                f"{series.base.seed}..{series.base.seed + len(series.trials) - 1}):"
            )
            lines.append(f"  faults injected : {series.faults_injected}")
            intact = sum(1 for t in series.trials if t.data_intact)
            lines.append(f"  trials intact   : {intact}/{len(series.trials)}")
            lines.append(f"  fingerprint     : {series.fingerprint}")
        lines.append("")
        lines.append(f"verdict: {'SURVIVED' if self.ok else 'DATA LOSS'}")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "ok": self.ok,
            "sweeps": [sweep.to_dict() for sweep in self.sweeps],
            "campaign": self.campaign.to_dict() if self.campaign else None,
            "series": self.series.to_dict() if self.series else None,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def survival_report(
    seed: int = 0,
    device: str = "optane",
    fs_type: str = "ext4",
    devices: Optional[List[str]] = None,
    smoke: bool = False,
    workers: Optional[int] = None,
    trials: Optional[int] = None,
) -> SurvivalReport:
    """The full `repro faults` run.

    ``smoke`` keeps CI fast: one device, FragPicker only, a small storm.
    Otherwise both tools are swept on every requested device model.
    ``workers`` shards the crash sweeps and (with ``trials``) the
    campaign series across processes; the report is byte-identical to
    the serial run either way.
    """
    out = SurvivalReport()
    sweep_devices = devices if devices is not None else [device]
    tools = ("fragpicker",) if smoke else TOOLS
    for dev in sweep_devices:
        for tool in tools:
            out.sweeps.append(crash_sweep(
                device=dev, fs_type=fs_type, tool=tool, seed=seed,
                workers=workers,
            ))
    files = 2 if smoke else 4
    out.campaign = run_campaign(
        CampaignConfig(seed=seed, device=device, fs_type=fs_type, files=files)
    )
    if trials:
        out.series = run_campaign_series(
            CampaignConfig(seed=seed, device=device, fs_type=fs_type, files=files),
            trials=trials, workers=workers,
        )
    return out
