"""The fault-plan DSL: *what* to inject, *where*, and *when*.

A :class:`FaultPlan` is a seeded, declarative list of :class:`FaultRule`\\ s.
Each rule names an injection **site** (a dotted layer path such as
``"device.submit"`` or ``"fs.write"``; prefixes match, so ``"fs"`` covers
every fs syscall), a fault **kind**, and one or more **triggers**:

==============  =============================================================
trigger         fires when
==============  =============================================================
``after_ops``   the Nth call matching the rule's filters is reached
``at_time``     virtual time reaches the given instant
``lba``         the op's offset range overlaps ``[lo, hi)`` (device offsets
                at device sites, file offsets at fs sites)
``op``          the op kind matches (``"read"``/``"write"``/``"fallocate"``…)
``probability`` a Bernoulli draw from the rule's *dedicated* RNG stream
                succeeds — dedicated so that adding a rule never perturbs
                another rule's draws (seeded determinism)
==============  =============================================================

Filters are conjunctive; ``max_fires`` bounds how often a rule may fire
(0 = unlimited).  Plans are pure data — :class:`repro.faults.hooks.FaultPlane`
compiles them into live per-rule state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..errors import InvalidArgument

#: fault kinds a rule may inject
KINDS = ("io_error", "latency", "torn", "crash")


@dataclass(frozen=True)
class FaultRule:
    """One declarative injection rule (see module docstring)."""

    site: str
    kind: str
    op: Optional[str] = None
    lba: Optional[Tuple[int, int]] = None
    after_ops: Optional[int] = None
    at_time: Optional[float] = None
    probability: Optional[float] = None
    #: extra virtual seconds for ``kind="latency"`` (None = the device
    #: model's characteristic spike, e.g. an HDD bad-sector retry)
    latency: Optional[float] = None
    #: fraction of the data that survives a ``kind="torn"`` write
    torn_fraction: float = 0.5
    #: how many times this rule may fire (0 = unlimited)
    max_fires: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise InvalidArgument(f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise InvalidArgument(f"probability must be in [0, 1], got {self.probability}")
        if self.after_ops is not None and self.after_ops < 1:
            raise InvalidArgument("after_ops is 1-based and must be >= 1")
        if not 0.0 <= self.torn_fraction < 1.0:
            raise InvalidArgument("torn_fraction must be in [0, 1)")
        if self.max_fires < 0:
            raise InvalidArgument("max_fires must be >= 0 (0 = unlimited)")


@dataclass
class FaultPlan:
    """A seeded collection of fault rules.

    The seed feeds every probabilistic rule's dedicated RNG stream, making
    a whole campaign reproducible run-to-run.
    """

    seed: int = 0
    rules: List[FaultRule] = field(default_factory=list)

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    # -- fluent builders for the common shapes -------------------------

    def io_error(self, site: str, **filters: object) -> "FaultPlan":
        """Fail a matching op with :class:`~repro.errors.DeviceIOError`."""
        return self.add(FaultRule(site=site, kind="io_error", **filters))

    def latency_spike(self, site: str, latency: Optional[float] = None, **filters: object) -> "FaultPlan":
        """Stall a matching op (device default spike unless given)."""
        return self.add(FaultRule(site=site, kind="latency", latency=latency, **filters))

    def torn_write(self, site: str, torn_fraction: float = 0.5, **filters: object) -> "FaultPlan":
        """Tear a matching write: only a prefix of the data survives."""
        return self.add(
            FaultRule(site=site, kind="torn", op="write", torn_fraction=torn_fraction, **filters)
        )

    def crash(self, site: str, after_ops: int) -> "FaultPlan":
        """Power off at the Nth op matching ``site`` (the crash harness)."""
        return self.add(FaultRule(site=site, kind="crash", after_ops=after_ops))

    def scaled(self, factor: float) -> "FaultPlan":
        """A copy with every probability multiplied (campaign intensity knob)."""
        clone = FaultPlan(seed=self.seed)
        for rule in self.rules:
            if rule.probability is not None:
                rule = replace(rule, probability=min(1.0, rule.probability * factor))
            clone.add(rule)
        return clone
