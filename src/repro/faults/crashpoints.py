"""The crash-consistency harness (Section 4.2.2 put on trial).

The paper argues FragPicker's in-place migration survives sudden power-off
because range lists and buffered data are retained until success.  This
harness attacks that claim exhaustively rather than anecdotally:

1. **enumerate** — run the migration once under a counting fault plane and
   record every fs-layer syscall it makes (read, fallocate punch/alloc,
   write, fsync, FIEMAP — each one is a place a machine can die);
2. **kill** — re-run the migration from an identical fresh scenario once
   per point, with a :class:`FaultPlan` that injects a crash exactly at
   the Nth syscall;
3. **recover** — invoke :meth:`MigrationJournal.recover`, the paper's
   "range lists + debugfs" step;
4. **verify** — the file contents must be byte-identical to the
   pre-migration state, and the journal must drain.

The harness drives both FragPicker and a journal-carrying conventional
tool, on any of the four device models.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..constants import GIB, KIB
from ..core import FragPicker, MigrationJournal
from ..core.recovery import RecoveryReport
from ..device import make_device
from ..errors import InjectedCrash
from ..fs import make_filesystem
from ..fs.base import Filesystem
from ..tools.conventional import make_conventional
from . import hooks as fault_hooks
from .plan import FaultPlan

#: tools the harness knows how to drive
TOOLS = ("fragpicker", "conventional")


@dataclass
class Scenario:
    """A fresh filesystem with fragmented, content-bearing files."""

    fs: Filesystem
    paths: List[str]
    now: float

    def contents(self) -> Dict[str, bytes]:
        """Logical file contents (ground truth, independent of caches)."""
        out = {}
        for path in self.paths:
            inode = self.fs.inode_of(path)
            out[path] = self.fs.page_store.read(inode.ino, 0, inode.size)
        return out


def build_scenario(
    device: str = "optane",
    fs_type: str = "ext4",
    files: int = 2,
    pieces: int = 8,
    piece_size: int = 4 * KIB,
    capacity: int = 1 * GIB,
) -> Scenario:
    """Fragmented files with distinctive per-piece content.

    Interleaving each file's writes with a dummy file's forces the
    allocator to scatter the pieces — the fragmentation the tools must
    then migrate (and the crash must not destroy).
    """
    fs = make_filesystem(fs_type, make_device(device, capacity=capacity))
    now = 0.0
    paths = []
    for index in range(files):
        path = f"/crash/file{index}"
        handle = fs.open(path, o_direct=True, create=True, app="setup")
        dummy = fs.open(f"/crash/dummy{index}", o_direct=True, create=True, app="setup")
        for piece in range(pieces):
            payload = bytes([(index * pieces + piece) % 251 + 1]) * piece_size
            now = fs.write(handle, piece * piece_size, data=payload, now=now).finish_time
            now = fs.write(dummy, piece * piece_size, piece_size, now=now).finish_time
        paths.append(path)
    return Scenario(fs, paths, now)


def _make_tool(scenario: Scenario, tool: str) -> Tuple[MigrationJournal, Callable[[], object]]:
    """(journal, run-callable) for a tool over the scenario's files."""
    if tool == "fragpicker":
        picker = FragPicker(scenario.fs)
        return picker.journal, lambda: picker.defragment_bypass(
            scenario.paths, now=scenario.now
        )
    if tool == "conventional":
        journal = MigrationJournal()
        conv = make_conventional(scenario.fs)
        conv.journal = journal
        return journal, lambda: conv.defragment(scenario.paths, now=scenario.now)
    raise ValueError(f"unknown tool {tool!r}; choose from {TOOLS}")


def _run_quietly(run: Callable[[], object]) -> object:
    # the HDD sweep would otherwise emit the (correct, expected)
    # seek-device warning once per crash point
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return run()


def count_migration_syscalls(
    scenario_factory: Callable[[], Scenario], tool: str
) -> int:
    """Dry run: how many fs-layer injection points does the path have?"""
    plane = fault_hooks.FaultPlane(FaultPlan())
    with fault_hooks.use(plane):
        scenario = scenario_factory()
        _journal, run = _make_tool(scenario, tool)
        plane.activate()
        _run_quietly(run)
    return plane.ops_seen("fs")


@dataclass
class CrashPointResult:
    """One kill-and-recover cycle."""

    point: int              # 1-based syscall index the crash targeted
    site: str               # which syscall actually died ("(completed)" if none)
    crashed: bool
    recovered: bool         # contents byte-identical and journal drained
    recovery: RecoveryReport


@dataclass
class CrashSweepReport:
    """Outcome of a full crash-point sweep."""

    device: str
    fs_type: str
    tool: str
    points: List[CrashPointResult]

    @property
    def total(self) -> int:
        return len(self.points)

    @property
    def recovered(self) -> int:
        return sum(1 for p in self.points if p.recovered)

    @property
    def ok(self) -> bool:
        return self.recovered == self.total

    def failures(self) -> List[CrashPointResult]:
        return [p for p in self.points if not p.recovered]

    def summary(self) -> str:
        verdict = "OK" if self.ok else "DATA LOSS"
        return (
            f"{self.tool} on {self.fs_type}/{self.device}: "
            f"{self.recovered}/{self.total} crash points recovered "
            f"byte-identical [{verdict}]"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "fs_type": self.fs_type,
            "tool": self.tool,
            "points": self.total,
            "recovered": self.recovered,
            "ok": self.ok,
            "failed_points": [p.point for p in self.failures()],
        }


def _run_crash_point(payload: Tuple) -> CrashPointResult:
    """One kill-and-recover cycle from a fresh scenario (shard unit)."""
    device, fs_type, tool, files, pieces, piece_size, seed, point = payload
    plan = FaultPlan(seed).crash("fs", after_ops=point)
    plane = fault_hooks.FaultPlane(plan)
    with fault_hooks.use(plane):
        scenario = build_scenario(device, fs_type, files=files, pieces=pieces,
                                  piece_size=piece_size)
        before = scenario.contents()
        journal, run = _make_tool(scenario, tool)
        plane.activate()
        crashed = False
        try:
            _run_quietly(run)
        except InjectedCrash:
            crashed = True
        plane.deactivate()
        # "reboot": the dead process's locks are gone; replay the journal
        _, recovery = journal.recover(scenario.fs, now=scenario.now)
        after = scenario.contents()
    site = plane.stats.fires[-1].site if plane.stats.fires else "(completed)"
    recovered = after == before and len(journal) == 0
    return CrashPointResult(point, site, crashed, recovered, recovery)


def crash_sweep(
    device: str = "optane",
    fs_type: str = "ext4",
    tool: str = "fragpicker",
    files: int = 2,
    pieces: int = 8,
    piece_size: int = 4 * KIB,
    seed: int = 0,
    workers: Optional[int] = None,
) -> CrashSweepReport:
    """Kill the migration at every enumerated point and verify recovery.

    Every crash point starts from an identical fresh scenario, so points
    are independent: ``workers`` shards them across spawned processes
    (:mod:`repro.par`) and the report is byte-identical to the serial
    sweep — results are merged in point order regardless of completion.
    """
    from ..par import run_sharded

    def factory() -> Scenario:
        return build_scenario(device, fs_type, files=files, pieces=pieces,
                              piece_size=piece_size)

    total = count_migration_syscalls(factory, tool)
    payloads = [
        (device, fs_type, tool, files, pieces, piece_size, seed, point)
        for point in range(1, total + 1)
    ]
    results = run_sharded(
        _run_crash_point, payloads, workers=workers, label="crash point"
    )
    return CrashSweepReport(device, fs_type, tool, list(results))
