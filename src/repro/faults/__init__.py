"""repro.faults — deterministic fault injection and crash consistency.

The paper's safety argument (Section 4.2.2) is that user-level migration
survives sudden power-off because range lists and buffered data are kept
until success.  This subsystem exists to *attack* that argument — and the
rest of the stack — systematically:

- :mod:`repro.faults.plan` — the seeded :class:`FaultPlan` DSL: declarative
  rules triggered by op-count, virtual time, LBA range, op kind, or
  probability (each probabilistic rule gets a dedicated RNG stream, so a
  whole campaign is reproducible from one seed);
- :mod:`repro.faults.hooks` — the :class:`FaultPlane` facade the device,
  block, and fs layers consult, with a null default that keeps runs
  bit-identical when no plan is installed (the same zero-cost guarantee
  ``repro.obs`` gives);
- :mod:`repro.faults.crashpoints` — the crash-consistency harness: it
  enumerates every syscall in the Ext4 in-place migration path, kills the
  run at each one, invokes :meth:`MigrationJournal.recover`, and checks
  the file contents are byte-identical to the pre-migration state;
- :mod:`repro.faults.campaign` — seeded fault campaigns (random EIO, torn
  writes, latency spikes) over a defragmentation run, producing a survival
  report (``repro faults`` on the command line).

``crashpoints`` and ``campaign`` sit above the core/fs layers, so they are
imported lazily — the base package stays dependency-free for the layers
that consult the plane.
"""

from .plan import KINDS, FaultPlan, FaultRule  # noqa: F401
from .hooks import (  # noqa: F401
    DEFAULT_LATENCY_SPIKE,
    FaultFire,
    FaultPlane,
    FaultPlaneStats,
    NullFaultPlane,
    arm,
    current,
    disarm,
    install,
    use,
)

__all__ = [
    "KINDS",
    "FaultPlan",
    "FaultRule",
    "DEFAULT_LATENCY_SPIKE",
    "FaultFire",
    "FaultPlane",
    "FaultPlaneStats",
    "NullFaultPlane",
    "arm",
    "current",
    "disarm",
    "install",
    "use",
    "crashpoints",
    "campaign",
]


def __getattr__(name: str):
    # lazy: these modules import core/fs, which import this package
    if name in ("crashpoints", "campaign"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
