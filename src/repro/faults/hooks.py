"""The fault plane every layer consults — a mirror of :mod:`repro.obs.hooks`.

Each layer captures one reference at construction time (``self.faults``)
and guards every check with ``if self.faults.enabled:`` — with the default
:class:`NullFaultPlane` installed the hot path costs one attribute lookup
and a falsy branch, which is how the subsystem keeps the same zero-cost
guarantee ``repro.obs`` gives: with no plan installed, runs are
bit-identical to runs without :mod:`repro.faults` imported at all.

Install a plane around an experiment::

    from repro.faults import FaultPlan, hooks
    plan = FaultPlan(seed=7).io_error("fs.write", after_ops=3)
    with hooks.use(hooks.FaultPlane(plan)) as plane:
        fs, device = fresh_fs(...)   # layers built now pick it up
        plane.activate()             # setup traffic stays fault-free
        ...

The plane answers :meth:`FaultPlane.check` with a :class:`FaultFire` (or
``None``); *enacting* the fault — raising, stalling, tearing — is the
calling layer's job, because only the layer knows its own semantics.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..constants import block_align_down
from ..obs import hooks as obs_hooks
from .plan import FaultPlan, FaultRule

#: characteristic stall used when a latency rule names no duration and the
#: site has no device model to consult (fs/block sites)
DEFAULT_LATENCY_SPIKE = 0.001


@dataclass(frozen=True)
class FaultFire:
    """One injection decision: rule N fires at a site."""

    rule_index: int
    kind: str
    site: str
    op: Optional[str]
    now: float
    #: for ``kind="latency"``: the stall, or None = caller's default
    latency: Optional[float] = None
    #: for ``kind="torn"``: surviving bytes (block-aligned prefix)
    torn_length: int = 0


@dataclass
class _RuleState:
    """Live per-rule bookkeeping inside a plane."""

    rule: FaultRule
    rng: Optional[random.Random]
    matched: int = 0
    fired: int = 0


@dataclass
class FaultPlaneStats:
    """What a plane injected, for survival reports and tests."""

    fires: List[FaultFire] = field(default_factory=list)
    by_site_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, fire: FaultFire) -> None:
        self.fires.append(fire)
        key = f"{fire.site}.{fire.kind}"
        self.by_site_kind[key] = self.by_site_kind.get(key, 0) + 1

    @property
    def total(self) -> int:
        return len(self.fires)


class FaultPlane:
    """Live fault plane: a compiled :class:`FaultPlan` plus fire state.

    A plane starts **inactive** so harnesses can build scenarios (which
    issue plenty of syscalls) without burning trigger counters; call
    :meth:`activate` right before the run under test.
    """

    enabled = True

    def __init__(self, plan: Optional[FaultPlan] = None, active: bool = False) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.active = active
        self.stats = FaultPlaneStats()
        #: every check seen while active, per full site name — the crash
        #: harness reads this to enumerate injection points
        self.counts: Dict[str, int] = {}
        self._rules: List[_RuleState] = []
        for index, rule in enumerate(self.plan.rules):
            rng = None
            if rule.probability is not None:
                # dedicated stream per rule: draws never interleave across
                # rules, so plans compose without perturbing each other
                rng = random.Random(self.plan.seed * 1_000_003 + index)
            self._rules.append(_RuleState(rule, rng))

    # -- lifecycle -----------------------------------------------------

    def activate(self) -> None:
        self.active = True

    def deactivate(self) -> None:
        self.active = False

    # -- the one query every layer makes -------------------------------

    def check(
        self,
        site: str,
        op: Optional[str] = None,
        offset: Optional[int] = None,
        length: Optional[int] = None,
        now: float = 0.0,
    ) -> Optional[FaultFire]:
        """Should a fault fire for this op?  First matching rule wins."""
        if not self.active:
            return None
        self.counts[site] = self.counts.get(site, 0) + 1
        for index, state in enumerate(self._rules):
            rule = state.rule
            if rule.max_fires and state.fired >= rule.max_fires:
                continue
            if not site.startswith(rule.site):
                continue
            if rule.op is not None and rule.op != op:
                continue
            if rule.lba is not None:
                if offset is None:
                    continue
                lo, hi = rule.lba
                end = offset + (length or 0)
                if end <= lo or offset >= hi:
                    continue
            if rule.at_time is not None and now < rule.at_time:
                continue
            state.matched += 1
            if rule.after_ops is not None and state.matched != rule.after_ops:
                continue
            if state.rng is not None and state.rng.random() >= rule.probability:
                continue
            state.fired += 1
            torn = 0
            if rule.kind == "torn" and length:
                torn = block_align_down(int(length * rule.torn_fraction))
                torn = max(0, min(torn, length))
            fire = FaultFire(
                rule_index=index,
                kind=rule.kind,
                site=site,
                op=op,
                now=now,
                latency=rule.latency,
                torn_length=torn,
            )
            self.stats.record(fire)
            obs = obs_hooks.current()
            if obs.enabled:
                obs.fault_injected(site, rule.kind)
                obs.event("fault.injected", now, site=site, kind=rule.kind, op=op)
            return fire
        return None

    def ops_seen(self, prefix: str) -> int:
        """Checks observed (while active) at sites under ``prefix``."""
        return sum(n for site, n in self.counts.items() if site.startswith(prefix))


class NullFaultPlane:
    """Disabled plane: the zero-cost default (mirror of ``obs.NULL``)."""

    enabled = False
    active = False

    def check(
        self,
        site: str,
        op: Optional[str] = None,
        offset: Optional[int] = None,
        length: Optional[int] = None,
        now: float = 0.0,
    ) -> None:
        return None

    def activate(self) -> None:
        pass

    def deactivate(self) -> None:
        pass


NULL = NullFaultPlane()
_current = NULL


def current():
    """The process-wide fault plane (null unless one is installed)."""
    return _current


def install(plane) -> None:
    global _current
    _current = plane


def arm(plan: FaultPlan, active: bool = True) -> FaultPlane:
    """Install (and return) a live plane for ``plan``."""
    plane = FaultPlane(plan, active=active)
    install(plane)
    return plane


def disarm() -> None:
    install(NULL)


@contextmanager
def use(plane):
    """Scoped install; restores the previous plane on exit."""
    previous = current()
    install(plane)
    try:
        yield plane
    finally:
        install(previous)
