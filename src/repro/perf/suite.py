"""The pinned wall-clock suite behind ``repro perf``.

Each layer of the hot path — syscalls, extent maps, free space, the
splitter, the page cache, the device models — gets one seeded
microbenchmark, plus one end-to-end experiment run (the Figure 8/9
synthetic grid cell that funnels through every layer at once).  Every
benchmark is timed with ``time.perf_counter``; microbenchmarks run
``repeats`` times and keep the *minimum* wall time, the standard way to
strip scheduler noise from a throughput reading.

The configuration (op counts, sizes, seeds) is pinned and fingerprinted
into the document so ``repro perf --compare`` refuses to read two
different suites against each other.
"""

from __future__ import annotations

import cProfile
import pstats
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..constants import BLOCK_SIZE, KIB, MIB
from . import regression


def suite_config(smoke: bool = False) -> Dict[str, object]:
    """The full parameterisation of one suite run (fingerprinted)."""
    if smoke:
        return {
            "smoke": True,
            "repeats": 2,
            "seed": 1337,
            "syscalls": {"files": 10, "chunks": 4, "chunk_kib": 64, "read_rounds": 2},
            "extent_map": {"ops": 4000},
            "free_space": {"ops": 3000},
            "page_cache": {"ops": 6000, "capacity_pages": 512},
            "splitter": {"calls": 3000, "pieces": 48},
            "splitter_batch": {"calls": 300, "runs": 8, "run_mib": 4},
            "device_models": {"batches": 200, "batch_commands": 8},
            "device_plans": {"plans": 2000, "max_pages": 64},
            "end_to_end": {"file_size_mib": 2},
        }
    return {
        "smoke": False,
        "repeats": 3,
        "seed": 1337,
        "syscalls": {"files": 24, "chunks": 6, "chunk_kib": 64, "read_rounds": 5},
        "extent_map": {"ops": 30000},
        "free_space": {"ops": 20000},
        "page_cache": {"ops": 40000, "capacity_pages": 2048},
        "splitter": {"calls": 20000, "pieces": 48},
        "splitter_batch": {"calls": 2000, "runs": 8, "run_mib": 4},
        "device_models": {"batches": 1200, "batch_commands": 8},
        "device_plans": {"plans": 12000, "max_pages": 64},
        "end_to_end": {"file_size_mib": 8},
    }


@dataclass(frozen=True)
class LayerResult:
    """One layer's reading: operations over best-of-N wall seconds."""

    name: str
    ops: int
    wall_s: float

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "ops": self.ops,
            "wall_s": self.wall_s,
            "ops_per_sec": self.ops_per_sec,
        }


def _best_of(fn: Callable[[], int], repeats: int) -> Tuple[int, float]:
    """Run ``fn`` ``repeats`` times; return (ops, minimum wall seconds)."""
    best = float("inf")
    ops = 0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    return ops, best


# ---------------------------------------------------------------------------
# layer microbenchmarks
# ---------------------------------------------------------------------------


def _bench_syscalls(cfg: Dict[str, int]) -> int:
    """Round-robin buffered writes (interleaved allocation => fragmented
    files), fsync, then repeated drop-caches + buffered/direct read sweeps:
    the paper's hot loop, counted in syscalls."""
    from ..bench.harness import fresh_fs

    fs, _ = fresh_fs("ext4", "optane")
    chunk = cfg["chunk_kib"] * KIB
    handles = [
        fs.open(f"/perf/f{i}", app="perf", create=True) for i in range(cfg["files"])
    ]
    calls = 0
    now = 0.0
    # interleave chunk writes across files so extents interleave on disk
    for c in range(cfg["chunks"]):
        for handle in handles:
            result = fs.write(handle, c * chunk, chunk, now=now)
            now = result.finish_time
            calls += 1
    for handle in handles:
        result = fs.fsync(handle, now=now)
        now = result.finish_time
        calls += 1
    size = cfg["chunks"] * chunk
    for _ in range(cfg["read_rounds"]):
        fs.drop_caches()
        for handle in handles:
            for off in range(0, size, chunk):
                result = fs.read(handle, off, chunk, now=now)
                now = result.finish_time
                calls += 1
        for handle in handles:
            result = fs.read(handle, 0, size, now=now)
            now = result.finish_time
            calls += 1
    direct = [
        fs.open(f"/perf/f{i}", o_direct=True, app="perf") for i in range(cfg["files"])
    ]
    for handle in direct:
        result = fs.read(handle, 0, size, now=now)
        now = result.finish_time
        calls += 1
    return calls


def _bench_extent_map(cfg: Dict[str, int]) -> int:
    from ..fs.extent_map import Extent, ExtentMap

    rng = random.Random(cfg.get("seed", 7))
    emap = ExtentMap()
    span_blocks = 4096
    ops = cfg["ops"]
    for _ in range(ops):
        roll = rng.random()
        offset = rng.randrange(span_blocks) * BLOCK_SIZE
        length = rng.randrange(1, 17) * BLOCK_SIZE
        if roll < 0.45:
            disk = rng.randrange(span_blocks * 4) * BLOCK_SIZE
            emap.insert(Extent(offset, disk, length))
        elif roll < 0.65:
            emap.punch(offset, length)
        elif roll < 0.90:
            emap.map_range(offset, length)
        else:
            emap.fragment_count()
    return ops


def _bench_free_space(cfg: Dict[str, int]) -> int:
    from ..errors import NoSpaceError
    from ..fs.free_space import FreeSpaceManager

    rng = random.Random(cfg.get("seed", 11))
    manager = FreeSpaceManager(0, 512 * MIB)
    held: List[Tuple[int, int]] = []
    ops = cfg["ops"]
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.5 or not held:
            length = rng.randrange(1, 33) * BLOCK_SIZE
            goal = rng.randrange(0, 512 * MIB, BLOCK_SIZE) if rng.random() < 0.5 else None
            try:
                held.extend(manager.alloc(length, goal=goal))
            except NoSpaceError:
                start, length = held.pop(rng.randrange(len(held)))
                manager.free(start, length)
        elif roll < 0.9:
            start, length = held.pop(rng.randrange(len(held)))
            manager.free(start, length)
        else:
            manager.stats()
            manager.runs()
    return ops


def _bench_page_cache(cfg: Dict[str, int]) -> int:
    from ..fs.page_cache import PageCache

    rng = random.Random(cfg.get("seed", 13))
    cache = PageCache(capacity_pages=cfg["capacity_pages"])
    inodes = 32
    pages_per_ino = cfg["capacity_pages"] // 8
    ops = cfg["ops"]
    for _ in range(ops):
        roll = rng.random()
        ino = rng.randrange(inodes)
        page = rng.randrange(pages_per_ino)
        if roll < 0.4:
            cache.probe((ino, page))
        elif roll < 0.7:
            cache.fill((ino, p) for p in range(page, page + 8))
        elif roll < 0.9:
            cache.mark_dirty((ino, p) for p in range(page, page + 4))
        elif roll < 0.97:
            cache.clean(ino, cache.dirty_pages(ino))
        else:
            cache.invalidate_inode(ino)
    return ops


def _bench_splitter(cfg: Dict[str, int]) -> int:
    from ..block.request import IoOp
    from ..block.splitter import split_ranges

    rng = random.Random(cfg.get("seed", 17))
    pieces = cfg["pieces"]
    # a fragmented mapping: mostly discontiguous 4-16 KiB pieces with
    # occasional adjacency so request merging has work to do
    ranges: List[Tuple[int, int]] = []
    position = 0
    for _ in range(pieces):
        length = rng.randrange(1, 5) * BLOCK_SIZE
        if ranges and rng.random() < 0.25:
            prev_offset, prev_len = ranges[-1]
            ranges.append((prev_offset + prev_len, length))
        else:
            position += rng.randrange(2, 64) * BLOCK_SIZE
            ranges.append((position, length))
            position += length
    calls = cfg["calls"]
    for _ in range(calls):
        split_ranges(IoOp.READ, ranges, tag="perf")
    return calls


def _bench_splitter_batch(cfg: Dict[str, int]) -> int:
    """The cap-emission path in isolation: few, multi-MiB contiguous runs
    that each split into hundreds of ``MAX_REQUEST_SIZE`` commands — the
    loop the arithmetic batch emission replaced."""
    from ..block.request import IoOp
    from ..block.splitter import split_ranges

    rng = random.Random(cfg.get("seed", 19))
    run_bytes = cfg["run_mib"] * MIB
    ranges: List[Tuple[int, int]] = []
    position = 0
    for _ in range(cfg["runs"]):
        length = run_bytes + rng.randrange(0, 16) * BLOCK_SIZE
        position += rng.randrange(2, 64) * BLOCK_SIZE
        ranges.append((position, length))
        position += length
    calls = cfg["calls"]
    for _ in range(calls):
        split_ranges(IoOp.WRITE, ranges, tag="perf")
    return calls


def _bench_device_models(cfg: Dict[str, int]) -> int:
    from ..block.request import IoCommand, IoOp
    from ..device import make_device

    batches = cfg["batches"]
    per_batch = cfg["batch_commands"]
    total = 0
    for kind in ("optane", "flash", "hdd", "microsd"):
        rng = random.Random(cfg.get("seed", 23))
        device = make_device(kind)
        span = device.capacity // 2
        now = 0.0
        for index in range(batches):
            op = IoOp.WRITE if index % 3 == 0 else IoOp.READ
            commands = []
            for _ in range(per_batch):
                offset = rng.randrange(0, span // BLOCK_SIZE) * BLOCK_SIZE
                length = rng.randrange(1, 9) * BLOCK_SIZE
                commands.append(IoCommand(op, offset, length, "perf"))
            result = device.submit(commands, now)
            now = result.finish_time
            total += per_batch
    return total


def _bench_device_plans(cfg: Dict[str, int]) -> int:
    """Batch plan construction in isolation: optane's closed-form bank
    layout and the flash FTL's batch channel count, with offsets and
    page counts varied so the plan memos mostly miss."""
    from ..block.request import IoCommand, IoOp
    from ..device.flash import FlashSsd
    from ..device.optane import OptaneSsd

    rng = random.Random(cfg.get("seed", 29))
    plans = cfg["plans"]
    max_pages = cfg["max_pages"]
    optane = OptaneSsd()
    flash = FlashSsd()
    span = flash.capacity // 2
    # scatter some writes first so flash reads hit real mapping entries
    for index in range(64):
        flash._plan_command(IoCommand(
            IoOp.WRITE, (index * 37 % (span // BLOCK_SIZE)) * BLOCK_SIZE,
            rng.randrange(1, max_pages) * BLOCK_SIZE, "perf",
        ))
    for index in range(plans):
        offset = rng.randrange(0, span // BLOCK_SIZE) * BLOCK_SIZE
        length = rng.randrange(1, max_pages) * BLOCK_SIZE
        op = IoOp.WRITE if index % 3 == 0 else IoOp.READ
        optane._plan_command(IoCommand(op, offset, length, "perf"))
        flash._plan_command(IoCommand(IoOp.READ, offset, length, "perf"))
    return plans


def _run_end_to_end(cfg: Dict[str, int]) -> int:
    from ..bench.experiments import synthetic_defrag

    synthetic_defrag.run(
        "ext4", "optane",
        file_size=cfg["file_size_mib"] * MIB,
        variants=("original", "fragpicker_b"),
        patterns=("seq_read", "stride_read"),
    )
    return 1


_MICRO_BENCHES: Dict[str, Callable[[Dict[str, int]], int]] = {
    "syscalls": _bench_syscalls,
    "extent_map": _bench_extent_map,
    "free_space": _bench_free_space,
    "page_cache": _bench_page_cache,
    "splitter": _bench_splitter,
    "splitter_batch": _bench_splitter_batch,
    "device_models": _bench_device_models,
    "device_plans": _bench_device_plans,
}


def _perf_shard(payload: Tuple[str, Dict[str, int], int]) -> Tuple[str, int, float]:
    """Worker entry: one layer's best-of-N timing."""
    name, layer_cfg, repeats = payload
    bench = _MICRO_BENCHES[name]
    ops, wall = _best_of(lambda: bench(layer_cfg), repeats)
    return name, ops, wall


# ---------------------------------------------------------------------------
# profiling
# ---------------------------------------------------------------------------


def _short_func_name(func: Tuple[str, int, str]) -> str:
    filename, lineno, name = func
    if "src/" in filename:
        filename = filename.split("src/", 1)[1]
    elif "/" in filename:
        filename = filename.rsplit("/", 1)[1]
    return f"{filename}:{lineno}:{name}"


def hot_function_table(cfg: Dict[str, int], top: int = 15) -> List[Dict[str, object]]:
    """cProfile the end-to-end run; top functions by total (self) time."""
    profiler = cProfile.Profile()
    profiler.enable()
    _run_end_to_end(cfg)
    profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    for func, (cc, nc, tottime, cumtime, _) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append({
            "func": _short_func_name(func),
            "calls": nc,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    rows.sort(key=lambda row: row["tottime_s"], reverse=True)
    return rows[:top]


# ---------------------------------------------------------------------------
# the suite
# ---------------------------------------------------------------------------


def run_suite(
    smoke: bool = False,
    label: str = "local",
    profile: bool = True,
    config: Optional[Dict[str, object]] = None,
    workers: Optional[int] = None,
    scaling: Optional[Dict[str, object]] = None,
) -> Tuple[Dict[str, object], List[LayerResult]]:
    """Run the pinned suite; returns ``(perf_document, layer_results)``.

    ``workers`` shards the layer microbenchmarks across processes
    (:mod:`repro.par`); layer results come back in suite order and the
    document's fingerprint (config-only) is unchanged — wall readings
    are wall readings either way, each timed inside its own process.
    ``scaling`` attaches a measured :func:`scaling_curve` to the
    document (recorded, never gated).
    """
    from ..par import run_sharded

    config = config if config is not None else suite_config(smoke)
    repeats = int(config["repeats"])
    seed = int(config["seed"])
    payloads = []
    for name in _MICRO_BENCHES:
        layer_cfg = dict(config[name])
        layer_cfg["seed"] = seed
        payloads.append((name, layer_cfg, repeats))
    sharded = run_sharded(
        _perf_shard, payloads, workers=workers, label="perf layer"
    )
    results = [LayerResult(name, ops, wall) for name, ops, wall in sharded]
    e2e_cfg = dict(config["end_to_end"])
    ops, wall = _best_of(lambda: _run_end_to_end(e2e_cfg), 1 if smoke else 2)
    results.append(LayerResult("end_to_end", ops, wall))
    hot_table: List[Dict[str, object]] = []
    if profile:
        hot_table = hot_function_table(suite_config(smoke=True)["end_to_end"])
    document = regression.build_document(
        label, config,
        layers={result.name: result.to_dict() for result in results},
        total_wall_s=sum(result.wall_s for result in results),
        profile=hot_table,
        scaling=scaling,
    )
    return document, results


def scaling_curve(
    worker_counts: Tuple[int, ...] = (1, 2, 4, 8),
    smoke: bool = False,
) -> Dict[str, object]:
    """Measure the parallel engine's wall-clock scaling on a pinned
    workload (a seed-7 fault-campaign series) and return it in the
    shape the PERF document records.

    ``speedup`` is serial wall over parallel wall; ``efficiency`` is
    speedup over worker count.  Purely a measurement — the sharded
    results themselves are asserted byte-identical elsewhere.
    """
    import os

    from ..faults.campaign import CampaignConfig, run_campaign_series

    trials = 8 if smoke else 32
    config = CampaignConfig(seed=7)

    def timed(workers: Optional[int]) -> float:
        t0 = time.perf_counter()
        run_campaign_series(config, trials=trials, workers=workers)
        return time.perf_counter() - t0

    serial_wall = timed(None)
    points = []
    for workers in worker_counts:
        wall = timed(workers)
        speedup = serial_wall / wall if wall > 0 else 0.0
        points.append({
            "workers": workers,
            "wall_s": wall,
            "speedup": speedup,
            "efficiency": speedup / workers,
        })
    return {
        "workload": "fault_campaign_series",
        "seed": config.seed,
        "trials": trials,
        "host_cpus": os.cpu_count(),
        "serial_wall_s": serial_wall,
        "points": points,
    }


def evaluate_slos(document, wall_budget_s=None, specs=None):
    """Post-hoc SLO evaluation over one PERF document's layer timings.

    Wall clock is noisy, so this never feeds back into the document —
    it judges an already-persisted run: each layer's wall seconds is one
    window's sample under a "stay within the per-layer wall budget"
    objective (default: 2x the run's mean layer time), and a burn alert
    means several layers in a row blew the budget.
    """
    from ..obs.slo import SloPlane, SloSpec

    layers = document.get("layers", {})
    if not layers:
        raise ValueError("document has no layers")
    if wall_budget_s is None:
        total = sum(float(entry.get("wall_s", 0.0)) for entry in layers.values())
        wall_budget_s = 2.0 * total / len(layers)
    if specs is None:
        specs = [SloSpec(
            name="layer_wall", metric="perf.wall_s",
            threshold=wall_budget_s, objective="le", target=0.75,
            fast_windows=1, slow_windows=3, fast_burn=2.0, slow_burn=1.5,
        )]
    plane = SloPlane(specs, window=1.0)
    for index, name in enumerate(sorted(layers)):
        plane.observe_at(
            "perf.wall_s", index, float(layers[name].get("wall_s", 0.0))
        )
    plane.evaluate_all()
    return plane
