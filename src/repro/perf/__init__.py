"""Wall-clock performance pipeline (``repro perf``).

:mod:`repro.bench` tracks *virtual-time* results — what the simulated
storage stack computes.  This package tracks how fast the simulator
itself runs on the host: a pinned suite of per-layer microbenchmarks
plus one end-to-end experiment, timed with ``time.perf_counter`` and
persisted as a schema-versioned ``PERF_<label>.json`` that
``repro perf --compare`` diffs direction-aware, exactly like
``repro bench --compare`` does for virtual-time documents.

The suite is the regression guard for the hot-path optimizations
(null-plane fast paths, indexed extent/free-space structures, memoized
device cost models): those must never change virtual-time results —
the ``BENCH_*.json`` baseline stays value-for-value identical — while
this suite proves the wall-clock trajectory only moves down.
"""

from .regression import (  # noqa: F401
    SCHEMA,
    build_document,
    compare,
    load,
    save,
)
from .suite import run_suite, scaling_curve, suite_config  # noqa: F401
