"""Persistent ``PERF_<label>.json`` documents and wall-clock comparisons.

The document layout mirrors :mod:`repro.bench.regression` but tracks
host wall-clock numbers instead of virtual-time results:

- ``layers[name]`` — ``{ops, wall_s, ops_per_sec}`` per hot-path layer;
- ``total_wall_s`` — the suite's summed best-of-N wall time;
- ``profile`` — the hot-function table from a bundled cProfile run
  (informational; never compared, profiles don't regress, code does).

``compare(baseline, candidate)`` is direction-aware:

- a layer's ``ops_per_sec`` going **down** is a regression,
- ``total_wall_s`` going **up** is a regression,

and the report always prints the overall speedup factor
(baseline wall / candidate wall), which is how the hot-path PRs state
their before/after numbers.
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: document schema tag; bump on incompatible layout changes
SCHEMA = "repro.perf/v1"

#: ops/sec below which a layer reading is considered noise
VALUE_FLOOR = 1e-9


def config_fingerprint(config: Dict[str, object]) -> str:
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def build_document(
    label: str,
    config: Dict[str, object],
    layers: Dict[str, Dict[str, float]],
    total_wall_s: float,
    profile: Optional[List[Dict[str, object]]] = None,
    scaling: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    document = {
        "schema": SCHEMA,
        "label": label,
        "config": dict(config),
        "fingerprint": config_fingerprint(config),
        "python": platform.python_version(),
        "layers": layers,
        "total_wall_s": total_wall_s,
        "profile": list(profile or []),
    }
    if scaling is not None:
        # measured parallel-engine scaling (repro perf --scaling);
        # recorded for the record, never compared — like `profile`,
        # wall-clock parallelism is a property of the host, not the code
        # alone.  Kept outside `config` so the fingerprint is unchanged.
        document["scaling"] = dict(scaling)
    return document


def save(path: str, document: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load(path: str) -> Dict[str, object]:
    with open(path) as fh:
        document = json.load(fh)
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported perf schema {schema!r} (want {SCHEMA!r})"
        )
    return document


@dataclass
class Finding:
    """One compared wall-clock value and its verdict."""

    layer: str
    metric: str
    baseline: float
    candidate: float
    change: float            # signed relative change, candidate vs baseline
    regression: bool

    def describe(self) -> str:
        verdict = "REGRESSION" if self.regression else "ok"
        return (
            f"[{verdict}] {self.layer} {self.metric}: "
            f"{self.baseline:.6g} -> {self.candidate:.6g} "
            f"({self.change:+.1%})"
        )


@dataclass
class Comparison:
    baseline_label: str
    candidate_label: str
    threshold: float
    speedup: float = 1.0     # baseline wall / candidate wall
    findings: List[Finding] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def report(self) -> str:
        lines = [
            f"perf compare: {self.baseline_label} (baseline) vs "
            f"{self.candidate_label} (candidate), threshold {self.threshold:.0%}"
        ]
        lines += [f"  note: {w}" for w in self.warnings]
        for finding in self.findings:
            if finding.regression or abs(finding.change) >= self.threshold:
                lines.append("  " + finding.describe())
        lines.append(
            f"  overall wall-clock speedup: {self.speedup:.2f}x "
            f"({len(self.findings)} values compared, "
            f"{len(self.regressions)} regression(s))"
        )
        return "\n".join(lines)


def compare(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    threshold: float = 0.20,
) -> Comparison:
    """Direction-aware comparison of two PERF documents."""
    comparison = Comparison(
        baseline_label=str(baseline.get("label", "?")),
        candidate_label=str(candidate.get("label", "?")),
        threshold=threshold,
    )
    if baseline.get("fingerprint") != candidate.get("fingerprint"):
        comparison.warnings.append(
            "config fingerprints differ "
            f"({baseline.get('fingerprint')} vs {candidate.get('fingerprint')}): "
            "the documents were produced by different suite configurations"
        )
    if baseline.get("python") != candidate.get("python"):
        comparison.warnings.append(
            f"python versions differ ({baseline.get('python')} vs "
            f"{candidate.get('python')}): wall-clock numbers shift across "
            "interpreters"
        )
    base_layers = baseline.get("layers", {})
    cand_layers = candidate.get("layers", {})
    for layer in sorted(base_layers):
        if layer not in cand_layers:
            comparison.warnings.append(f"layer {layer!r} missing from candidate")
            continue
        base_rate = float(base_layers[layer].get("ops_per_sec", 0.0))
        cand_rate = float(cand_layers[layer].get("ops_per_sec", 0.0))
        if max(base_rate, cand_rate) < VALUE_FLOOR:
            continue
        change = (cand_rate - base_rate) / base_rate if base_rate else float("inf")
        comparison.findings.append(Finding(
            layer=layer, metric="ops_per_sec",
            baseline=base_rate, candidate=cand_rate,
            change=change if change != float("inf") else 1.0,
            regression=change <= -threshold,
        ))
    base_total = float(baseline.get("total_wall_s", 0.0))
    cand_total = float(candidate.get("total_wall_s", 0.0))
    if base_total > VALUE_FLOOR and cand_total > VALUE_FLOOR:
        change = (cand_total - base_total) / base_total
        comparison.findings.append(Finding(
            layer="suite", metric="total_wall_s",
            baseline=base_total, candidate=cand_total,
            change=change,
            regression=change >= threshold,
        ))
        comparison.speedup = base_total / cand_total
    return comparison
