"""BCC-style syscall monitor.

Attaches a probe to a filesystem's syscall layer (above the VFS page
cache, so readahead has *not* been applied to what it sees — FragPicker
compensates for that during per-file analysis) and records
:class:`~repro.trace.records.IORecord` entries, optionally filtered by
application tag.

The ``records`` list is FragPicker's *analysis input* and always exists;
telemetry, however, is not duplicated here: when the observability plane
is enabled each accepted record is also emitted into the shared
``repro.obs`` event ring (track ``"syscall"``), so Chrome traces show the
monitored syscalls without a second bookkeeping path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..fs.base import Filesystem, SyscallEvent
from ..obs import hooks as obs_hooks
from .records import IORecord


class SyscallMonitor:
    """Collects I/O syscalls from one filesystem.

    Use as a context manager around the observation window::

        with SyscallMonitor(fs, apps={"rocksdb"}) as mon:
            run_workload()
        records = mon.records
    """

    def __init__(
        self,
        fs: Filesystem,
        apps: Optional[Iterable[str]] = None,
        io_types: Iterable[str] = ("read", "write"),
    ) -> None:
        self.fs = fs
        self.apps: Optional[Set[str]] = set(apps) if apps is not None else None
        self.io_types = set(io_types)
        self.records: List[IORecord] = []
        self.obs = obs_hooks.current()
        self._attached = False

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> "SyscallMonitor":
        if not self._attached:
            self.fs.attach_monitor(self._probe)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.fs.detach_monitor(self._probe)
            self._attached = False

    def __enter__(self) -> "SyscallMonitor":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- probe --------------------------------------------------------------

    def _probe(self, event: SyscallEvent) -> None:
        if event.op not in self.io_types:
            return
        if self.apps is not None and event.app not in self.apps:
            return
        if event.size <= 0:
            return
        self.records.append(
            IORecord(
                io_type=event.op,
                ino=event.ino,
                offset=event.offset,
                size=event.size,
                o_direct=event.o_direct,
                app=event.app,
                time=event.time,
            )
        )
        if self.obs.enabled:
            self.obs.event(
                f"syscall.{event.op}", event.time, track="syscall",
                app=event.app, ino=event.ino,
                offset=event.offset, size=event.size,
            )

    # -- views ----------------------------------------------------------------

    def by_inode(self) -> Dict[int, List[IORecord]]:
        grouped: Dict[int, List[IORecord]] = {}
        for record in self.records:
            grouped.setdefault(record.ino, []).append(record)
        return grouped

    def clear(self) -> None:
        self.records.clear()

    # -- capture -> corpus -----------------------------------------------

    def dump_binary(self, path: str) -> int:
        """Write the captured window as a ``repro.replay/v1`` binary trace.

        The capture side of the capture->replay round trip: each
        :class:`IORecord` becomes one packed op record with the inode
        number as the trace ``file_id`` (replay maps it back to a path
        via an explicit :class:`~repro.replay.reconstruct.PlacementPolicy`
        mapping).  Returns the number of records written.
        """
        # late import: repro.replay imports nothing from repro.trace, but
        # keep the base monitor usable without the replay package loaded
        from ..replay.formats import BinaryTraceWriter
        from ..types import IoOp

        with BinaryTraceWriter(path) as writer:
            for record in self.records:
                writer.write_op(IoOp(
                    op=record.io_type,
                    file_id=record.ino,
                    offset=record.offset,
                    size=record.size,
                    time=record.time,
                    o_direct=record.o_direct,
                ))
            return writer.written
