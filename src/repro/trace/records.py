"""Trace records emitted by the syscall monitor."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IORecord:
    """One observed I/O system call (the paper's Section 4.1.1 fields)."""

    io_type: str     # "read" | "write"
    ino: int
    offset: int      # start offset of the I/O
    size: int
    o_direct: bool
    app: str
    time: float

    @property
    def end(self) -> int:
        return self.offset + self.size
