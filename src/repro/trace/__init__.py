"""Syscall-layer I/O tracing — the BCC/eBPF equivalent.

FragPicker's analysis phase needs, per I/O syscall: the I/O type, inode
number, size, start offset, and whether it was O_DIRECT (Section 4.1.1).
:class:`SyscallMonitor` attaches to a filesystem's syscall hooks and
collects exactly that, optionally filtered to specific applications —
mirroring BCC's ability to trace one process.
"""

from .records import IORecord
from .syscall_monitor import SyscallMonitor

__all__ = ["IORecord", "SyscallMonitor"]
