"""Latency attribution and span-tree summaries over captured telemetry.

PR 1's ``repro.obs`` records *what happened*; this module explains *why a
number came out the way it did*, the way the paper's Section 3 analysis
decomposes fragmentation cost by hand.  The core object is an
:class:`Attribution`: the wall-clock latency of every instrumented syscall
in a measurement window, partitioned into named components that each layer
measured at source:

===================  ====================================================
component            meaning (virtual seconds, summed over the window)
===================  ====================================================
``fs_cpu``           host CPU above the block layer: syscall overhead,
                     page-cache memcpy, attached-probe cost
``kernel_queue``     wait for the shared kernel-CPU timeline (another
                     submitter is building requests)
``kernel_cpu``       baseline request-build CPU — one request per syscall
``split_cost``       the *extra* kernel CPU caused by request splitting;
                     ~0 once files are contiguous (the paper's mechanism)
``device_queue``     device-side wait behind earlier traffic
``device_service``   device wall-clock service after pickup, minus
                     penalties
``device_penalty``   seek / mapping-miss penalties charged purely for
                     discontiguity (HDD, MicroSD)
===================  ====================================================

Because every component is an exact slice of the same timeline the
``fs.syscall_latency.*`` histograms measure, their sum must equal the
measured total; :meth:`Attribution.check` enforces that invariant (a
failing check means a syscall path stopped reporting a slice — a wiring
regression, not a perf change).

``attribute`` accepts any of the metric shapes the plane produces: a live
:class:`~repro.obs.metrics.MetricsRegistry`, a ``registry.snapshot()``
dict of metric objects, or the JSON form stored in
``VariantResult.metrics`` / ``BENCH_*.json`` files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..stats.tables import format_table
from .metrics import MetricsRegistry
from .spans import SpanRecorder

#: (component key, backing counter, human description) — display order.
COMPONENTS: Tuple[Tuple[str, str, str], ...] = (
    ("fs_cpu", "attrib.fs_cpu_s", "host CPU above block layer"),
    ("kernel_queue", "attrib.kernel_queue_s", "shared kernel-CPU wait"),
    ("kernel_cpu", "attrib.kernel_cpu_base_s", "request-build CPU (baseline)"),
    ("split_cost", "attrib.kernel_cpu_split_s", "extra CPU from request splitting"),
    ("device_queue", "attrib.device_queue_s", "device wait behind earlier traffic"),
    ("device_service", "attrib.device_service_s", "device service (media + link)"),
    ("device_penalty", "attrib.device_penalty_s", "seek / mapping-miss penalty"),
)

#: prefix of the histograms whose summed totals define the measured total
LATENCY_PREFIX = "fs.syscall_latency."


def _metric_view(metrics) -> Mapping[str, Mapping[str, object]]:
    """Normalize registry / snapshot / JSON-dict input to name -> dict."""
    if isinstance(metrics, MetricsRegistry):
        return metrics.to_dict()
    view: Dict[str, Mapping[str, object]] = {}
    for name, metric in metrics.items():
        view[name] = metric if isinstance(metric, dict) else metric.to_dict()
    return view


@dataclass
class Attribution:
    """One window's latency decomposition plus its consistency check."""

    components: Dict[str, float]
    total: float                       # Σ fs.syscall_latency.* sums
    syscalls: int = 0                  # samples behind the total
    descriptions: Dict[str, str] = field(default_factory=dict)

    @property
    def attributed(self) -> float:
        return sum(self.components.values())

    @property
    def residual(self) -> float:
        """Measured total minus attributed components (≈0 when wired)."""
        return self.total - self.attributed

    def share(self, component: str) -> float:
        return self.components.get(component, 0.0) / self.total if self.total else 0.0

    def check(self, tolerance: float = 0.01) -> bool:
        """Components sum to the measured total within ``tolerance``."""
        if self.total <= 0.0:
            return self.attributed <= 1e-12
        return abs(self.residual) <= tolerance * self.total

    def table(self) -> str:
        rows: List[List[object]] = []
        for key, _, description in COMPONENTS:
            seconds = self.components.get(key, 0.0)
            rows.append([key, seconds, f"{100.0 * self.share(key):.1f}%", description])
        rows.append(["(total measured)", self.total, "100.0%",
                     f"{self.syscalls} syscalls"])
        rows.append(["(residual)", self.residual,
                     f"{100.0 * (self.residual / self.total if self.total else 0.0):.2f}%",
                     "sum-to-total slack"])
        return format_table(["component", "seconds", "share", "what it is"], rows)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.obs.attribution/v1",
            "total_s": self.total,
            "syscalls": self.syscalls,
            "components_s": dict(self.components),
            "residual_s": self.residual,
            "ok": self.check(),
        }


def attribute(metrics) -> Attribution:
    """Decompose the window's total syscall latency into components.

    ``metrics`` may be a :class:`MetricsRegistry`, a ``snapshot()`` dict of
    metric objects, or the JSON registry dump (``VariantResult.metrics``).
    For a windowed attribution, delta the registry against a snapshot first
    (see :func:`delta_metrics`).
    """
    view = _metric_view(metrics)
    components: Dict[str, float] = {}
    descriptions: Dict[str, str] = {}
    for key, counter_name, description in COMPONENTS:
        entry = view.get(counter_name)
        components[key] = float(entry["value"]) if entry else 0.0
        descriptions[key] = description
    total = 0.0
    syscalls = 0
    for name, entry in view.items():
        if name.startswith(LATENCY_PREFIX):
            total += float(entry.get("sum", 0.0))
            syscalls += int(entry.get("count", 0))
    return Attribution(components=components, total=total, syscalls=syscalls,
                       descriptions=descriptions)


def delta_metrics(
    registry: MetricsRegistry, since: Optional[Mapping[str, object]]
) -> Dict[str, Dict[str, object]]:
    """JSON-ready registry dump, windowed against an earlier ``snapshot()``.

    Metrics born after the snapshot pass through whole; gauges keep their
    later reading (they are not cumulative).
    """
    if not since:
        return registry.to_dict()
    out: Dict[str, Dict[str, object]] = {}
    for metric in registry.metrics():
        earlier = since.get(metric.name)
        windowed = metric.delta(earlier) if earlier is not None else metric
        out[metric.name] = windowed.to_dict()
    return out


# ----------------------------------------------------------------------
# span-tree summaries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpanSummary:
    """Aggregate of every finished span sharing one name."""

    name: str
    count: int
    total: float
    mean: float
    max: float
    self_total: float  # total minus time covered by same-track children


def span_summary(recorder: SpanRecorder) -> List[SpanSummary]:
    """Walk the span tree: per-name totals plus self time (children

    of a span subtract from its *self* total, so nested phases — e.g.
    ``fragpicker.migrate`` under ``fragpicker.defragment`` — don't double
    count when read as a breakdown)."""
    child_time: Dict[int, float] = {}
    for span in recorder.finished_spans():
        if span.parent is not None and span.parent.track == span.track:
            child_time[id(span.parent)] = child_time.get(id(span.parent), 0.0) + span.duration
    rollup: Dict[str, List[float]] = {}
    for span in recorder.finished_spans():
        self_time = max(0.0, span.duration - child_time.get(id(span), 0.0))
        bucket = rollup.setdefault(span.name, [0, 0.0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += span.duration
        bucket[2] = max(bucket[2], span.duration)
        bucket[3] += self_time
    summaries = [
        SpanSummary(name=name, count=int(count), total=total,
                    mean=total / count if count else 0.0,
                    max=longest, self_total=self_total)
        for name, (count, total, longest, self_total) in rollup.items()
    ]
    summaries.sort(key=lambda s: s.total, reverse=True)
    return summaries


def span_table(recorder: SpanRecorder, limit: int = 20) -> str:
    rows = [
        [s.name, s.count, s.total, s.self_total, s.mean, s.max]
        for s in span_summary(recorder)[:limit]
    ]
    return format_table(
        ["span", "count", "total s", "self s", "mean s", "max s"], rows
    )


def histogram_summary(metrics, name: str) -> Dict[str, float]:
    """Compact {count, mean, p95, max} view of one histogram (any shape)."""
    view = _metric_view(metrics)
    entry = view.get(name)
    if not entry or entry.get("kind") != "histogram":
        return {"count": 0, "mean": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "count": int(entry.get("count", 0)),
        "mean": float(entry.get("mean", 0.0)),
        "p95": float(entry.get("p95", 0.0)),
        "max": float(entry.get("max", 0.0)),
    }
