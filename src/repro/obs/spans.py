"""Hierarchical spans and an event ring buffer over virtual time.

Spans are the structural half of the observability plane: a span covers a
window of **simulated** time (``sim.clock`` / the ``now`` floats the stack
threads through every syscall), carries attributes, and nests — a
``fragpicker.defragment`` span contains one ``fragpicker.migrate`` child
per range.  Because time is virtual, callers pass it explicitly::

    span = recorder.start("fragpicker.migrate", now, file=path)
    ...
    recorder.finish(span, now)

or, with anything exposing ``.now`` (e.g. :class:`repro.sim.clock.Clock`
or an :class:`~repro.sim.engine.ActorContext`)::

    with recorder.span("phase.analyze", clock):
        ...

Instant happenings (actor steps, frag-check skips, provenance edges) go
into a bounded ring buffer via :meth:`SpanRecorder.event` so long
experiments cannot grow the log without bound.

Truncation behaviour: both stores are bounded.  Spans past ``max_spans``
are *not* kept (``dropped_spans`` counts them); events past ``max_events``
evict the **oldest** ring entries (``dropped_events`` counts the wraps,
and an attached ``drop_counter`` — ``obs.events_dropped`` when owned by an
:class:`~repro.obs.hooks.Instrumentation` — surfaces the loss in the
metrics registry, so provenance-armed runs can't silently lose causal
edges).  Size the buffers per run via
``Instrumentation(max_spans=..., max_events=...)``.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, List, Optional, Tuple


class Span:
    """One named window of virtual time, possibly nested."""

    __slots__ = ("name", "start", "end", "attrs", "parent", "track", "depth")

    def __init__(
        self,
        name: str,
        start: float,
        attrs: Optional[Dict[str, object]] = None,
        parent: Optional["Span"] = None,
        track: str = "main",
    ) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs or {}
        self.parent = parent
        self.track = track
        self.depth = 0 if parent is None else parent.depth + 1

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.start}..{self.end}, depth={self.depth})"


class SpanEvent:
    """One instant event in the ring buffer."""

    __slots__ = ("name", "time", "attrs", "track")

    def __init__(self, name: str, time: float, attrs: Dict[str, object], track: str) -> None:
        self.name = name
        self.time = time
        self.attrs = attrs
        self.track = track


class SpanRecorder:
    """Collects spans (bounded) and events (ring buffer) per track.

    A *track* is one logical timeline — an actor name, usually — so
    concurrent actors nest independently and export as separate rows in
    ``chrome://tracing``.
    """

    def __init__(self, max_spans: int = 100_000, max_events: int = 65_536) -> None:
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.events: Deque[SpanEvent] = deque(maxlen=max_events)
        self.dropped_spans = 0
        #: events evicted by ring wrap (oldest-first) since the last clear
        self.dropped_events = 0
        #: optional Counter-like sink (``.inc()``) notified on each wrap;
        #: Instrumentation points this at its ``obs.events_dropped`` counter
        self.drop_counter = None
        self._stacks: Dict[str, List[Span]] = {}

    # -- spans ---------------------------------------------------------

    def start(self, name: str, now: float, track: str = "main", **attrs: object) -> Span:
        stack = self._stacks.setdefault(track, [])
        parent = stack[-1] if stack else None
        span = Span(name, now, attrs or None, parent, track)
        stack.append(span)
        return span

    def finish(self, span: Span, now: float) -> Span:
        span.end = max(now, span.start)
        stack = self._stacks.get(span.track, [])
        if span in stack:
            # pop this span and anything left dangling above it
            while stack:
                popped = stack.pop()
                if popped is span:
                    break
                if popped.end is None:
                    popped.end = span.end
                    self._keep(popped)
        self._keep(span)
        return span

    def _keep(self, span: Span) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped_spans += 1

    def adopt(
        self,
        name: str,
        start: float,
        end: float,
        track: str = "main",
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Append an already-finished span (a harvested worker span).

        Bypasses the per-track stacks — adopted spans carry no parent
        link — but respects ``max_spans`` bounding and drop accounting
        exactly like locally recorded spans.
        """
        span = Span(name, start, dict(attrs) if attrs else None, None, track)
        span.end = max(end, start)
        self._keep(span)
        return span

    @contextmanager
    def span(self, name: str, clock, track: str = "main", **attrs: object):
        """Context manager over anything exposing ``.now``."""
        entry = self.start(name, clock.now, track=track, **attrs)
        try:
            yield entry
        finally:
            self.finish(entry, clock.now)

    def active(self, track: str = "main") -> Optional[Span]:
        stack = self._stacks.get(track)
        return stack[-1] if stack else None

    # -- events --------------------------------------------------------

    def event(self, name: str, now: float, track: str = "main", **attrs: object) -> None:
        events = self.events
        if len(events) == events.maxlen:
            # the ring wraps: the oldest event is about to be evicted
            self.dropped_events += 1
            if self.drop_counter is not None:
                self.drop_counter.inc()
        events.append(SpanEvent(name, now, attrs, track))

    # -- views ---------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        return [span for span in self.spans if span.finished]

    def by_name(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def tracks(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track)
        for event in self.events:
            seen.setdefault(event.track)
        return list(seen)

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self.dropped_spans = 0
        self.dropped_events = 0
        self._stacks.clear()
