"""Declarative SLOs, error budgets, and multi-window burn-rate alerting.

The judgment layer on top of the telemetry plane: a :class:`SloSpec`
names an objective ("95% of foreground reads finish within 2 ms"), an
evaluator rolls a :class:`~repro.obs.timeseries.WindowedSeries` into
per-window compliance, error-budget consumption, and fast/slow burn
rates (the SRE multi-window alerting shape), and a :class:`SloPlane`
bundles the store plus one evaluator per spec behind a single
``observe``/``evaluate_through`` surface the fleet controller, the bench
harness, and the ``repro slo`` CLI all share.

Everything is virtual-time-deterministic: the same telemetry points
produce the same windows, the same burn rates, the same alerts — so the
``repro.slo/v1`` document this module builds is byte-reproducible per
seed, fingerprinted, and comparable with the bench pipeline's
direction-aware :class:`~repro.bench.regression.Comparison` machinery
(compliance or budget going *down* is a regression, breaches or burn
going *up* is a regression).

Definitions (per spec):

- a sample is **bad** when it violates the objective
  (``value > threshold`` for ``objective="le"``, ``value < threshold``
  for ``"ge"``);
- a window **breaches** when its bad fraction exceeds the error budget
  ``1 - target`` (the window alone would miss the SLO);
- the window's **burn rate** is ``bad_fraction / (1 - target)`` — 1.0
  means spending budget exactly as fast as the target allows;
- an **alert** fires when the mean burn over the last ``fast_windows``
  windows reaches ``fast_burn`` *and* the mean over the last
  ``slow_windows`` windows reaches ``slow_burn`` (fast catches the
  spike, slow confirms it is not noise).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .timeseries import MAX_VALUES, MAX_WINDOWS, TimeSeriesStore

#: document schema tag; bump on incompatible layout changes
SCHEMA = "repro.slo/v1"

#: objective directions: good when value <= / >= threshold
OBJECTIVES = ("le", "ge")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over one telemetry series."""

    name: str
    #: series name in the telemetry store this objective watches
    metric: str
    #: objective boundary a sample is judged against
    threshold: float
    #: "le": samples are good when value <= threshold; "ge": when >=
    objective: str = "le"
    #: compliance target over the run (error budget = 1 - target)
    target: float = 0.95
    #: burn-rate alerting windows (fast spike + slow confirmation)
    fast_windows: int = 1
    slow_windows: int = 4
    fast_burn: float = 4.0
    slow_burn: float = 2.0

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(f"objective must be one of {OBJECTIVES}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.fast_windows < 1 or self.slow_windows < 1:
            raise ValueError("burn windows must be >= 1")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be positive")

    @property
    def budget(self) -> float:
        """The error budget: tolerated bad fraction over the run."""
        return 1.0 - self.target

    def bad(self, value: float) -> bool:
        if self.objective == "le":
            return value > self.threshold
        return value < self.threshold

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "metric": self.metric,
            "threshold": self.threshold,
            "objective": self.objective,
            "target": self.target,
            "fast_windows": self.fast_windows,
            "slow_windows": self.slow_windows,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
        }

    @classmethod
    def from_dict(cls, entry: Dict[str, object]) -> "SloSpec":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(entry) - known
        if unknown:
            raise ValueError(f"unknown SLO spec keys: {sorted(unknown)}")
        return cls(**entry)  # type: ignore[arg-type]


def load_specs(path: str) -> List[SloSpec]:
    """Read a spec file: either ``{"slos": [...]}`` or a bare JSON list."""
    with open(path) as fh:
        raw = json.load(fh)
    entries = raw.get("slos") if isinstance(raw, dict) else raw
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: expected a non-empty list of SLO specs")
    return [SloSpec.from_dict(entry) for entry in entries]


class WindowVerdict:
    """One evaluated window of one SLO."""

    __slots__ = ("index", "samples", "bad", "burn", "fast", "slow",
                 "breach", "alert")

    def __init__(self, index: int, samples: int, bad: int, burn: float,
                 fast: float, slow: float, breach: bool, alert: bool) -> None:
        self.index = index
        self.samples = samples
        self.bad = bad
        self.burn = burn
        self.fast = fast
        self.slow = slow
        self.breach = breach
        self.alert = alert


class SloEvaluator:
    """Rolls one series' windows into budget consumption and burn rates."""

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        self.windows = 0
        self.samples = 0
        self.bad_samples = 0
        self.breaches = 0
        self.alerts = 0
        #: per-window burn rates, evaluation order
        self.burn_history: List[float] = []
        self.max_fast = 0.0
        self.max_slow = 0.0
        self.verdicts: List[WindowVerdict] = []

    def evaluate_window(self, index: int, values: Sequence[float]) -> WindowVerdict:
        spec = self.spec
        samples = len(values)
        bad = sum(1 for value in values if spec.bad(value))
        burn = (bad / samples) / spec.budget if samples else 0.0
        self.burn_history.append(burn)
        fast_tail = self.burn_history[-spec.fast_windows:]
        slow_tail = self.burn_history[-spec.slow_windows:]
        fast = sum(fast_tail) / len(fast_tail)
        slow = sum(slow_tail) / len(slow_tail)
        breach = samples > 0 and (bad / samples) > spec.budget
        alert = fast >= spec.fast_burn and slow >= spec.slow_burn
        self.windows += 1
        self.samples += samples
        self.bad_samples += bad
        if breach:
            self.breaches += 1
        if alert:
            self.alerts += 1
        if fast > self.max_fast:
            self.max_fast = fast
        if slow > self.max_slow:
            self.max_slow = slow
        verdict = WindowVerdict(index, samples, bad, burn, fast, slow,
                                breach, alert)
        self.verdicts.append(verdict)
        return verdict

    # -- whole-run views -----------------------------------------------

    @property
    def compliance(self) -> float:
        """Good fraction over every evaluated sample (1.0 when idle)."""
        if not self.samples:
            return 1.0
        return 1.0 - self.bad_samples / self.samples

    @property
    def budget_consumed(self) -> float:
        """Error budget spent: 1.0 = the whole run's budget is gone."""
        if not self.samples:
            return 0.0
        return (self.bad_samples / self.samples) / self.spec.budget

    @property
    def budget_remaining(self) -> float:
        """Unspent budget fraction (negative once overspent)."""
        return 1.0 - self.budget_consumed

    def burn_series(self) -> List[float]:
        return list(self.burn_history)

    def summary(self) -> Dict[str, object]:
        last = self.verdicts[-1] if self.verdicts else None
        return {
            "metric": self.spec.metric,
            "objective": self.spec.objective,
            "threshold": self.spec.threshold,
            "target": self.spec.target,
            "windows": self.windows,
            "samples": self.samples,
            "bad_samples": self.bad_samples,
            "compliance": self.compliance,
            "budget_consumed": self.budget_consumed,
            "budget_remaining": self.budget_remaining,
            "breaches": self.breaches,
            "alerts": self.alerts,
            "max_fast_burn": self.max_fast,
            "max_slow_burn": self.max_slow,
            "last_fast_burn": last.fast if last else 0.0,
            "last_slow_burn": last.slow if last else 0.0,
            "burn": self.burn_series(),
        }


class SloPlane:
    """Telemetry store + one evaluator per spec, behind a single surface.

    Null-by-default at the :class:`~repro.obs.hooks.Instrumentation`
    level: an instrumentation built without ``slo=`` keeps ``slo=None``
    and every producer guards with ``if obs.slo is not None`` *inside*
    its ``obs.enabled`` branch, so the null plane stays untouched.

    When the plane is carried by an armed instrumentation it mirrors
    verdicts outward: ``slo.breach`` / ``slo.burn`` events into the
    shared ring, plus ``slo.<name>.burn_fast`` / ``slo.<name>.
    budget_remaining`` gauges and ``slo.breaches`` / ``slo.alerts``
    counters in the registry.  Evaluation itself never reads the clock
    or the registry, so documents stay byte-identical with or without
    an armed instrumentation.
    """

    def __init__(
        self,
        specs: Sequence[SloSpec],
        window: float,
        origin: float = 0.0,
        max_windows: int = MAX_WINDOWS,
        max_values: int = MAX_VALUES,
    ) -> None:
        self.specs = list(specs)
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO spec names")
        self.store = TimeSeriesStore(
            window, origin, max_windows=max_windows, max_values=max_values,
        )
        self.evaluators: Dict[str, SloEvaluator] = {
            spec.name: SloEvaluator(spec) for spec in self.specs
        }
        #: alert rows, evaluation order: the document's ``alerts`` table
        self.alerts: List[Dict[str, object]] = []
        self._evaluated_through: Dict[str, int] = {}
        self._obs = None

    # -- instrumentation binding ---------------------------------------

    def bind(self, obs) -> None:
        """Attach the carrying instrumentation (event/gauge mirroring)."""
        self._obs = obs

    # -- ingest --------------------------------------------------------

    @property
    def window(self) -> float:
        return self.store.width

    def observe(self, metric: str, now: float, value: float) -> None:
        self.store.observe(metric, now, value)

    def observe_at(self, metric: str, index: int, value: float) -> None:
        self.store.observe_at(metric, index, value)

    # -- evaluation ----------------------------------------------------

    def evaluate_through(self, index: int) -> List[Dict[str, object]]:
        """Evaluate every spec's unevaluated windows up to ``index``.

        Returns the alert rows fired by this pass (also appended to
        ``self.alerts``).  Windows with no samples still evaluate — an
        idle window burns no budget but advances the slow-burn tail.
        """
        fired: List[Dict[str, object]] = []
        for spec in self.specs:
            evaluator = self.evaluators[spec.name]
            series = self.store.series(spec.metric)
            start = self._evaluated_through.get(spec.name, -1) + 1
            for idx in range(start, index + 1):
                agg = series.window(idx)
                values = agg.values if agg is not None else ()
                verdict = evaluator.evaluate_window(idx, values)
                self._mirror(spec, evaluator, series, verdict)
                if verdict.alert:
                    row = {
                        "slo": spec.name,
                        "window": idx,
                        "time_s": series.window_end(idx),
                        "fast_burn": verdict.fast,
                        "slow_burn": verdict.slow,
                        "bad": verdict.bad,
                        "samples": verdict.samples,
                    }
                    self.alerts.append(row)
                    fired.append(row)
            self._evaluated_through[spec.name] = max(
                index, self._evaluated_through.get(spec.name, -1)
            )
        return fired

    def evaluate_all(self) -> List[Dict[str, object]]:
        """Evaluate every window any watched series has data for."""
        last = -1
        for spec in self.specs:
            if spec.metric in self.store:
                indexes = self.store.series(spec.metric).indexes()
                if indexes:
                    last = max(last, indexes[-1])
        if last < 0:
            return []
        return self.evaluate_through(last)

    def _mirror(self, spec, evaluator, series, verdict) -> None:
        obs = self._obs
        if obs is None or not obs.enabled:
            return
        now = series.window_end(verdict.index)
        registry = obs.registry
        registry.gauge(f"slo.{spec.name}.burn_fast").set(verdict.fast)
        registry.gauge(f"slo.{spec.name}.burn_slow").set(verdict.slow)
        registry.gauge(f"slo.{spec.name}.budget_remaining").set(
            evaluator.budget_remaining
        )
        if verdict.breach:
            registry.counter("slo.breaches").inc()
            obs.event(
                "slo.breach", now, track="slo", slo=spec.name,
                window=verdict.index, bad=verdict.bad,
                samples=verdict.samples, burn=verdict.burn,
            )
        if verdict.alert:
            registry.counter("slo.alerts").inc()
            obs.event(
                "slo.burn", now, track="slo", slo=spec.name,
                window=verdict.index, fast=verdict.fast, slow=verdict.slow,
            )

    # -- whole-run views -----------------------------------------------

    def evaluator(self, name: str) -> SloEvaluator:
        return self.evaluators[name]

    def summaries(self) -> Dict[str, Dict[str, object]]:
        return {
            spec.name: self.evaluators[spec.name].summary()
            for spec in self.specs
        }

    def firing(self) -> List[str]:
        """Spec names whose *latest* evaluated window is alerting."""
        names = []
        for spec in self.specs:
            verdicts = self.evaluators[spec.name].verdicts
            if verdicts and verdicts[-1].alert:
                names.append(spec.name)
        return names


# ----------------------------------------------------------------------
# the repro.slo/v1 document
# ----------------------------------------------------------------------

def fingerprint(document: Dict[str, object]) -> str:
    """sha256 over the canonical document (fingerprint field excluded)."""
    body = {k: v for k, v in document.items() if k != "fingerprint"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def build_document(
    label: str,
    source: Dict[str, object],
    plane: SloPlane,
) -> Dict[str, object]:
    """Assemble (and fingerprint) one ``repro.slo/v1`` document.

    ``source`` names what produced the telemetry — e.g.
    ``{"kind": "fleet", "config": {...}}`` — so two documents are only
    meaningfully compared when their sources match.
    """
    doc: Dict[str, object] = {
        "schema": SCHEMA,
        "label": label,
        "source": dict(source),
        "window_s": plane.window,
        "specs": [spec.to_dict() for spec in plane.specs],
        "slos": plane.summaries(),
        "alerts": list(plane.alerts),
    }
    doc["fingerprint"] = fingerprint(doc)
    return doc


def save(path: str, document: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load(path: str) -> Dict[str, object]:
    with open(path) as fh:
        document = json.load(fh)
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported slo schema {schema!r} (want {SCHEMA!r})"
        )
    return document


def validate(document: Dict[str, object]) -> None:
    """Structural sanity of a loaded document (raises on violations)."""
    if document.get("schema") != SCHEMA:
        raise ValueError(f"bad schema: {document.get('schema')!r}")
    if document.get("fingerprint") != fingerprint(document):
        raise ValueError("fingerprint does not match document body")
    slos = document.get("slos", {})
    if not isinstance(slos, dict) or not slos:
        raise ValueError("document has no slos")
    for name, summary in slos.items():
        consumed = summary["budget_consumed"]
        remaining = summary["budget_remaining"]
        if abs((consumed + remaining) - 1.0) > 1e-9:
            raise ValueError(f"{name}: budget does not sum to 1.0")
        if summary["alerts"] > summary["windows"]:
            raise ValueError(f"{name}: more alerts than windows")


# ----------------------------------------------------------------------
# rendering + Prometheus export
# ----------------------------------------------------------------------

def report_text(document: Dict[str, object]) -> str:
    """Plain-text report of one SLO document."""
    lines = [
        "SLO report",
        "=" * 10,
        "",
        f"source  : {document['source'].get('kind', '?')}, "
        f"window {document['window_s']}s, label {document['label']}",
        "",
        "  slo                       objective                           "
        "  compliance   target  budget-left  breaches  alerts  max-burn f/s",
    ]
    for name in sorted(document["slos"]):
        summary = document["slos"][name]
        objective = (
            f"{summary['metric']} {summary['objective']} "
            f"{summary['threshold']:g}"
        )
        lines.append(
            f"  {name:<24}  {objective:<36}  {summary['compliance']:>8.2%}"
            f"  {summary['target']:>6.0%}  {summary['budget_remaining']:>+10.2%}"
            f"  {summary['breaches']:>8}  {summary['alerts']:>6}"
            f"  {summary['max_fast_burn']:.2f}/{summary['max_slow_burn']:.2f}"
        )
    alerts = document["alerts"]
    lines.append("")
    if alerts:
        lines.append(f"  {len(alerts)} burn-rate alert(s):")
        for row in alerts:
            lines.append(
                f"    [window {row['window']:>3} @ {row['time_s']:.2f}s] "
                f"{row['slo']}: fast {row['fast_burn']:.2f} / "
                f"slow {row['slow_burn']:.2f} "
                f"({row['bad']}/{row['samples']} bad)"
            )
    else:
        lines.append("  no burn-rate alerts fired")
    lines.append("")
    lines.append(f"fingerprint: {document['fingerprint']}")
    return "\n".join(lines)


def prometheus_registry(document: Dict[str, object]):
    """Budget/burn gauges of a document, as an exportable registry.

    Feed the result to :func:`repro.obs.export.prometheus_text` to get
    the byte-deterministic text-format rendering (``repro slo --prom``).
    """
    from .metrics import MetricsRegistry

    registry = MetricsRegistry()
    for name in sorted(document["slos"]):
        summary = document["slos"][name]
        registry.gauge(f"slo.{name}.budget_remaining").set(
            summary["budget_remaining"]
        )
        registry.gauge(f"slo.{name}.compliance").set(summary["compliance"])
        registry.counter(f"slo.{name}.breaches").inc(summary["breaches"])
        registry.counter(f"slo.{name}.alerts").inc(summary["alerts"])
    return registry


# ----------------------------------------------------------------------
# direction-aware comparison (reuses the bench pipeline's machinery)
# ----------------------------------------------------------------------

#: compared per-SLO metrics: name -> higher_is_better
_COMPARED = {
    "compliance": True,
    "budget_remaining": True,
    "breaches": False,
    "alerts": False,
    "max_fast_burn": False,
    "max_slow_burn": False,
}


def compare(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    threshold: float = 0.10,
):
    """Direction-aware comparison of two SLO documents."""
    from ..bench.regression import Comparison, Finding

    comparison = Comparison(
        baseline_label=str(baseline.get("label", "?")),
        candidate_label=str(candidate.get("label", "?")),
        threshold=threshold,
        kind="slo",
    )
    if baseline.get("source") != candidate.get("source"):
        comparison.warnings.append(
            "sources differ: the documents describe different runs"
        )
    base_slos = baseline.get("slos", {})
    cand_slos = candidate.get("slos", {})
    for name in sorted(base_slos):
        if name not in cand_slos:
            comparison.warnings.append(f"slo {name!r} missing from candidate")
            continue
        for metric, higher_is_better in _COMPARED.items():
            base = float(base_slos[name][metric])
            cand = float(cand_slos[name][metric])
            if max(abs(base), abs(cand)) < 1e-12:
                continue
            if abs(base) < 1e-12:
                change = 1.0
            else:
                change = (cand - base) / abs(base)
            if higher_is_better:
                regression = change <= -threshold
            else:
                regression = change >= threshold
            comparison.findings.append(Finding(
                figure="slo", variant=name, metric=metric,
                baseline=base, candidate=cand, change=change,
                regression=regression,
            ))
    return comparison
