"""Cross-process telemetry harvest: capture in workers, merge in parents.

``repro.par`` workers start from :func:`repro.par.reset_worker_state`,
which installs the null :class:`~repro.obs.hooks.Instrumentation` — so
before this module existed, a ``--workers N`` run silently discarded
every metric, span, ring event, and provenance edge its shards produced.
The harvest plane closes that hole the way production telemetry
pipelines do (Chrome ``trace_event`` aggregation, Prometheus
federation): each shard runs under a **fresh child instrumentation**,
its state is captured at shard end into a picklable
:class:`TelemetrySnapshot`, the snapshot rides back to the parent
alongside the shard's payload, and the parent merges snapshots into its
own armed instrumentation **strictly in shard order**:

- counters sum; gauges keep the last shard's reading but remember the
  true peak across shards; histograms add bucket-wise (same bounds
  required) so quantiles come from the union of observations;
- spans and ring events land on per-shard tracks (``shard0/main``,
  ``vol03/fleet`` ...) so Chrome-trace rows stay separated per worker,
  with an optional virtual-time base to reconcile shard-local clocks;
- ring drops stay counted: the worker's ``obs.events_dropped`` counter
  merges like any counter, and the recorder-level ``dropped_spans`` /
  ``dropped_events`` tallies carry over into the parent's recorder (on
  top of any wraps the merge itself causes in the parent's ring);
- provenance edges (the ``prov.*`` ring events) are re-based: worker
  pids are shifted past everything the parent has minted so far, so a
  merged ring still parses into one forest via
  :func:`repro.obs.provenance.build_forest`.

The crucial determinism property: the **serial** path of
:class:`repro.par.ParallelPlan` performs the *same* child-capture-merge
dance per shard, so an armed ``--workers N`` run renders byte-identical
metrics tables, Prometheus text, and Chrome traces to the serial run —
guarded by ``tests/test_obs_determinism.py`` and the ``obs-par-smoke``
CI job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .hooks import Instrumentation
from .metrics import Gauge, Histogram

#: counter incremented on the parent each time a shard snapshot merges
#: (same count serial vs parallel: the serial path harvests too)
SNAPSHOTS_MERGED = "obs.harvest.snapshots"

#: ring-event name prefix whose ``pid`` attrs are provenance ids and get
#: re-based on merge (see repro.obs.provenance)
_PROV_PREFIX = "prov."


@dataclass(frozen=True)
class HarvestSpec:
    """Picklable recipe for the child instrumentation a shard runs under.

    Mirrors the parent's ring capacities and provenance arming so the
    worker-side facade behaves exactly like the parent's would have.
    """

    max_spans: int
    max_events: int
    provenance: bool

    @classmethod
    def from_obs(cls, obs: Instrumentation) -> "HarvestSpec":
        return cls(
            max_spans=obs.spans.max_spans,
            max_events=obs.spans.events.maxlen or 0,
            provenance=obs.provenance is not None,
        )

    def child(self) -> Instrumentation:
        return Instrumentation(
            max_spans=self.max_spans,
            max_events=self.max_events,
            provenance=self.provenance,
        )


def child_of(obs: Instrumentation) -> Instrumentation:
    """A fresh armed instrumentation mirroring ``obs``'s configuration."""
    return HarvestSpec.from_obs(obs).child()


@dataclass
class TelemetrySnapshot:
    """Plain-data, picklable capture of one instrumentation's state.

    Metrics are carried in raw form (bucket counts, not percentile
    renderings) so the parent merge reproduces exactly what serial
    accumulation would have: percentiles re-derive from merged buckets.
    """

    #: (name, value) in registry insertion order
    counters: List[Tuple[str, float]] = field(default_factory=list)
    #: (name, value, peak)
    gauges: List[Tuple[str, float, float]] = field(default_factory=list)
    #: (name, bounds, bucket_counts, count, total, max_value)
    histograms: List[
        Tuple[str, Tuple[float, ...], Tuple[int, ...], int, float, float]
    ] = field(default_factory=list)
    #: finished spans: (name, start, end, track, attrs)
    spans: List[Tuple[str, float, float, str, Dict[str, object]]] = (
        field(default_factory=list)
    )
    #: ring segment: (name, time, track, attrs)
    events: List[Tuple[str, float, str, Dict[str, object]]] = (
        field(default_factory=list)
    )
    dropped_spans: int = 0
    dropped_events: int = 0
    #: provenance ids minted shard-side (0 when provenance is disarmed)
    provenance_minted: int = 0

    def empty(self) -> bool:
        return not (
            self.counters or self.gauges or self.histograms
            or self.spans or self.events
            or self.dropped_spans or self.dropped_events
        )

    # -- capture -------------------------------------------------------

    @classmethod
    def capture(
        cls,
        obs: Instrumentation,
        baseline: Optional[Dict[str, object]] = None,
    ) -> "TelemetrySnapshot":
        """Snapshot ``obs`` — optionally as a delta over ``baseline``
        (a ``registry.snapshot()`` dict taken before the shard ran).

        Only *finished* spans are carried: a shard that leaves spans
        open at capture time loses them, same as the exporters would.
        """
        snapshot = cls()
        baseline = baseline or {}
        for metric in obs.registry.metrics():
            earlier = baseline.get(metric.name)
            if earlier is not None:
                metric = metric.delta(earlier)
            if isinstance(metric, Gauge):
                snapshot.gauges.append((metric.name, metric.value, metric.peak))
            elif isinstance(metric, Histogram):
                snapshot.histograms.append((
                    metric.name, tuple(metric.bounds), tuple(metric.counts),
                    metric.count, metric.total, metric.max_value,
                ))
            else:
                snapshot.counters.append((metric.name, metric.value))
        for span in obs.spans.finished_spans():
            snapshot.spans.append(
                (span.name, span.start, span.end, span.track, dict(span.attrs))
            )
        for event in obs.spans.events:
            snapshot.events.append(
                (event.name, event.time, event.track, dict(event.attrs))
            )
        snapshot.dropped_spans = obs.spans.dropped_spans
        snapshot.dropped_events = obs.spans.dropped_events
        if obs.provenance is not None:
            snapshot.provenance_minted = obs.provenance.minted
        return snapshot

    # -- merge ---------------------------------------------------------

    def merge_into(
        self,
        obs: Instrumentation,
        track_prefix: str = "",
        time_base: float = 0.0,
    ) -> None:
        """Fold this snapshot into ``obs`` (the parent's armed facade).

        ``track_prefix`` namespaces the shard's span/event tracks so each
        shard renders as its own Chrome-trace rows; ``time_base`` shifts
        shard-local virtual time onto the parent's timeline (shards that
        share the parent's t=0 origin — every current call site — pass
        0.0).  Counter merges include the shard's ``obs.events_dropped``,
        so drops stay counted end to end.
        """
        if not obs.enabled:
            return
        registry = obs.registry
        for name, value in self.counters:
            registry.counter(name).inc(value)
        for name, value, peak in self.gauges:
            gauge = registry.gauge(name)
            gauge.set(value)
            if peak > gauge.peak:
                gauge.peak = peak
        for name, bounds, counts, count, total, max_value in self.histograms:
            hist = registry.histogram(name, bounds)
            if hist.bounds != tuple(bounds):
                raise ValueError(
                    f"histogram {name!r}: shard bounds {bounds} do not match "
                    f"parent bounds {hist.bounds}"
                )
            for i, bucket in enumerate(counts):
                hist.counts[i] += bucket
            hist.count += count
            hist.total += total
            if max_value > hist.max_value:
                hist.max_value = max_value
        pid_base = 0
        if obs.provenance is not None and self.provenance_minted:
            pid_base = obs.provenance.minted
            obs.provenance.minted += self.provenance_minted
        recorder = obs.spans
        for name, start, end, track, attrs in self.spans:
            recorder.adopt(
                name, start + time_base, end + time_base,
                track=track_prefix + track, attrs=attrs,
            )
        for name, time, track, attrs in self.events:
            if pid_base and name.startswith(_PROV_PREFIX) and attrs.get("pid"):
                attrs = dict(attrs)
                attrs["pid"] = attrs["pid"] + pid_base
            recorder.event(
                name, time + time_base, track=track_prefix + track, **attrs
            )
        recorder.dropped_spans += self.dropped_spans
        recorder.dropped_events += self.dropped_events
        registry.counter(SNAPSHOTS_MERGED).inc()


def capture(
    obs: Instrumentation, baseline: Optional[Dict[str, object]] = None
) -> TelemetrySnapshot:
    """Module-level alias for :meth:`TelemetrySnapshot.capture`."""
    return TelemetrySnapshot.capture(obs, baseline)


def shard_track_prefix(index: int) -> str:
    """The reserved track namespace for shard ``index`` of a plan."""
    return f"shard{index}/"
