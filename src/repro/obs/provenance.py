"""Causal I/O provenance: per-syscall lineage across fs → block → device.

The aggregate metrics (``block.split_fanout``, the ``attrib.*_s``
partition) prove the paper's mechanism *on average*; this module proves it
*per I/O*, the way TraceTracker reconstructs request lineage across host
and device layers.  When an :class:`~repro.obs.hooks.Instrumentation` is
built with ``provenance=True``, the VFS layer mints one **provenance id**
(*pid*) per layer-crossing syscall and threads it — through
:func:`repro.block.splitter.split_ranges` into every
:class:`~repro.block.request.IoCommand` — down to the device models, and
each layer appends a causal edge to the shared obs event ring:

==============  ======================================================
event           meaning (one ring entry each)
==============  ======================================================
``prov.syscall``  the root: op, app, path, entry and finish times, and
                  how many block requests the call generated
``prov.submit``   one block-layer batch: command count plus the shared
                  kernel-CPU queue wait and build window
``prov.cmd``      one device command completion: issue / pickup /
                  finish times, parallel units used, discontiguity
                  penalty — the queue-wait vs. service split the
                  attribution counters measure in aggregate
==============  ======================================================

:func:`build_forest` reconstructs the per-syscall command trees from the
ring, and :mod:`repro.obs.critical_path` turns a forest into the critical
path of a whole run, a collapsed-stack flamegraph, and Chrome flow
events.

Because edges live in the bounded event ring, very long armed runs can
wrap it; the ``obs.events_dropped`` counter (and
``SpanRecorder.dropped_events``) reports exactly how many edges were
lost — size the ring via ``Instrumentation(max_events=...)`` when
tracing big runs.

With obs disabled nothing here runs at all: no ids are minted, commands
carry ``pid=0``, and the hot-path boolean sentinels stay untouched.
Recording reads the virtual timeline, it never advances it — armed runs
are bit-identical to disabled runs (guarded by
``test_obs_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..stats.tables import format_table
from .spans import SpanRecorder

#: ring-event names the recorder emits / the forest parser consumes
SYSCALL_EVENT = "prov.syscall"
SUBMIT_EVENT = "prov.submit"
COMMAND_EVENT = "prov.cmd"


class ProvenanceRecorder:
    """Mints provenance ids and writes causal edges into the event ring.

    One instance lives on an armed :class:`Instrumentation`
    (``obs.provenance``); every layer that captured that facade at
    construction resolved a ``_tracing`` sentinel and calls in only when
    armed.  ``suspend()``/``resume()`` gate minting so setup phases
    (aging, database load) don't flood the ring before the measured
    window starts.
    """

    def __init__(self, spans: SpanRecorder) -> None:
        self._spans = spans
        self.minted = 0
        self.active = True

    # -- lifecycle -----------------------------------------------------

    def suspend(self) -> None:
        """Stop minting (in-flight pids still record their edges)."""
        self.active = False

    def resume(self) -> None:
        self.active = True

    # -- edge recording (called by the layers) -------------------------

    def mint(self) -> int:
        """A fresh provenance id, or 0 while suspended (0 = untracked)."""
        if not self.active:
            return 0
        self.minted += 1
        return self.minted

    def syscall(
        self,
        pid: int,
        op: str,
        *,
        app: str,
        path: str,
        ino: int,
        offset: int,
        size: int,
        start: float,
        end: float,
        requests: int,
    ) -> None:
        """Root edge: one syscall's identity and wall-clock window."""
        self._spans.event(
            SYSCALL_EVENT, end, track="prov.fs",
            pid=pid, op=op, app=app, path=path, ino=ino,
            offset=offset, size=size, start=start, requests=requests,
        )

    def submit(
        self, pid: int, commands: int, time: float,
        cpu_start: float, cpu_done: float,
    ) -> None:
        """Block-layer edge: one batch through the shared kernel CPU."""
        self._spans.event(
            SUBMIT_EVENT, time, track="prov.block",
            pid=pid, commands=commands, cpu_start=cpu_start,
            cpu_done=cpu_done,
        )

    def command(
        self,
        pid: int,
        device: str,
        unit: str,
        op: str,
        offset: int,
        length: int,
        issue: float,
        begin: float,
        end: float,
        units: int,
        penalty: float,
    ) -> None:
        """Device edge: one command's queue-wait/service window."""
        self._spans.event(
            COMMAND_EVENT, end, track="prov.device",
            pid=pid, device=device, unit=unit, op=op, offset=offset,
            length=length, issue=issue, begin=begin, units=units,
            penalty=penalty,
        )


# ----------------------------------------------------------------------
# reconstruction: ring events -> per-syscall command trees
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CommandNode:
    """One device command's provenance record."""

    pid: int
    device: str
    unit: str
    op: str
    offset: int
    length: int
    issue: float    # batch handed to the device
    begin: float    # controller pickup
    end: float      # media/link drain
    units: int      # parallel internal units the command used
    penalty: float  # discontiguity penalty inside the service window

    @property
    def queue_wait(self) -> float:
        return max(0.0, self.begin - self.issue)

    @property
    def service(self) -> float:
        return max(0.0, self.end - self.begin)


@dataclass(frozen=True)
class SubmitNode:
    """One block-layer batch's provenance record."""

    pid: int
    commands: int
    time: float       # syscall handed the batch to the block layer
    cpu_start: float  # shared kernel-CPU timeline picked it up
    cpu_done: float   # every request built and queued

    @property
    def queue_wait(self) -> float:
        return max(0.0, self.cpu_start - self.time)

    @property
    def kernel_cpu(self) -> float:
        return max(0.0, self.cpu_done - self.cpu_start)


@dataclass
class SyscallTree:
    """One syscall's reconstructed lineage: root + batches + commands."""

    pid: int
    op: str = "?"
    app: str = "?"
    path: str = "?"
    ino: int = 0
    offset: int = 0
    size: int = 0
    start: float = 0.0
    end: float = 0.0
    requests: int = 0
    complete: bool = False  # True once the prov.syscall root was seen
    submits: List[SubmitNode] = field(default_factory=list)
    commands: List[CommandNode] = field(default_factory=list)

    @property
    def latency(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def fanout(self) -> int:
        """Commands this syscall split into (the paper's request count)."""
        return len(self.commands) if self.commands else self.requests

    @property
    def kernel_queue(self) -> float:
        return sum(s.queue_wait for s in self.submits)

    @property
    def kernel_cpu(self) -> float:
        return sum(s.kernel_cpu for s in self.submits)

    @property
    def tail(self) -> Optional[CommandNode]:
        """The critical command: the last one to drain."""
        return max(self.commands, key=lambda c: c.end) if self.commands else None

    @property
    def device_queue(self) -> float:
        """Queue wait of the critical (tail) command."""
        tail = self.tail
        return tail.queue_wait if tail is not None else 0.0

    @property
    def device_service(self) -> float:
        """Service window of the critical (tail) command."""
        tail = self.tail
        return tail.service if tail is not None else 0.0

    def device_windows(self) -> List[Tuple[float, float]]:
        """Merged [begin, end) wall-clock windows covered by commands."""
        if not self.commands:
            return []
        windows = sorted((c.begin, c.end) for c in self.commands)
        merged = [list(windows[0])]
        for begin, end in windows[1:]:
            if begin <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([begin, end])
        return [(b, e) for b, e in merged]

    def describe_tail(self) -> str:
        tail = self.tail
        if tail is None:
            return "(no device commands)"
        return (f"{tail.device}.{tail.op}@{tail.offset}+{tail.length}"
                f" ({tail.units} {tail.unit}{'s' if tail.units != 1 else ''})")


@dataclass
class ProvenanceForest:
    """Every reconstructed syscall tree from one ring's worth of edges."""

    trees: Dict[int, SyscallTree] = field(default_factory=dict)
    #: edges whose root prov.syscall record was lost (ring wrap) or
    #: whose syscall never finished
    orphans: int = 0
    #: ring drops reported by the recorder at parse time
    events_dropped: int = 0

    def complete_trees(self) -> List[SyscallTree]:
        return [t for t in self.trees.values() if t.complete]

    def layer_crossing(self) -> List[SyscallTree]:
        """Complete trees that actually reached the device layer."""
        return [t for t in self.complete_trees() if t.commands]

    def slowest(self, count: int = 10) -> List[SyscallTree]:
        trees = self.complete_trees()
        trees.sort(key=lambda t: (-t.latency, t.pid))
        return trees[:count]

    def table(self, count: int = 10) -> str:
        """Top-N slowest syscalls with their full fan-out breakdown."""
        rows: List[List[object]] = []
        for tree in self.slowest(count):
            rows.append([
                tree.pid, tree.op, tree.app, tree.path,
                tree.latency, tree.fanout,
                tree.kernel_queue + tree.kernel_cpu,
                tree.device_queue, tree.device_service,
                tree.describe_tail(),
            ])
        return format_table(
            ["pid", "op", "app", "path", "latency s", "cmds",
             "kernel s", "dev queue s", "dev service s", "tail command"],
            rows,
        )

    def summary(self) -> Dict[str, object]:
        complete = self.complete_trees()
        crossing = self.layer_crossing()
        return {
            "syscalls": len(complete),
            "layer_crossing": len(crossing),
            "commands": sum(len(t.commands) for t in complete),
            "orphan_edges": self.orphans,
            "events_dropped": self.events_dropped,
            "max_fanout": max((t.fanout for t in complete), default=0),
        }


def build_forest(recorder: SpanRecorder) -> ProvenanceForest:
    """Reconstruct syscall→request→command trees from the event ring.

    Tolerant of ring wrap: command/submit edges whose root record was
    evicted count as ``orphans`` and are excluded from the tables (their
    timing would be incomplete).
    """
    forest = ProvenanceForest(events_dropped=recorder.dropped_events)
    trees = forest.trees
    for event in recorder.events:
        name = event.name
        if name == SYSCALL_EVENT:
            attrs = event.attrs
            pid = attrs["pid"]
            tree = trees.get(pid)
            if tree is None:
                tree = trees[pid] = SyscallTree(pid=pid)
            tree.op = attrs["op"]
            tree.app = attrs["app"]
            tree.path = attrs["path"]
            tree.ino = attrs["ino"]
            tree.offset = attrs["offset"]
            tree.size = attrs["size"]
            tree.start = attrs["start"]
            tree.end = event.time
            tree.requests = attrs["requests"]
            tree.complete = True
        elif name == SUBMIT_EVENT:
            attrs = event.attrs
            pid = attrs["pid"]
            tree = trees.get(pid)
            if tree is None:
                tree = trees[pid] = SyscallTree(pid=pid)
            tree.submits.append(SubmitNode(
                pid=pid, commands=attrs["commands"], time=event.time,
                cpu_start=attrs["cpu_start"], cpu_done=attrs["cpu_done"],
            ))
        elif name == COMMAND_EVENT:
            attrs = event.attrs
            pid = attrs["pid"]
            tree = trees.get(pid)
            if tree is None:
                tree = trees[pid] = SyscallTree(pid=pid)
            tree.commands.append(CommandNode(
                pid=pid, device=attrs["device"], unit=attrs["unit"],
                op=attrs["op"], offset=attrs["offset"],
                length=attrs["length"], issue=attrs["issue"],
                begin=attrs["begin"], end=event.time,
                units=attrs["units"], penalty=attrs["penalty"],
            ))
    forest.orphans = sum(
        len(t.submits) + len(t.commands)
        for t in trees.values() if not t.complete
    )
    return forest
