"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

This is the numeric half of the observability plane (:mod:`repro.obs`).
Everything here measures *virtual* quantities — latencies in simulated
seconds, sizes in bytes, fan-outs in commands — and is cheap enough to
stay on during experiments: observing a value is a ``bisect`` into a
fixed bucket table plus a few float adds.

All three metric kinds support ``snapshot()``/``delta()`` the same way
:class:`~repro.block.tracer.TrafficCounter` does, so experiments can
window a metric around a phase ("split fan-out during the *before*
window vs the *after* window") without resetting the registry.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def exponential_bounds(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """Geometric bucket upper bounds: ``start * factor**i`` for i < count."""
    bounds: List[float] = []
    value = start
    for _ in range(count):
        bounds.append(value)
        value *= factor
    return tuple(bounds)


#: default latency buckets: 100ns .. ~100s, x2 per bucket (31 buckets)
LATENCY_BOUNDS = exponential_bounds(1e-7, 2.0, 31)
#: default size/count buckets: 1 .. ~1G, x4 per bucket (16 buckets)
COUNT_BOUNDS = exponential_bounds(1.0, 4.0, 16)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> "Counter":
        return Counter(self.name, self.value)

    def delta(self, earlier: "Counter") -> "Counter":
        return Counter(self.name, self.value - earlier.value)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A last-value-wins measurement that also remembers its peak."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str, value: float = 0.0, peak: float = 0.0) -> None:
        self.name = name
        self.value = value
        self.peak = peak

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def snapshot(self) -> "Gauge":
        return Gauge(self.name, self.value, self.peak)

    def delta(self, earlier: "Gauge") -> "Gauge":
        # gauges are not cumulative; a delta keeps the later reading
        return Gauge(self.name, self.value, self.peak)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "gauge", "value": self.value, "peak": self.peak}


class Histogram:
    """Fixed-bucket histogram with cheap observe and quantile estimates.

    ``bounds`` are inclusive upper bounds per bucket; one overflow bucket
    catches everything beyond the last bound.  Quantiles interpolate
    linearly inside the winning bucket, which is plenty for p50/p95/p99
    over geometric buckets.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "max_value")

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (q clamped into [0, 1]).

        Edge cases are pinned, always finite: an empty histogram reports
        0.0 for every q; ``q <= 0`` reports the lower edge of the first
        occupied bucket; ``q >= 1`` reports the exact observed maximum.
        When every observation landed in the overflow bucket (beyond the
        last bound), interior quantiles interpolate between the last
        bound and the observed maximum — never +Inf.
        """
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            for i, bucket_count in enumerate(self.counts):
                if bucket_count:
                    low = self.bounds[i - 1] if i > 0 else 0.0
                    return min(low, self.max_value)
            return 0.0
        if q >= 1.0:
            return self.max_value
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                low = self.bounds[i - 1] if i > 0 else 0.0
                high = self.bounds[i] if i < len(self.bounds) else self.max_value
                if high < low:  # overflow bucket when max < last bound
                    high = low
                fraction = (rank - seen) / bucket_count
                return min(low + (high - low) * fraction, self.max_value)
            seen += bucket_count
        return self.max_value

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "mean": self.mean,
            "max": self.max_value,
        }

    def snapshot(self) -> "Histogram":
        copy = Histogram(self.name, self.bounds)
        copy.counts = list(self.counts)
        copy.count = self.count
        copy.total = self.total
        copy.max_value = self.max_value
        return copy

    def delta(self, earlier: "Histogram") -> "Histogram":
        copy = Histogram(self.name, self.bounds)
        copy.counts = [a - b for a, b in zip(self.counts, earlier.counts)]
        copy.count = self.count - earlier.count
        copy.total = self.total - earlier.total
        copy.max_value = self.max_value  # peak is not subtractable
        return copy

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.counts),
            **self.percentiles(),
        }


class MetricsRegistry:
    """Named metrics, get-or-create, with whole-registry snapshots."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access (get-or-create) ---------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else LATENCY_BOUNDS
            )
        return metric

    # -- views ---------------------------------------------------------

    def metrics(self) -> Iterable[object]:
        """Every metric, insertion-ordered within each kind.

        Deliberately NOT sorted: windowed float reductions (the latency
        attribution) accumulate in this order, and the bench-guard
        baseline pins their last-ulp values.  Renderings that need
        byte-stable output (tables, JSON, Prometheus text) sort by name
        themselves.
        """
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    def histograms(self) -> List[Histogram]:
        return list(self._histograms.values())

    def snapshot(self) -> Dict[str, object]:
        """Copy of every metric, keyed by name (delta-able)."""
        return {metric.name: metric.snapshot() for metric in self.metrics()}

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready view of the whole registry."""
        return {metric.name: metric.to_dict() for metric in sorted(
            self.metrics(), key=lambda m: m.name
        )}

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
