"""Windowed telemetry time-series over the virtual clock.

The metrics registry answers *totals* ("how many syscalls, ever?"); the
SLO engine needs *windows* ("what fraction of this tick's reads were
slow?").  This module rolls raw telemetry points into fixed-width windows
keyed to virtual time, so rates, deltas, and percentiles are well-defined
per window and two runs producing the same points always produce the
same rollups — the byte-reproducibility the SLO documents inherit.

Retention is bounded the same way the event ring is: a series keeps at
most ``max_windows`` windows (oldest evicted, counted in
``dropped_windows``) and at most ``max_values`` raw values per window for
percentile queries (extra values still update count/sum/min/max, the
tail is counted in ``dropped_values``).  Nothing is ever lost silently.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

#: default retention: windows per series / raw values per window
MAX_WINDOWS = 1024
MAX_VALUES = 4096


def nearest_rank(ordered: List[float], q: float) -> float:
    """Deterministic nearest-rank percentile over a *sorted* list."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(min(max(q, 0.0), 1.0) * len(ordered)))
    return ordered[rank - 1]


class WindowAgg:
    """One window's rollup: count/sum/min/max/last plus retained values."""

    __slots__ = ("index", "count", "total", "min", "max", "last",
                 "values", "dropped_values")

    def __init__(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = 0.0
        self.values: List[float] = []
        self.dropped_values = 0

    def add(self, value: float, max_values: int) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value
        if len(self.values) < max_values:
            self.values.append(value)
        else:
            self.dropped_values += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return nearest_rank(sorted(self.values), q)

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "last": self.last,
            "dropped_values": self.dropped_values,
        }


class WindowedSeries:
    """Fixed-width windows of one telemetry stream, bounded retention."""

    def __init__(
        self,
        name: str,
        width: float,
        origin: float = 0.0,
        max_windows: int = MAX_WINDOWS,
        max_values: int = MAX_VALUES,
    ) -> None:
        if width <= 0:
            raise ValueError("window width must be positive")
        self.name = name
        self.width = width
        self.origin = origin
        self.max_windows = max_windows
        self.max_values = max_values
        self._windows: Dict[int, WindowAgg] = {}
        #: windows evicted by the retention cap (oldest-first)
        self.dropped_windows = 0

    # -- ingest --------------------------------------------------------

    def index_of(self, now: float) -> int:
        """The window index holding virtual time ``now`` (clamped >= 0)."""
        return max(0, int(math.floor((now - self.origin) / self.width)))

    def window_end(self, index: int) -> float:
        """Virtual time at which window ``index`` closes."""
        return self.origin + (index + 1) * self.width

    def observe(self, now: float, value: float) -> None:
        self.observe_at(self.index_of(now), value)

    def observe_at(self, index: int, value: float) -> None:
        agg = self._windows.get(index)
        if agg is None:
            agg = self._windows[index] = WindowAgg(index)
            while len(self._windows) > self.max_windows:
                del self._windows[min(self._windows)]
                self.dropped_windows += 1
        agg.add(value, self.max_values)

    # -- queries -------------------------------------------------------

    def indexes(self) -> List[int]:
        return sorted(self._windows)

    def window(self, index: int) -> Optional[WindowAgg]:
        return self._windows.get(index)

    def deltas(self) -> List[Tuple[int, float]]:
        """Per-window sums — the delta view of a counter-like stream."""
        return [(i, self._windows[i].total) for i in self.indexes()]

    def rate(self) -> List[Tuple[int, float]]:
        """Per-window sum divided by window width (events or units /s)."""
        return [(i, self._windows[i].total / self.width) for i in self.indexes()]

    def percentile(self, index: int, q: float) -> float:
        """Nearest-rank percentile over window ``index``'s retained values."""
        agg = self._windows.get(index)
        return agg.percentile(q) if agg is not None else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "width_s": self.width,
            "dropped_windows": self.dropped_windows,
            "windows": [self._windows[i].to_dict() for i in self.indexes()],
        }


class TimeSeriesStore:
    """Named windowed series sharing one window geometry (get-or-create)."""

    def __init__(
        self,
        width: float,
        origin: float = 0.0,
        max_windows: int = MAX_WINDOWS,
        max_values: int = MAX_VALUES,
    ) -> None:
        if width <= 0:
            raise ValueError("window width must be positive")
        self.width = width
        self.origin = origin
        self.max_windows = max_windows
        self.max_values = max_values
        self._series: Dict[str, WindowedSeries] = {}

    def series(self, name: str) -> WindowedSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = WindowedSeries(
                name, self.width, self.origin,
                max_windows=self.max_windows, max_values=self.max_values,
            )
        return series

    def observe(self, name: str, now: float, value: float) -> None:
        self.series(name).observe(now, value)

    def observe_at(self, name: str, index: int, value: float) -> None:
        self.series(name).observe_at(index, value)

    def names(self) -> List[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def ingest_registry(
        self,
        registry,
        now: float,
        last_snapshot: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Window one reading of a metrics registry; returns a snapshot.

        Counters record their delta since ``last_snapshot`` (the whole
        value on the first call), gauges record their current reading,
        histograms record their count and sum deltas as ``<name>.count``
        / ``<name>.sum``.  Call periodically with the returned snapshot
        to turn cumulative registry state into per-window series.
        """
        last = last_snapshot or {}
        for metric in registry.metrics():
            entry = metric.to_dict()
            kind = entry["kind"]
            earlier = last.get(metric.name)
            if kind == "counter":
                value = entry["value"]
                if earlier is not None:
                    value -= earlier.value
                self.observe(metric.name, now, value)
            elif kind == "gauge":
                self.observe(metric.name, now, entry["value"])
            else:
                count, total = entry["count"], entry["sum"]
                if earlier is not None:
                    count -= earlier.count
                    total -= earlier.total
                self.observe(f"{metric.name}.count", now, count)
                self.observe(f"{metric.name}.sum", now, total)
        return registry.snapshot()

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.obs.timeseries/v1",
            "width_s": self.width,
            "series": {name: self._series[name].to_dict() for name in self.names()},
        }
