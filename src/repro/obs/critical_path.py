"""Critical-path extraction and profile exports over a provenance forest.

Given the per-syscall trees :func:`repro.obs.provenance.build_forest`
reconstructs, this module answers "where did the run's wall-clock go?"
three ways:

- :func:`critical_path` — sweep the run's timeline and attribute every
  instant to the syscall on the path (or to host/idle gaps between
  syscalls, labelled with the enclosing phase span).  The segment
  durations sum to the run's wall-clock *exactly* by construction;
  :meth:`CriticalPath.check` enforces the same sum-to-total invariant
  the latency attribution uses, so a failing check means the sweep (not
  the simulation) regressed.
- :func:`flamegraph` — collapsed-stack lines
  (``frame;frame;frame value``), the format ``flamegraph.pl`` and
  speedscope consume.  Stacks are
  ``run;<phase>;<op>:<app>;<component>``; values are summed virtual
  microseconds, so splitting shows up as wide ``kernel`` and
  ``<device>.queue`` frames that collapse after defragmentation.
- :func:`flow_events` — Chrome ``trace_event`` slices for every traced
  syscall and device command plus ``s``/``f`` flow arrows linking each
  syscall to its critical (tail) command, so Perfetto draws the causal
  chain across tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..stats.tables import format_table
from .provenance import ProvenanceForest, SyscallTree
from .spans import Span, SpanRecorder

#: tid namespace for provenance tracks in exported Chrome traces (clear
#: of the per-track ids chrome_trace assigns from 1)
FLOW_TID_BASE = 1000


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Segment:
    """One stretch of the run's timeline attributed to a single cause."""

    kind: str          # "syscall" | "host"
    label: str
    phase: str
    start: float
    end: float
    pid: int = 0
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The run's wall-clock, decomposed into path segments."""

    run_start: float
    run_end: float
    segments: List[Segment] = field(default_factory=list)

    @property
    def wall_clock(self) -> float:
        return max(0.0, self.run_end - self.run_start)

    @property
    def total(self) -> float:
        return sum(segment.duration for segment in self.segments)

    @property
    def residual(self) -> float:
        return self.wall_clock - self.total

    def check(self, tolerance: float = 0.01) -> bool:
        """Segments cover the wall-clock within ``tolerance`` (the same
        sum-to-total contract as the latency attribution)."""
        if self.wall_clock <= 0.0:
            return self.total <= 1e-12
        return abs(self.residual) <= tolerance * self.wall_clock

    def by_phase(self) -> Dict[str, float]:
        """Wall-clock per phase label, in first-seen order."""
        shares: Dict[str, float] = {}
        for segment in self.segments:
            shares[segment.phase] = shares.get(segment.phase, 0.0) + segment.duration
        return shares

    def table(self, limit: int = 15) -> str:
        """Longest path segments plus the sum-to-total footer."""
        ranked = sorted(
            self.segments, key=lambda s: (-s.duration, s.start)
        )[:limit]
        rows: List[List[object]] = [
            [segment.start, segment.duration, segment.kind, segment.phase,
             segment.label, segment.detail]
            for segment in ranked
        ]
        body = format_table(
            ["start s", "duration s", "kind", "phase", "on the path", "detail"],
            rows,
        )
        footer = (
            f"critical path: {len(self.segments)} segments, "
            f"{self.total:.6f} s of {self.wall_clock:.6f} s wall-clock "
            f"(residual {self.residual:+.2e} s, "
            f"check {'OK' if self.check() else 'FAILED'})"
        )
        phases = ", ".join(
            f"{name} {seconds:.4f}s" for name, seconds in self.by_phase().items()
        )
        return f"{body}\n{footer}\nby phase: {phases}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.obs.critical_path/v1",
            "wall_clock_s": self.wall_clock,
            "total_s": self.total,
            "residual_s": self.residual,
            "ok": self.check(),
            "segments": len(self.segments),
            "by_phase_s": self.by_phase(),
        }


def _phase_spans(recorder: Optional[SpanRecorder]) -> List[Span]:
    """Finished spans usable as phase labels (top-level first)."""
    if recorder is None:
        return []
    return sorted(
        recorder.finished_spans(), key=lambda span: (span.depth, span.start)
    )


def _phase_at(spans: List[Span], time: float) -> str:
    """Deepest finished span covering ``time`` (sorted shallow→deep, so
    the last hit wins)."""
    label = "run"
    for span in spans:
        if span.start <= time <= (span.end if span.end is not None else span.start):
            label = span.name
    return label


def critical_path(
    forest: ProvenanceForest,
    recorder: Optional[SpanRecorder] = None,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> CriticalPath:
    """Sweep the run window and attribute every instant to its cause.

    Synchronous syscalls own their [start, end) windows (overlaps from
    co-running actors are clipped — the later-finishing call stays on
    the path); uncovered stretches become ``host`` segments labelled by
    the phase span covering them.  The segment durations therefore sum
    to the wall-clock exactly.
    """
    trees = sorted(
        forest.complete_trees(), key=lambda t: (t.start, t.end, t.pid)
    )
    spans = _phase_spans(recorder)
    bounds: List[float] = []
    for tree in trees:
        bounds.extend((tree.start, tree.end))
    for span in spans:
        bounds.extend((span.start, span.end))
    if not bounds:
        return CriticalPath(0.0, 0.0)
    run_start = start if start is not None else min(bounds)
    run_end = end if end is not None else max(bounds)
    path = CriticalPath(run_start, run_end)
    segments = path.segments
    cursor = run_start

    def host_gap(gap_start: float, gap_end: float) -> None:
        midpoint = (gap_start + gap_end) / 2.0
        segments.append(Segment(
            kind="host", label="(host cpu / idle)",
            phase=_phase_at(spans, midpoint),
            start=gap_start, end=gap_end,
        ))

    for tree in trees:
        if tree.end <= cursor or tree.start >= run_end:
            continue  # fully shadowed by an earlier call / out of window
        if tree.start > cursor:
            host_gap(cursor, min(tree.start, run_end))
            cursor = min(tree.start, run_end)
        seg_end = min(tree.end, run_end)
        segments.append(Segment(
            kind="syscall",
            label=f"{tree.op} {tree.path}",
            phase=_phase_at(spans, (max(cursor, tree.start) + seg_end) / 2.0),
            start=max(cursor, tree.start),
            end=seg_end,
            pid=tree.pid,
            detail=f"{tree.fanout} cmd(s), tail {tree.describe_tail()}",
        ))
        cursor = seg_end
    if cursor < run_end:
        host_gap(cursor, run_end)
    return path


# ----------------------------------------------------------------------
# flamegraph (collapsed-stack) export
# ----------------------------------------------------------------------


def _tree_frames(tree: SyscallTree, phase: str) -> List[Tuple[str, float]]:
    """(stack, seconds) contributions of one syscall tree."""
    base = f"run;{phase};{tree.op}:{tree.app}"
    frames: List[Tuple[str, float]] = []
    kernel_queue = tree.kernel_queue
    kernel_cpu = tree.kernel_cpu
    if kernel_queue > 0.0:
        frames.append((f"{base};kernel.queue", kernel_queue))
    if kernel_cpu > 0.0:
        frames.append((f"{base};kernel", kernel_cpu))
    device_total = 0.0
    for command in tree.commands:
        if command.queue_wait > 0.0:
            frames.append((f"{base};{command.device}.queue", command.queue_wait))
        service = command.service
        if service > 0.0:
            penalty = min(command.penalty, service)
            if penalty > 0.0:
                frames.append((
                    f"{base};{command.device}.{command.op};penalty", penalty
                ))
            if service - penalty > 0.0:
                frames.append((
                    f"{base};{command.device}.{command.op}", service - penalty
                ))
    for begin, finish in tree.device_windows():
        device_total += finish - begin
    host = tree.latency - kernel_queue - kernel_cpu - device_total
    if host > 0.0:
        frames.append((f"{base};fs", host))
    return frames


def flamegraph(
    forest: ProvenanceForest, recorder: Optional[SpanRecorder] = None
) -> str:
    """Collapsed-stack profile of every traced syscall.

    One line per unique stack, ``frame;frame;... <microseconds>``, ready
    for ``flamegraph.pl`` / speedscope / inferno.  Weights are summed
    virtual time, so parallel device work can legitimately exceed
    wall-clock (it's a profile, not a timeline).
    """
    spans = _phase_spans(recorder)
    weights: Dict[str, float] = {}
    for tree in forest.complete_trees():
        phase = _phase_at(spans, (tree.start + tree.end) / 2.0)
        for stack, seconds in _tree_frames(tree, phase):
            weights[stack] = weights.get(stack, 0.0) + seconds
    lines = []
    for stack in sorted(weights):
        micros = round(weights[stack] * 1e6)
        if micros > 0:
            lines.append(f"{stack} {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_flamegraph(
    path: str, forest: ProvenanceForest, recorder: Optional[SpanRecorder] = None
) -> None:
    with open(path, "w") as fh:
        fh.write(flamegraph(forest, recorder))


# ----------------------------------------------------------------------
# Chrome flow-event export
# ----------------------------------------------------------------------


def flow_events(forest: ProvenanceForest) -> List[Dict[str, object]]:
    """Chrome trace events drawing each syscall→command causal chain.

    Emits per-syscall and per-command complete ("X") slices on dedicated
    provenance tracks plus flow start/finish ("s"/"f") arrows keyed by
    pid, linking every syscall slice to its critical (tail) command.
    Feed the result to ``chrome_trace(..., extra_events=...)``.
    """
    from .export import TRACE_PID  # late: export imports this module's sibling

    events: List[Dict[str, object]] = []
    syscall_tid = FLOW_TID_BASE
    device_tids: Dict[str, int] = {}
    events.append({
        "name": "thread_name", "cat": "prov", "ph": "M", "pid": TRACE_PID,
        "tid": syscall_tid, "args": {"name": "prov.syscalls"},
    })
    for tree in sorted(forest.complete_trees(), key=lambda t: (t.start, t.pid)):
        events.append({
            "name": f"{tree.op} {tree.path}",
            "cat": "prov",
            "ph": "X",
            "ts": tree.start * 1e6,
            "dur": tree.latency * 1e6,
            "pid": TRACE_PID,
            "tid": syscall_tid,
            "args": {
                "pid": tree.pid, "app": tree.app, "requests": tree.requests,
                "fanout": tree.fanout, "bytes": tree.size,
            },
        })
        for command in sorted(tree.commands, key=lambda c: (c.begin, c.offset)):
            tid = device_tids.get(command.device)
            if tid is None:
                tid = device_tids[command.device] = (
                    FLOW_TID_BASE + 1 + len(device_tids)
                )
                events.append({
                    "name": "thread_name", "cat": "prov", "ph": "M",
                    "pid": TRACE_PID, "tid": tid,
                    "args": {"name": f"prov.{command.device}"},
                })
            events.append({
                "name": f"{command.device}.{command.op}",
                "cat": "prov",
                "ph": "X",
                "ts": command.begin * 1e6,
                "dur": command.service * 1e6,
                "pid": TRACE_PID,
                "tid": tid,
                "args": {
                    "pid": tree.pid, "offset": command.offset,
                    "length": command.length, "units": command.units,
                    "unit": command.unit,
                    "queue_wait_us": command.queue_wait * 1e6,
                    "penalty_us": command.penalty * 1e6,
                },
            })
        tail = tree.tail
        if tail is not None:
            events.append({
                "name": "io", "cat": "prov", "ph": "s", "id": tree.pid,
                "ts": tree.start * 1e6, "pid": TRACE_PID, "tid": syscall_tid,
            })
            events.append({
                "name": "io", "cat": "prov", "ph": "f", "bp": "e",
                "id": tree.pid, "ts": max(tail.begin, tree.start) * 1e6,
                "pid": TRACE_PID, "tid": device_tids[tail.device],
            })
    return events
