"""Persistent run ledger: a fingerprinted manifest per document run.

Every document-producing verb (``repro bench/perf/fleet/slo/replay/
faults``) appends one **run manifest** under ``benchmarks/ledger/`` —
the run-over-run history a production telemetry pipeline keeps next to
its live exports.  A manifest records what ran (verb, label, args, seed,
workers), what it produced (the document's schema and fingerprint plus a
small per-verb *headline* — the figures you would put on a dashboard),
and what it cost (wall seconds, host CPU count).

The manifest's own ``fingerprint`` hashes only the **deterministic**
fields — verb, label, seed, workers, args, document schema/fingerprint,
headline — never wall time or host shape, so re-running the same
seed-keyed workload reproduces the manifest fingerprint byte-for-byte
(the CI ``obs-par-smoke`` job asserts exactly that).  Filenames are
sequence-numbered (``000007_perf_ab12cd34ef56.json``) so ``repro runs``
can render the trajectory of a metric across recorded runs in recording
order.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from ..stats.tables import format_table

SCHEMA = "repro.ledger/v1"

#: default ledger directory, relative to the working tree
DEFAULT_DIR = os.path.join("benchmarks", "ledger")


def resolve_dir(directory: Optional[str] = None) -> str:
    """The ledger directory: explicit arg > $REPRO_LEDGER_DIR > default."""
    return directory or os.environ.get("REPRO_LEDGER_DIR") or DEFAULT_DIR

#: manifest fields hashed into the manifest fingerprint (everything a
#: deterministic re-run reproduces; wall_s/host_cpus deliberately out)
FINGERPRINT_FIELDS = (
    "schema", "verb", "label", "seed", "workers", "args",
    "doc_schema", "doc_fingerprint", "headline",
)

#: every field a valid manifest carries
REQUIRED_FIELDS = FINGERPRINT_FIELDS + ("wall_s", "host_cpus", "fingerprint")


def manifest_fingerprint(manifest: Dict[str, object]) -> str:
    """sha256 over the canonical deterministic subset of a manifest."""
    body = {field: manifest.get(field) for field in FINGERPRINT_FIELDS}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# per-verb headline extraction
# ----------------------------------------------------------------------


def _dig(document: Dict[str, object], *path: str, default=None):
    node: object = document
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return default
        node = node[key]
    return node


def _headline_bench(doc: Dict[str, object]) -> Dict[str, object]:
    figures = doc.get("figures", {})
    out: Dict[str, object] = {"figures": len(figures)}
    before = _dig(figures, "obs_trace", "before", "ops_per_sec")
    after = _dig(figures, "obs_trace", "after", "ops_per_sec")
    if before is not None:
        out["obs_trace_ops_before"] = before
    if after is not None:
        out["obs_trace_ops_after"] = after
    return out


def _headline_perf(doc: Dict[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = {"total_wall_s": doc.get("total_wall_s")}
    end_to_end = _dig(doc, "layers", "end_to_end", "wall_s")
    if end_to_end is not None:
        out["end_to_end_wall_s"] = end_to_end
    return out


def _headline_fleet(doc: Dict[str, object]) -> Dict[str, object]:
    return {
        "jobs_completed": _dig(doc, "jobs", "completed"),
        "migrated_bytes": _dig(doc, "migration", "payload_bytes"),
        "fg_read_p99_s": _dig(doc, "foreground", "read_p99_s"),
        "budget_ok": _dig(doc, "migration", "budget_ok"),
    }


def _headline_slo(doc: Dict[str, object]) -> Dict[str, object]:
    slos = doc.get("slos", {})
    out: Dict[str, object] = {"slos": len(slos), "alerts": len(doc.get("alerts", []))}
    if isinstance(slos, dict):
        for name in sorted(slos):
            compliance = _dig(slos, name, "compliance")
            if compliance is not None:
                out[f"{name}_compliance"] = compliance
    return out


def _headline_replay(doc: Dict[str, object]) -> Dict[str, object]:
    return {
        "ops_per_vsec": _dig(doc, "figures", "ops_per_vsec"),
        "read_mbps": _dig(doc, "figures", "read_mbps"),
        "cache_hit_ratio": _dig(doc, "figures", "cache_hit_ratio"),
    }


def _headline_faults(doc: Dict[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = {
        "ok": doc.get("ok"),
        "sweeps": len(doc.get("sweeps") or []),
        "faults_injected": _dig(doc, "campaign", "faults_injected"),
        "data_intact": _dig(doc, "campaign", "data_intact"),
    }
    trials = _dig(doc, "series", "trials")
    if trials is not None:
        out["trials"] = trials
    return out


_HEADLINES = {
    "bench": _headline_bench,
    "perf": _headline_perf,
    "fleet": _headline_fleet,
    "slo": _headline_slo,
    "replay": _headline_replay,
    "faults": _headline_faults,
}


def headline(verb: str, document: Dict[str, object]) -> Dict[str, object]:
    """The small per-verb figure set a manifest carries."""
    extractor = _HEADLINES.get(verb)
    if extractor is None:
        return {}
    return {k: v for k, v in extractor(document).items() if v is not None}


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------


def build_manifest(
    verb: str,
    document: Dict[str, object],
    *,
    label: str = "local",
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    args: Optional[Dict[str, object]] = None,
    wall_s: float = 0.0,
) -> Dict[str, object]:
    manifest: Dict[str, object] = {
        "schema": SCHEMA,
        "verb": verb,
        "label": label,
        "seed": seed,
        "workers": workers,
        "args": dict(args or {}),
        "doc_schema": document.get("schema"),
        # the faults document carries its fingerprint on the campaign
        "doc_fingerprint": document.get("fingerprint")
        or _dig(document, "campaign", "fingerprint"),
        "headline": headline(verb, document),
        "wall_s": round(float(wall_s), 3),
        "host_cpus": os.cpu_count() or 1,
    }
    manifest["fingerprint"] = manifest_fingerprint(manifest)
    return manifest


def record_run(
    verb: str,
    document: Dict[str, object],
    *,
    label: str = "local",
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    args: Optional[Dict[str, object]] = None,
    wall_s: float = 0.0,
    directory: Optional[str] = None,
) -> str:
    """Append one manifest to the ledger; returns the path written."""
    directory = resolve_dir(directory)
    os.makedirs(directory, exist_ok=True)
    manifest = build_manifest(
        verb, document, label=label, seed=seed, workers=workers,
        args=args, wall_s=wall_s,
    )
    seq = len([n for n in os.listdir(directory) if n.endswith(".json")])
    name = f"{seq:06d}_{verb}_{manifest['fingerprint'][:12]}.json"
    path = os.path.join(directory, name)
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# querying
# ----------------------------------------------------------------------


def validate_manifest(manifest: Dict[str, object]) -> None:
    """Raise ``ValueError`` on a malformed or tampered manifest."""
    if manifest.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported ledger schema {manifest.get('schema')!r} "
            f"(want {SCHEMA!r})"
        )
    missing = [f for f in REQUIRED_FIELDS if f not in manifest]
    if missing:
        raise ValueError(f"manifest missing fields: {', '.join(missing)}")
    expected = manifest_fingerprint(manifest)
    if manifest["fingerprint"] != expected:
        raise ValueError(
            f"manifest fingerprint mismatch: recorded "
            f"{manifest['fingerprint']!r}, recomputed {expected!r}"
        )


def list_runs(
    directory: Optional[str] = None, verb: Optional[str] = None
) -> List[Dict[str, object]]:
    """Every recorded manifest in recording (filename) order.

    Each returned dict gains a non-schema ``path`` key for display.
    Malformed files raise — a corrupt ledger should be loud, not
    silently skipped.
    """
    directory = resolve_dir(directory)
    if not os.path.isdir(directory):
        return []
    runs: List[Dict[str, object]] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        with open(path) as fh:
            manifest = json.load(fh)
        validate_manifest(manifest)
        if verb is not None and manifest.get("verb") != verb:
            continue
        manifest["path"] = path
        runs.append(manifest)
    return runs


def runs_table(runs: List[Dict[str, object]]) -> str:
    """One-line-per-run summary table (``repro runs list``)."""
    rows = []
    for run in runs:
        head = run.get("headline", {})
        summary = " ".join(
            f"{key}={_fmt(value)}" for key, value in sorted(head.items())
        )
        rows.append([
            os.path.basename(str(run.get("path", ""))).split("_")[0],
            run["verb"], run["label"],
            run["seed"] if run["seed"] is not None else "-",
            run["workers"] if run["workers"] is not None else "-",
            run["wall_s"], str(run["doc_fingerprint"])[:12], summary,
        ])
    return format_table(
        ["seq", "verb", "label", "seed", "workers", "wall_s",
         "doc_fingerprint", "headline"],
        rows,
    )


def trajectory_table(runs: List[Dict[str, object]]) -> str:
    """Headline figures across runs, one row per run, one column per
    headline key (``repro runs trajectory``)."""
    keys: List[str] = []
    for run in runs:
        for key in sorted(run.get("headline", {})):
            if key not in keys:
                keys.append(key)
    rows = []
    for run in runs:
        head = run.get("headline", {})
        rows.append(
            [os.path.basename(str(run.get("path", ""))).split("_")[0],
             run["verb"], run["label"], run["wall_s"]]
            + [_fmt(head.get(key, "-")) for key in keys]
        )
    return format_table(["seq", "verb", "label", "wall_s"] + keys, rows)


def _fmt(value: object) -> object:
    if isinstance(value, float):
        return f"{value:.6g}"
    return value
