"""Periodic fragmentation sampling over virtual time.

Before/after scalars (`fragments_before`, `fragments_after`) hide *how*
a defragmenter gets there; this sampler turns layout state into curves
over the sim clock, so defrag progress shows up as a falling
extents-per-file line next to the workload's spans in the same Chrome
trace.

The simulator has no global tick, so sampling is activity-driven: the
sampler registers as a device batch listener and takes a sample whenever
the virtual clock crosses the next due time.  Each sample reads

- ``frag.extents_per_file`` — mean extent count over the tracked files,
- ``frag.max_extents``      — worst tracked file,
- ``frag.contiguity``       — mean of 1/extents per file (1.0 = every
  tracked file is a single extent, the defrag target),
- ``frag.free_runs``        — free-space runs (free-space fragmentation),
- ``frag.largest_free_mb``  — largest contiguous free run,

recording each into a :class:`~repro.stats.timeline.Series` and — when
the observability plane is enabled — mirroring the readings into registry
gauges and a ``frag.sample`` ring event.  Memory is bounded: past
``max_samples`` the series are decimated and the interval doubled.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..constants import MIB
from ..stats.timeline import Series
from . import hooks as obs_hooks

#: series names, in display order
SERIES_NAMES = (
    "frag.extents_per_file",
    "frag.max_extents",
    "frag.contiguity",
    "frag.free_runs",
    "frag.largest_free_mb",
)


class FragmentationSampler:
    """Samples layout/fragmentation state of one filesystem over sim time.

    Use around an experiment::

        sampler = FragmentationSampler(fs, interval=0.05, paths=files)
        with sampler:                       # attaches a device listener
            ... run workload / defrag ...
        curves = sampler.series             # name -> Series

    or drive it manually from an actor loop with ``maybe_sample(now)``.
    """

    def __init__(
        self,
        fs,
        interval: float = 0.05,
        paths: Optional[Sequence[str]] = None,
        max_samples: int = 4096,
        track: str = "frag",
    ) -> None:
        if interval <= 0:
            raise ValueError("sampler interval must be positive")
        self.fs = fs
        self.interval = interval
        self.paths: Optional[List[str]] = list(paths) if paths is not None else None
        self.max_samples = max_samples
        self.track = track
        self.series: Dict[str, Series] = {name: Series(name) for name in SERIES_NAMES}
        self.samples_taken = 0
        self.obs = obs_hooks.current()
        self._next_due: Optional[float] = None
        self._attach_depth = 0

    # -- lifecycle -----------------------------------------------------
    #
    # attach/detach are re-entrant: callers with overlapping lifetimes
    # (the fleet controller attaches per defrag job on top of a per-volume
    # attach) each balance their own attach with a detach, and the device
    # listener is registered exactly once for as long as any of them holds
    # the sampler open.  A detach without a matching attach is a no-op.

    @property
    def attached(self) -> bool:
        return self._attach_depth > 0

    def attach(self) -> "FragmentationSampler":
        if self._attach_depth == 0:
            self.fs.device.add_listener(self._on_batch)
        self._attach_depth += 1
        return self

    def detach(self) -> None:
        if self._attach_depth == 0:
            return
        self._attach_depth -= 1
        if self._attach_depth == 0:
            self.fs.device.remove_listener(self._on_batch)

    def __enter__(self) -> "FragmentationSampler":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    def _on_batch(self, commands, start: float, finish: float) -> None:
        self.maybe_sample(finish)

    # -- sampling ------------------------------------------------------

    def _tracked_inodes(self) -> Iterable:
        if self.paths is None:
            return list(self.fs.inodes.values())
        return [self.fs.inode_of(p) for p in self.paths if self.fs.exists(p)]

    def maybe_sample(self, now: float) -> bool:
        """Take a sample if the clock crossed the next due time."""
        if self._next_due is not None and now < self._next_due:
            return False
        self.sample(now)
        return True

    def sample(self, now: float) -> Dict[str, float]:
        """Read the filesystem and record one point on every series."""
        extent_counts = [
            max(1, inode.fragment_count())
            for inode in self._tracked_inodes()
            if inode.size > 0
        ]
        free = self.fs.free_space.stats()
        files = len(extent_counts)
        reading = {
            "frag.extents_per_file": sum(extent_counts) / files if files else 0.0,
            "frag.max_extents": float(max(extent_counts, default=0)),
            "frag.contiguity": (
                sum(1.0 / c for c in extent_counts) / files if files else 1.0
            ),
            "frag.free_runs": float(free.run_count),
            "frag.largest_free_mb": free.largest_run / MIB,
        }
        for name, value in reading.items():
            self.series[name].record(now, value)
        self.samples_taken += 1
        self._next_due = now + self.interval
        if self.obs.enabled:
            for name, value in reading.items():
                self.obs.registry.gauge(name).set(value)
            self.obs.event("frag.sample", now, track=self.track, **reading)
            if self.obs.slo is not None:
                # feed the windowed SLO telemetry (repro.obs.slo)
                for name, value in reading.items():
                    self.obs.slo.observe(name, now, value)
        if len(self.series["frag.contiguity"]) > self.max_samples:
            # bound memory on long runs: halve resolution, double cadence
            for series in self.series.values():
                series.decimate()
            self.interval *= 2.0
        return reading

    # -- views ---------------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {name: series.summary() for name, series in self.series.items()}

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.obs.fragtimeline/v1",
            "interval_s": self.interval,
            "samples": self.samples_taken,
            "series": {name: s.to_dict()["samples"] for name, s in self.series.items()},
        }
