"""repro.obs — the cross-layer observability plane.

One subsystem replaces the ad-hoc per-layer counters with a shared
measurement substrate:

- :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  (p50/p95/p99) in a process-wide :class:`MetricsRegistry`;
- :mod:`repro.obs.spans` — hierarchical spans over virtual time plus a
  bounded event ring buffer;
- :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto
  loadable), metrics JSON, and plain-text tables;
- :mod:`repro.obs.hooks` — the :class:`Instrumentation` facade every
  layer calls, with a null implementation that keeps the hot path at one
  attribute lookup when observability is off (the default);
- :mod:`repro.obs.analysis` — the explanation layer: latency attribution
  (wall-clock per-syscall latency partitioned into fs CPU / kernel queue
  and CPU / split cost / device queue, service, penalty, with a
  sum-to-total invariant) and span-tree summaries;
- :mod:`repro.obs.sampler` — fragmentation timelines: extents-per-file,
  free-space fragmentation, and contiguity sampled over virtual time,
  exported as counter curves in the Chrome trace;
- :mod:`repro.obs.provenance` — causal I/O lineage: per-syscall
  provenance ids threaded fs → block → device, reconstructed into
  syscall→request→command trees;
- :mod:`repro.obs.critical_path` — the critical path of a whole run
  (sum-to-total checked against wall-clock), collapsed-stack flamegraph
  export, and Chrome flow events linking syscalls to their tail
  commands;
- :mod:`repro.obs.timeseries` — windowed rollups of telemetry streams
  keyed to the virtual clock (rate/delta/percentile per window, bounded
  retention with counted drops);
- :mod:`repro.obs.slo` — the judgment layer: declarative SLOs evaluated
  per window into error-budget consumption and fast/slow burn rates,
  with deterministic ``slo.breach``/``slo.burn`` events and a
  fingerprinted ``repro.slo/v1`` document;
- :mod:`repro.obs.dashboard` — the byte-deterministic plain-text fleet
  health dashboard ``repro watch`` renders.
"""

from .hooks import (  # noqa: F401
    Instrumentation,
    NullInstrumentation,
    current,
    disable,
    enable,
    install,
    use,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry  # noqa: F401
from .spans import Span, SpanRecorder  # noqa: F401
from .export import (  # noqa: F401
    chrome_trace,
    metrics_json,
    metrics_table,
    prometheus_text,
    write_chrome_trace,
)
from .analysis import (  # noqa: F401
    Attribution,
    attribute,
    delta_metrics,
    histogram_summary,
    span_summary,
    span_table,
)
from .sampler import FragmentationSampler  # noqa: F401
from .timeseries import TimeSeriesStore, WindowedSeries  # noqa: F401
from .slo import SloPlane, SloSpec  # noqa: F401
from .provenance import (  # noqa: F401
    ProvenanceForest,
    ProvenanceRecorder,
    SyscallTree,
    build_forest,
)
from .critical_path import (  # noqa: F401
    CriticalPath,
    critical_path,
    flamegraph,
    flow_events,
    write_flamegraph,
)
