"""Exporters: Chrome ``trace_event`` JSON, metrics JSON/tables, Prometheus.

The Chrome trace format (loadable in ``chrome://tracing`` or Perfetto's
"Open trace file") is the object form::

    {"traceEvents": [...], "displayTimeUnit": "ms", "metrics": {...}}

Spans become complete ("ph": "X") events, ring-buffer events become
instants ("ph": "i"), and each span track gets a thread-name metadata
record so actors show up as separate rows.  Virtual seconds map to trace
microseconds.  The full metrics registry rides along under the
non-standard top-level ``metrics`` key (Chrome ignores unknown keys).
"""

from __future__ import annotations

import fnmatch
import json
import re
from typing import Dict, List, Optional

from ..stats.tables import format_table
from .metrics import Histogram, MetricsRegistry
from .spans import SpanRecorder

#: the single simulated "process" in exported traces
TRACE_PID = 1


def counter_events(series_by_name: Dict[str, object]) -> List[Dict[str, object]]:
    """Chrome counter ("ph": "C") events from named Series-like curves.

    Each series renders as its own counter row in chrome://tracing /
    Perfetto, so e.g. defrag progress shows as a falling
    ``frag.extents_per_file`` curve alongside the span tracks.
    """
    events: List[Dict[str, object]] = []
    for name, series in series_by_name.items():
        for time, value in zip(series.times, series.values):
            events.append({
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "C",
                "ts": time * 1e6,
                "pid": TRACE_PID,
                "args": {"value": value},
            })
    return events


def chrome_trace(
    recorder: SpanRecorder,
    registry: Optional[MetricsRegistry] = None,
    sampler=None,
    extra_events: Optional[List[Dict[str, object]]] = None,
) -> Dict[str, object]:
    """Build a Chrome trace_event document from recorded spans/events.

    ``sampler`` (anything with ``.series`` and ``.to_dict()``, e.g. a
    :class:`~repro.obs.sampler.FragmentationSampler`) adds counter curves
    to the event stream plus a raw ``fragTimeline`` top-level key.
    ``extra_events`` appends pre-built trace events verbatim — e.g. the
    provenance slices and flow arrows from
    :func:`repro.obs.critical_path.flow_events` (those carry their own
    tids from a reserved namespace, so they never collide with the track
    ids assigned here).
    """
    events: List[Dict[str, object]] = []
    tracks = recorder.tracks() or ["main"]
    tids = {track: tid for tid, track in enumerate(tracks, start=1)}
    for track, tid in tids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": track},
        })
    for span in recorder.finished_spans():
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": TRACE_PID,
            "tid": tids.get(span.track, 0),
            "args": dict(span.attrs),
        })
    for event in recorder.events:
        events.append({
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "ph": "i",
            "ts": event.time * 1e6,
            "s": "t",
            "pid": TRACE_PID,
            "tid": tids.get(event.track, 0),
            "args": dict(event.attrs),
        })
    if sampler is not None:
        events.extend(counter_events(sampler.series))
    if extra_events:
        events.extend(extra_events)
    document: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if recorder.dropped_spans:
        document["droppedSpans"] = recorder.dropped_spans
    if recorder.dropped_events:
        document["droppedEvents"] = recorder.dropped_events
    if registry is not None:
        document["metrics"] = registry.to_dict()
    if sampler is not None:
        document["fragTimeline"] = sampler.to_dict()
    return document


def write_chrome_trace(
    path: str,
    recorder: SpanRecorder,
    registry: Optional[MetricsRegistry] = None,
    sampler=None,
) -> None:
    """Write the trace document to ``path`` (open it in Perfetto)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder, registry, sampler=sampler), fh)


def metrics_json(registry: MetricsRegistry) -> str:
    return json.dumps(registry.to_dict(), indent=2, sort_keys=True)


def metrics_table(registry: MetricsRegistry) -> str:
    """Plain-text dump of every metric, histograms with quantiles."""
    sections: List[str] = []
    counters = [m for m in registry.metrics() if m.to_dict()["kind"] == "counter"]
    gauges = [m for m in registry.metrics() if m.to_dict()["kind"] == "gauge"]
    histograms = registry.histograms()
    if counters:
        rows = [[c.name, c.value] for c in sorted(counters, key=lambda m: m.name)]
        sections.append(format_table(["counter", "value"], rows))
    if gauges:
        rows = [[g.name, g.value, g.peak] for g in sorted(gauges, key=lambda m: m.name)]
        sections.append(format_table(["gauge", "value", "peak"], rows))
    if histograms:
        sections.append(histogram_table(histograms))
    return "\n\n".join(sections)


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: central metric documentation: exact name (or '*' glob pattern) ->
#: the ``# HELP`` line Prometheus exports carry.  One table instead of
#: per-call-site strings, so the same metric renders the same HELP
#: everywhere it is exported.  Every metric the repo emits must resolve
#: here (``tests/test_obs_export.py`` audits a representative armed run).
METRIC_HELP: Dict[str, str] = {
    "attrib.device_penalty_s": "device seek/fragmentation penalty time",
    "attrib.device_queue_s": "time requests queued behind a busy device",
    "attrib.device_service_s": "raw device service time",
    "attrib.fs_cpu_s": "filesystem-layer CPU time",
    "attrib.kernel_cpu_base_s": "block-layer per-request base CPU time",
    "attrib.kernel_cpu_split_s": "block-layer request-splitting CPU time",
    "attrib.kernel_queue_s": "block-layer queueing delay",
    "block.kernel_time_s": "block-layer time per request (CPU + queue)",
    "block.queue_backlog_s": "device backlog seen at block-layer dispatch",
    "block.requests": "block requests submitted",
    "block.split_fanout": "device commands produced per block request",
    "frag.extents_per_file": "mean extent count over tracked files",
    "frag.max_extents": "extent count of the worst tracked file",
    "frag.contiguity": "mean per-file 1/extents (1.0 = fully contiguous)",
    "frag.free_runs": "free-space runs (free-space fragmentation)",
    "frag.largest_free_mb": "largest contiguous free run in MiB",
    "fleet.volumes_above": "volumes above the defrag trigger",
    "fleet.jobs_running": "defrag jobs currently running",
    "fleet.jobs_waiting": "triggered volumes waiting for admission",
    "fleet.jobs_admitted": "defrag jobs admitted over the run",
    "fleet.jobs_completed": "defrag jobs completed over the run",
    "fleet.jobs_failed": "defrag jobs failed over the run",
    "fleet.jobs_deferred_ticks": "volume-ticks spent queued behind the cap",
    "fleet.migrated_bytes": "migration payload bytes moved",
    "fleet.fg_ops": "foreground operations completed",
    "fleet.fg_read_latency_s": "foreground read latency in seconds",
    "slo.breaches": "SLO windows whose bad fraction exceeded the budget",
    "slo.alerts": "multi-window burn-rate alerts fired",
    "par.plans": "parallel plans executed (sharded fan-outs)",
    "par.shards": "work shards executed (serially or in worker processes)",
    "par.shard_timeouts": "shards that exceeded their wall-clock timeout",
    "par.serial_fallbacks": "plans re-executed serially after a timeout",
    "obs.events_dropped": "ring-buffer events dropped (oldest-first wrap)",
    "obs.harvest.snapshots": "worker telemetry snapshots merged into this plane",
    "faults.injected.total": "faults injected across all sites and kinds",
    "recovery.bytes_restored": "bytes restored by journal crash recovery",
    "recovery.entries_replayed": "journal entries replayed during recovery",
    # '*' glob patterns (exact names above win over these)
    "fs.syscall.*": "filesystem syscalls issued, by operation",
    "fs.syscall_latency.*": "per-syscall latency in virtual seconds",
    "device.*.busy_until": "virtual time this device model is busy until",
    "device.*.batch_commands": "commands per dispatched device batch",
    "device.*.command_latency.*": "per-command device latency, by operation",
    "sim.actor_step.*": "virtual time consumed per step of one actor",
    "faults.injected.*": "faults injected at one site, by kind",
    "*.migration_retries": "migration ranges retried by one defrag tool",
    "*.migrations_failed": "migration ranges abandoned by one defrag tool",
    "slo.*.burn_fast": "fast-window burn rate of one SLO",
    "slo.*.burn_slow": "slow-window burn rate of one SLO",
    "slo.*.budget_remaining": "unspent error-budget fraction of one SLO",
    "slo.*.compliance": "good-sample fraction of one SLO",
    "slo.*.breaches": "budget-exceeding windows of one SLO",
    "slo.*.alerts": "burn-rate alerts of one SLO",
}


def metric_help(name: str) -> Optional[str]:
    """The HELP text for a metric: exact match, then ``*`` glob patterns.

    Patterns use :func:`fnmatch.fnmatchcase`, so multi-star shapes like
    ``device.*.command_latency.*`` resolve; the first matching pattern
    in table order wins.
    """
    if name in METRIC_HELP:
        return METRIC_HELP[name]
    for pattern, text in METRIC_HELP.items():
        if "*" in pattern and fnmatch.fnmatchcase(name, pattern):
            return text
    return None


def _prom_name(name: str) -> str:
    """Metric name in Prometheus' charset (dots and dashes become '_')."""
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text-format (0.0.4) rendering of the whole registry.

    Counters and gauges export their value directly (gauges additionally
    export their remembered peak as ``<name>_peak``); histograms export
    the standard ``_bucket`` (cumulative, with ``le`` labels and the
    ``+Inf`` catch-all), ``_sum`` and ``_count`` series.  Metrics listed
    in :data:`METRIC_HELP` get a ``# HELP`` line ahead of ``# TYPE``.
    Output is name-sorted, so two runs producing the same metrics render
    byte-identically regardless of metric creation order.
    """
    lines: List[str] = []

    def describe(name: str, source: str) -> None:
        text = metric_help(source)
        if text is not None:
            lines.append(f"# HELP {name} {text}")

    for metric in sorted(registry.metrics(), key=lambda m: m.name):
        entry = metric.to_dict()
        name = _prom_name(metric.name)
        kind = entry["kind"]
        if kind == "counter":
            describe(name, metric.name)
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(entry['value'])}")
        elif kind == "gauge":
            describe(name, metric.name)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(entry['value'])}")
            help_text = metric_help(metric.name)
            if help_text is not None:
                lines.append(f"# HELP {name}_peak peak of: {help_text}")
            lines.append(f"# TYPE {name}_peak gauge")
            lines.append(f"{name}_peak {_prom_value(entry['peak'])}")
        else:
            describe(name, metric.name)
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(entry["bounds"], entry["bucket_counts"]):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {entry["count"]}')
            lines.append(f"{name}_sum {_prom_value(entry['sum'])}")
            lines.append(f"{name}_count {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def histogram_table(histograms: List[Histogram]) -> str:
    rows = []
    for hist in sorted(histograms, key=lambda h: h.name):
        stats = hist.percentiles()
        rows.append([
            hist.name, hist.count, stats["p50"], stats["p95"], stats["p99"],
            stats["mean"], stats["max"],
        ])
    return format_table(
        ["histogram", "count", "p50", "p95", "p99", "mean", "max"], rows
    )
