"""Exporters: Chrome ``trace_event`` JSON, metrics JSON/tables, Prometheus.

The Chrome trace format (loadable in ``chrome://tracing`` or Perfetto's
"Open trace file") is the object form::

    {"traceEvents": [...], "displayTimeUnit": "ms", "metrics": {...}}

Spans become complete ("ph": "X") events, ring-buffer events become
instants ("ph": "i"), and each span track gets a thread-name metadata
record so actors show up as separate rows.  Virtual seconds map to trace
microseconds.  The full metrics registry rides along under the
non-standard top-level ``metrics`` key (Chrome ignores unknown keys).
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from ..stats.tables import format_table
from .metrics import Histogram, MetricsRegistry
from .spans import SpanRecorder

#: the single simulated "process" in exported traces
TRACE_PID = 1


def counter_events(series_by_name: Dict[str, object]) -> List[Dict[str, object]]:
    """Chrome counter ("ph": "C") events from named Series-like curves.

    Each series renders as its own counter row in chrome://tracing /
    Perfetto, so e.g. defrag progress shows as a falling
    ``frag.extents_per_file`` curve alongside the span tracks.
    """
    events: List[Dict[str, object]] = []
    for name, series in series_by_name.items():
        for time, value in zip(series.times, series.values):
            events.append({
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "C",
                "ts": time * 1e6,
                "pid": TRACE_PID,
                "args": {"value": value},
            })
    return events


def chrome_trace(
    recorder: SpanRecorder,
    registry: Optional[MetricsRegistry] = None,
    sampler=None,
    extra_events: Optional[List[Dict[str, object]]] = None,
) -> Dict[str, object]:
    """Build a Chrome trace_event document from recorded spans/events.

    ``sampler`` (anything with ``.series`` and ``.to_dict()``, e.g. a
    :class:`~repro.obs.sampler.FragmentationSampler`) adds counter curves
    to the event stream plus a raw ``fragTimeline`` top-level key.
    ``extra_events`` appends pre-built trace events verbatim — e.g. the
    provenance slices and flow arrows from
    :func:`repro.obs.critical_path.flow_events` (those carry their own
    tids from a reserved namespace, so they never collide with the track
    ids assigned here).
    """
    events: List[Dict[str, object]] = []
    tracks = recorder.tracks() or ["main"]
    tids = {track: tid for tid, track in enumerate(tracks, start=1)}
    for track, tid in tids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": track},
        })
    for span in recorder.finished_spans():
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": TRACE_PID,
            "tid": tids.get(span.track, 0),
            "args": dict(span.attrs),
        })
    for event in recorder.events:
        events.append({
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "ph": "i",
            "ts": event.time * 1e6,
            "s": "t",
            "pid": TRACE_PID,
            "tid": tids.get(event.track, 0),
            "args": dict(event.attrs),
        })
    if sampler is not None:
        events.extend(counter_events(sampler.series))
    if extra_events:
        events.extend(extra_events)
    document: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if recorder.dropped_spans:
        document["droppedSpans"] = recorder.dropped_spans
    if recorder.dropped_events:
        document["droppedEvents"] = recorder.dropped_events
    if registry is not None:
        document["metrics"] = registry.to_dict()
    if sampler is not None:
        document["fragTimeline"] = sampler.to_dict()
    return document


def write_chrome_trace(
    path: str,
    recorder: SpanRecorder,
    registry: Optional[MetricsRegistry] = None,
    sampler=None,
) -> None:
    """Write the trace document to ``path`` (open it in Perfetto)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder, registry, sampler=sampler), fh)


def metrics_json(registry: MetricsRegistry) -> str:
    return json.dumps(registry.to_dict(), indent=2, sort_keys=True)


def metrics_table(registry: MetricsRegistry) -> str:
    """Plain-text dump of every metric, histograms with quantiles."""
    sections: List[str] = []
    counters = [m for m in registry.metrics() if m.to_dict()["kind"] == "counter"]
    gauges = [m for m in registry.metrics() if m.to_dict()["kind"] == "gauge"]
    histograms = registry.histograms()
    if counters:
        rows = [[c.name, c.value] for c in sorted(counters, key=lambda m: m.name)]
        sections.append(format_table(["counter", "value"], rows))
    if gauges:
        rows = [[g.name, g.value, g.peak] for g in sorted(gauges, key=lambda m: m.name)]
        sections.append(format_table(["gauge", "value", "peak"], rows))
    if histograms:
        sections.append(histogram_table(histograms))
    return "\n\n".join(sections)


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Metric name in Prometheus' charset (dots and dashes become '_')."""
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text-format (0.0.4) rendering of the whole registry.

    Counters and gauges export their value directly (gauges additionally
    export their remembered peak as ``<name>_peak``); histograms export
    the standard ``_bucket`` (cumulative, with ``le`` labels and the
    ``+Inf`` catch-all), ``_sum`` and ``_count`` series.  Output is
    name-sorted, so two runs producing the same metrics render
    byte-identically regardless of metric creation order.
    """
    lines: List[str] = []
    for metric in sorted(registry.metrics(), key=lambda m: m.name):
        entry = metric.to_dict()
        name = _prom_name(metric.name)
        kind = entry["kind"]
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(entry['value'])}")
            lines.append(f"# TYPE {name}_peak gauge")
            lines.append(f"{name}_peak {_prom_value(entry['peak'])}")
        else:
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(entry["bounds"], entry["bucket_counts"]):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {entry["count"]}')
            lines.append(f"{name}_sum {_prom_value(entry['sum'])}")
            lines.append(f"{name}_count {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def histogram_table(histograms: List[Histogram]) -> str:
    rows = []
    for hist in sorted(histograms, key=lambda h: h.name):
        stats = hist.percentiles()
        rows.append([
            hist.name, hist.count, stats["p50"], stats["p95"], stats["p99"],
            stats["mean"], stats["max"],
        ])
    return format_table(
        ["histogram", "count", "p50", "p95", "p99", "mean", "max"], rows
    )
