"""The ``Instrumentation`` facade the storage stack calls into.

Every layer keeps one reference (``self.obs``) captured at construction
time and guards each hook call with ``if self.obs.enabled:`` — so with the
default :class:`NullInstrumentation` installed, the hot path costs one
attribute lookup and a falsy branch, nothing more.

Enable it around an experiment::

    from repro.obs import hooks
    obs = hooks.enable()          # installs a live Instrumentation
    fs, device = fresh_fs(...)    # layers built now pick it up
    ...
    print(export.metrics_table(obs.registry))
    hooks.disable()

or scoped::

    with hooks.use(hooks.Instrumentation()) as obs:
        ...

What each layer reports:

========================  =====================================================
layer                     metrics / spans
========================  =====================================================
``fs`` (VFS syscalls)     ``fs.syscall.<op>`` counter,
                          ``fs.syscall_latency.<op>`` histogram
``block`` (scheduler)     ``block.split_fanout`` histogram (commands per
                          syscall — the paper's core mechanism),
                          ``block.kernel_time_s`` / ``block.requests``
                          counters, ``block.queue_backlog_s`` gauge
``device``                ``device.<name>.command_latency.<op>`` histogram,
                          ``device.<name>.batch_commands`` histogram,
                          ``device.<name>.busy_until`` gauge
``core`` (FragPicker)     ``fragpicker.*`` spans (defragment/analyze/migrate)
                          and frag-check events
``sim`` (engine)          ``sim.actor_step.<actor>`` histogram plus
                          ``actor.run`` ring-buffer events
========================  =====================================================

Latency attribution
-------------------

Beyond the per-layer metrics, every layer also feeds a small set of
``attrib.*_s`` counters that *partition* each syscall's wall-clock latency
into named components, measured at the layer that owns them:

- ``attrib.fs_cpu_s`` — host CPU above the block layer (syscall overhead,
  page-cache memcpy, attached-probe cost);
- ``attrib.kernel_queue_s`` — wait for the shared kernel-CPU timeline;
- ``attrib.kernel_cpu_base_s`` — baseline request-build CPU (one request
  per syscall);
- ``attrib.kernel_cpu_split_s`` — the *extra* kernel CPU caused by request
  splitting (goes to ~0 once a file is contiguous — the paper's
  mechanism);
- ``attrib.device_queue_s`` — device-side wait behind earlier traffic;
- ``attrib.device_service_s`` — device wall-clock service after pickup,
  minus penalties;
- ``attrib.device_penalty_s`` — seek / mapping-miss penalties the device
  models charge for discontiguity.

Because each component is an exact slice of the same timeline the
syscall-latency histograms measure, the components sum to the measured
total; :func:`repro.obs.analysis.attribute` renders the breakdown and
checks that invariant.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional, Tuple

from .metrics import COUNT_BOUNDS, Counter, Gauge, Histogram, MetricsRegistry
from .provenance import ProvenanceRecorder
from .spans import Span, SpanRecorder


class Instrumentation:
    """Live facade: metrics registry + span recorder behind layer hooks.

    ``max_spans``/``max_events`` size the span store and event ring when
    the facade builds its own :class:`SpanRecorder` (ignored when an
    existing ``spans`` recorder is passed — size that one directly).  The
    event ring evicts oldest-first once full; every wrap increments the
    ``obs.events_dropped`` counter so provenance-armed runs can't lose
    causal edges silently (see :mod:`repro.obs.spans` for the truncation
    contract).

    ``provenance=True`` arms per-syscall causal tracing: layers built
    while this facade is installed mint provenance ids and record
    syscall→request→command edges into the event ring
    (:mod:`repro.obs.provenance`).  Disarmed (the default), no ids are
    minted and commands carry ``pid=0``.

    ``slo=`` attaches an :class:`~repro.obs.slo.SloPlane`: producers that
    feed windowed telemetry (the fragmentation sampler, the fleet
    controller, post-hoc harness evaluation) guard with
    ``if obs.slo is not None`` *inside* their ``obs.enabled`` branch —
    the same boolean-sentinel fast path as the obs/fault planes, so with
    no plane attached (the default) nothing changes on any path.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        spans: Optional[SpanRecorder] = None,
        max_spans: Optional[int] = None,
        max_events: Optional[int] = None,
        provenance: bool = False,
        slo=None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        if spans is not None:
            self.spans = spans
        else:
            span_kwargs = {}
            if max_spans is not None:
                span_kwargs["max_spans"] = max_spans
            if max_events is not None:
                span_kwargs["max_events"] = max_events
            self.spans = SpanRecorder(**span_kwargs)
        self.provenance: Optional[ProvenanceRecorder] = (
            ProvenanceRecorder(self.spans) if provenance else None
        )
        #: optional SLO plane (repro.obs.slo); None = no windowed judging
        self.slo = slo
        if slo is not None:
            slo.bind(self)
        # get-or-create caches so hot hooks skip name formatting when possible
        self._syscall: Dict[str, Tuple[Counter, Histogram]] = {}
        self._device: Dict[Tuple[str, str], Histogram] = {}
        self._device_batch: Dict[str, Tuple[Histogram, Gauge]] = {}
        self._actor: Dict[str, Histogram] = {}
        reg = self.registry
        self._fanout = reg.histogram("block.split_fanout", COUNT_BOUNDS)
        self._kernel_time = reg.counter("block.kernel_time_s")
        self._requests = reg.counter("block.requests")
        self._backlog = reg.gauge("block.queue_backlog_s")
        # latency-attribution components (see module docstring)
        self._attr_fs_cpu = reg.counter("attrib.fs_cpu_s")
        self._attr_kernel_queue = reg.counter("attrib.kernel_queue_s")
        self._attr_kernel_base = reg.counter("attrib.kernel_cpu_base_s")
        self._attr_kernel_split = reg.counter("attrib.kernel_cpu_split_s")
        self._attr_dev_queue = reg.counter("attrib.device_queue_s")
        self._attr_dev_service = reg.counter("attrib.device_service_s")
        self._attr_dev_penalty = reg.counter("attrib.device_penalty_s")
        # fault plane / resilience (repro.faults)
        self._fault: Dict[str, Counter] = {}
        self._faults_total = reg.counter("faults.injected.total")
        self._recovery_entries = reg.counter("recovery.entries_replayed")
        self._recovery_bytes = reg.counter("recovery.bytes_restored")
        # event-ring wrap visibility (see the class docstring)
        self.spans.drop_counter = reg.counter("obs.events_dropped")

    # -- fs / VFS ------------------------------------------------------

    def syscall(self, op: str, latency: float) -> None:
        pair = self._syscall.get(op)
        if pair is None:
            pair = self._syscall[op] = (
                self.registry.counter(f"fs.syscall.{op}"),
                self.registry.histogram(f"fs.syscall_latency.{op}"),
            )
        pair[0].inc()
        pair[1].observe(latency)

    def fs_cpu(self, seconds: float) -> None:
        """Host CPU spent above the block layer (one syscall's worth)."""
        self._attr_fs_cpu.inc(seconds)

    # -- block layer ---------------------------------------------------

    def block_submit(
        self,
        fanout: int,
        kernel_time: float,
        backlog: float,
        queue_wait: float = 0.0,
        base_cpu: float = 0.0,
    ) -> None:
        self._fanout.observe(fanout)
        self._kernel_time.inc(kernel_time)
        self._requests.inc(fanout)
        self._backlog.set(backlog)
        self._attr_kernel_queue.inc(queue_wait)
        base = min(base_cpu, kernel_time)
        self._attr_kernel_base.inc(base)
        self._attr_kernel_split.inc(kernel_time - base)

    # -- device layer --------------------------------------------------

    def device_command(self, device: str, op: str, service_time: float) -> None:
        hist = self._device.get((device, op))
        if hist is None:
            hist = self._device[(device, op)] = self.registry.histogram(
                f"device.{device}.command_latency.{op}"
            )
        hist.observe(service_time)

    def device_batch(
        self,
        device: str,
        commands: int,
        busy_until: float,
        queue_wait: float = 0.0,
        service_time: float = 0.0,
        penalty_time: float = 0.0,
    ) -> None:
        pair = self._device_batch.get(device)
        if pair is None:
            pair = self._device_batch[device] = (
                self.registry.histogram(f"device.{device}.batch_commands", COUNT_BOUNDS),
                self.registry.gauge(f"device.{device}.busy_until"),
            )
        pair[0].observe(commands)
        pair[1].set(busy_until)
        self._attr_dev_queue.inc(queue_wait)
        penalty = min(penalty_time, service_time)
        self._attr_dev_service.inc(service_time - penalty)
        self._attr_dev_penalty.inc(penalty)

    # -- fault plane / resilience (repro.faults) -----------------------

    def fault_injected(self, site: str, kind: str) -> None:
        """One fault fired at ``site`` (called by the fault plane)."""
        key = f"faults.injected.{site}.{kind}"
        counter = self._fault.get(key)
        if counter is None:
            counter = self._fault[key] = self.registry.counter(key)
        counter.inc()
        self._faults_total.inc()

    def migration_retry(self, tool: str = "fragpicker") -> None:
        key = f"{tool}.migration_retries"
        counter = self._fault.get(key)
        if counter is None:
            counter = self._fault[key] = self.registry.counter(key)
        counter.inc()

    def migration_failed(self, tool: str = "fragpicker") -> None:
        key = f"{tool}.migrations_failed"
        counter = self._fault.get(key)
        if counter is None:
            counter = self._fault[key] = self.registry.counter(key)
        counter.inc()

    def recovery_replayed(self, entries: int, bytes_restored: int) -> None:
        """One journal recovery pass finished."""
        self._recovery_entries.inc(entries)
        self._recovery_bytes.inc(bytes_restored)

    # -- spans / events ------------------------------------------------

    def span_start(self, name: str, now: float, track: str = "main", **attrs: object) -> Span:
        return self.spans.start(name, now, track=track, **attrs)

    def span_finish(self, span: Optional[Span], now: float) -> None:
        if span is not None:
            self.spans.finish(span, now)

    def event(self, name: str, now: float, track: str = "main", **attrs: object) -> None:
        self.spans.event(name, now, track=track, **attrs)

    # -- sim engine ----------------------------------------------------

    def actor_step(self, actor: str, start: float, end: float) -> None:
        hist = self._actor.get(actor)
        if hist is None:
            hist = self._actor[actor] = self.registry.histogram(
                f"sim.actor_step.{actor}"
            )
        hist.observe(max(0.0, end - start))
        self.spans.event("actor.run", start, track=actor, until=end)


class NullInstrumentation:
    """Disabled facade: every hook is a no-op, ``enabled`` is falsy.

    Layers guard with ``if self.obs.enabled:``, so none of these methods
    run on the hot path; they exist so unguarded call sites stay safe.
    """

    enabled = False
    registry = None
    spans = None
    provenance = None
    slo = None

    def syscall(self, op: str, latency: float) -> None:
        pass

    def fs_cpu(self, seconds: float) -> None:
        pass

    def block_submit(
        self,
        fanout: int,
        kernel_time: float,
        backlog: float,
        queue_wait: float = 0.0,
        base_cpu: float = 0.0,
    ) -> None:
        pass

    def device_command(self, device: str, op: str, service_time: float) -> None:
        pass

    def device_batch(
        self,
        device: str,
        commands: int,
        busy_until: float,
        queue_wait: float = 0.0,
        service_time: float = 0.0,
        penalty_time: float = 0.0,
    ) -> None:
        pass

    def fault_injected(self, site: str, kind: str) -> None:
        pass

    def migration_retry(self, tool: str = "fragpicker") -> None:
        pass

    def migration_failed(self, tool: str = "fragpicker") -> None:
        pass

    def recovery_replayed(self, entries: int, bytes_restored: int) -> None:
        pass

    def span_start(self, name: str, now: float, track: str = "main", **attrs: object) -> None:
        return None

    def span_finish(self, span: Optional[Span], now: float) -> None:
        pass

    def event(self, name: str, now: float, track: str = "main", **attrs: object) -> None:
        pass

    def actor_step(self, actor: str, start: float, end: float) -> None:
        pass


NULL = NullInstrumentation()
_current = NULL


def current():
    """The process-wide instrumentation (null unless enabled)."""
    return _current


def install(instrumentation) -> None:
    global _current
    _current = instrumentation


def enable(
    registry: Optional[MetricsRegistry] = None,
    spans: Optional[SpanRecorder] = None,
    max_spans: Optional[int] = None,
    max_events: Optional[int] = None,
    provenance: bool = False,
    slo=None,
) -> Instrumentation:
    """Install (and return) a live instrumentation."""
    instrumentation = Instrumentation(
        registry, spans, max_spans=max_spans, max_events=max_events,
        provenance=provenance, slo=slo,
    )
    install(instrumentation)
    return instrumentation


def disable() -> None:
    install(NULL)


@contextmanager
def use(instrumentation):
    """Scoped install; restores the previous instrumentation on exit."""
    previous = current()
    install(instrumentation)
    try:
        yield instrumentation
    finally:
        install(previous)
