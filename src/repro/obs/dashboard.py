"""The live fleet health dashboard: plain text, byte-deterministic.

``repro watch`` renders one frame per scheduler tick (or a single final
frame with ``--once``): fleet tick rows, burn-rate sparklines per SLO,
and the firing-alert table.  Everything derives from virtual time, so a
frame for a given (config, tick) is byte-identical run to run — which is
what lets CI golden-test the dashboard like any other document.

Sparklines use the eight Unicode block elements; an empty series renders
as spaces.  Scaling is per-sparkline (min..max of the visible tail), so
shape is readable even when absolute ranges differ wildly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..constants import MIB

#: sparkline glyphs, lowest to highest
BARS = "▁▂▃▄▅▆▇█"

#: visible tail length of each sparkline
SPARK_WIDTH = 24


def sparkline(values: Sequence[float], width: int = SPARK_WIDTH) -> str:
    """Render the last ``width`` values as a block-element sparkline."""
    tail = list(values)[-width:]
    if not tail:
        return ""
    low = min(tail)
    span = max(tail) - low
    if span <= 0:
        # flat line: mid-height when non-zero, baseline when all-zero
        glyph = BARS[3] if low else BARS[0]
        return glyph * len(tail)
    top = len(BARS) - 1
    return "".join(
        BARS[int((value - low) / span * top + 0.5)] for value in tail
    )


class Frame:
    """Everything one dashboard frame shows (plain data, renderable)."""

    def __init__(
        self,
        tick: int,
        ticks_total: int,
        now: float,
        volumes: int,
        rows: Sequence[object],
        slo_summaries: Dict[str, Dict[str, object]],
        alerts: Sequence[Dict[str, object]],
        firing: Sequence[str],
        budget_per_tick: Optional[int] = None,
    ) -> None:
        self.tick = tick
        self.ticks_total = ticks_total
        self.now = now
        self.volumes = volumes
        self.rows = list(rows)
        self.slo_summaries = slo_summaries
        self.alerts = list(alerts)
        self.firing = list(firing)
        self.budget_per_tick = budget_per_tick


def render(frame: Frame) -> str:
    """One dashboard frame as plain text."""
    lines: List[str] = []
    head = (
        f"fleet health — tick {frame.tick + 1}/{frame.ticks_total}, "
        f"vt {frame.now:.2f}s, {frame.volumes} volumes"
    )
    lines.append(head)
    lines.append("─" * len(head))

    # -- SLO table -----------------------------------------------------
    if frame.slo_summaries:
        lines.append("")
        lines.append(
            f"  {'slo':<22} {'compliance':>10} {'target':>7} "
            f"{'budget':>8} {'burn f/s':>11}  {'state':<6} burn"
        )
        for name in sorted(frame.slo_summaries):
            summary = frame.slo_summaries[name]
            burn = summary.get("burn", [])
            state = "FIRING" if name in frame.firing else (
                "breach" if summary["breaches"] else "ok"
            )
            lines.append(
                f"  {name:<22} {summary['compliance']:>10.2%} "
                f"{summary['target']:>7.0%} "
                f"{summary['budget_remaining']:>+8.0%} "
                f"{summary['last_fast_burn']:>5.2f}/"
                f"{summary['last_slow_burn']:<5.2f}"
                f"  {state:<6} {sparkline(burn)}"
            )

    # -- alert table ---------------------------------------------------
    lines.append("")
    if frame.alerts:
        lines.append(f"  {len(frame.alerts)} burn-rate alert(s):")
        for row in frame.alerts[-8:]:
            lines.append(
                f"    [window {row['window']:>3}] {row['slo']}: "
                f"fast {row['fast_burn']:.2f} slow {row['slow_burn']:.2f} "
                f"({row['bad']}/{row['samples']} bad)"
            )
    else:
        lines.append("  no alerts fired")

    # -- fleet curves --------------------------------------------------
    if frame.rows:
        above = [float(r.volumes_above) for r in frame.rows]
        migrated = [r.migrated_bytes / MIB for r in frame.rows]
        running = [float(r.jobs_running) for r in frame.rows]
        waiting = [float(r.jobs_waiting) for r in frame.rows]
        lines.append("")
        lines.append(
            f"  above-trigger  {sparkline(above)}  now {above[-1]:.0f}"
        )
        budget = (
            f" (budget {frame.budget_per_tick / MIB:.2f})"
            if frame.budget_per_tick else ""
        )
        lines.append(
            f"  migrated MiB   {sparkline(migrated)}  "
            f"now {migrated[-1]:.2f}{budget}"
        )
        lines.append(
            f"  jobs running   {sparkline(running)}  now {running[-1]:.0f}"
        )
        lines.append(
            f"  jobs waiting   {sparkline(waiting)}  now {waiting[-1]:.0f}"
        )
        row = frame.rows[-1]
        lines.append("")
        lines.append(
            f"  tick {row.tick:>3}: {row.volumes_above} above trigger, "
            f"{row.migrated_bytes / MIB:.2f} MiB migrated, "
            f"{row.jobs_running} running / {row.jobs_waiting} waiting, "
            f"{row.fg_ops} fg ops"
        )
    return "\n".join(lines)
