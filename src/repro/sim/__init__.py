"""Virtual-time simulation: sessions (single actor) and the co-running
engine (multiple actors time-sharing one device FCFS)."""

from .clock import Clock
from .session import Session
from .engine import ActorContext, run_concurrently

__all__ = ["Clock", "Session", "ActorContext", "run_concurrently"]
