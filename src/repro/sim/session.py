"""Session: a single-threaded process doing syscalls against one filesystem.

Wraps the explicit ``now=``/``finish_time`` plumbing of the VFS into an
auto-advancing clock, which is what examples and most workloads want.
"""

from __future__ import annotations

from typing import Optional

from ..fs.base import FallocMode, FileHandle, Filesystem, SyscallResult
from .clock import Clock


class Session:
    """One application's sequential syscall stream."""

    def __init__(self, fs: Filesystem, app: str = "app", start: float = 0.0, clock: Optional[Clock] = None) -> None:
        self.fs = fs
        self.app = app
        self.clock = clock if clock is not None else Clock(start)

    @property
    def now(self) -> float:
        return self.clock.now

    def _done(self, result: SyscallResult) -> SyscallResult:
        self.clock.advance_to(max(self.now, result.finish_time))
        return result

    # -- syscalls ----------------------------------------------------------

    def open(self, path: str, o_direct: bool = False, create: bool = False) -> FileHandle:
        return self.fs.open(path, o_direct=o_direct, app=self.app, create=create)

    def read(self, handle: FileHandle, offset: int, length: int, want_data: bool = False) -> SyscallResult:
        return self._done(self.fs.read(handle, offset, length, now=self.now, want_data=want_data))

    def write(self, handle: FileHandle, offset: int, length: int = None, data: bytes = None) -> SyscallResult:
        return self._done(self.fs.write(handle, offset, length=length, data=data, now=self.now))

    def fsync(self, handle: FileHandle) -> SyscallResult:
        return self._done(self.fs.fsync(handle, now=self.now))

    def fallocate(self, handle: FileHandle, mode: FallocMode, offset: int, length: int) -> SyscallResult:
        return self._done(self.fs.fallocate(handle, mode, offset, length, now=self.now))

    def unlink(self, path: str) -> SyscallResult:
        return self._done(self.fs.unlink(path, now=self.now))

    def sync(self) -> SyscallResult:
        return self._done(self.fs.sync(now=self.now))

    def sleep(self, seconds: float) -> None:
        self.clock.advance_by(seconds)
