"""Discrete-event co-running of several actors over shared storage.

Actors are generator functions.  Each actor owns an
:class:`ActorContext` whose ``now`` it advances after every syscall
(``ctx.now = result.finish_time``) and then ``yield``s.  The engine always
steps the actor with the smallest local time, so the shared device's
``busy_until`` timeline interleaves the actors' traffic first-come
first-served — background defragmentation steals device time from the
foreground workload exactly the way Figures 2 and 10 measure it.

Example::

    def workload(ctx):
        while ctx.now < 30.0:
            result = fs.read(handle, off(), 128 * KIB, now=ctx.now)
            ctx.now = result.finish_time
            ctx.timeline.record(ctx.now)
            yield

    contexts = run_concurrently({"ycsb": workload, "defrag": defrag_actor})
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Iterator, Optional

from ..obs import hooks as obs_hooks
from ..stats.timeline import Timeline

ActorFn = Callable[["ActorContext"], Generator[None, None, None]]


@dataclass
class ActorContext:
    """Per-actor virtual clock plus a completion timeline."""

    name: str
    now: float = 0.0
    timeline: Timeline = field(default_factory=Timeline)
    finished_at: Optional[float] = None

    def record(self, amount: float = 1.0) -> None:
        self.timeline.record(self.now, amount)


def run_concurrently(
    actors: Dict[str, ActorFn],
    start: float = 0.0,
    until: Optional[float] = None,
    start_times: Optional[Dict[str, float]] = None,
) -> Dict[str, ActorContext]:
    """Run actors to completion, interleaved by smallest-local-time.

    ``start_times`` lets an actor join late (e.g. defragmentation kicking
    in mid-workload).  ``until`` hard-stops any actor whose clock passes
    it.  Returns each actor's context (clock + timeline).
    """
    contexts: Dict[str, ActorContext] = {}
    heap = []
    counter = itertools.count()  # tie-breaker for equal times
    generators: Dict[str, Iterator[None]] = {}
    for name, fn in actors.items():
        t0 = start if start_times is None else start_times.get(name, start)
        ctx = ActorContext(name=name, now=t0)
        contexts[name] = ctx
        generators[name] = fn(ctx)
        heapq.heappush(heap, (ctx.now, next(counter), name))
    obs = obs_hooks.current()
    while heap:
        _, _, name = heapq.heappop(heap)
        ctx = contexts[name]
        if until is not None and ctx.now >= until:
            ctx.finished_at = ctx.now
            continue
        step_start = ctx.now
        try:
            next(generators[name])
        except StopIteration:
            ctx.finished_at = ctx.now
            if obs.enabled:
                obs.event("actor.finish", ctx.now, track=name)
            continue
        if obs.enabled:
            obs.actor_step(name, step_start, ctx.now)
        heapq.heappush(heap, (ctx.now, next(counter), name))
    return contexts
