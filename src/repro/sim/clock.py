"""A trivially simple virtual clock."""

from __future__ import annotations

from ..errors import InvalidArgument


class Clock:
    """Monotonic virtual time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance_to(self, t: float) -> float:
        if t < self.now:
            raise InvalidArgument(f"clock cannot go backwards ({t} < {self.now})")
        self.now = t
        return self.now

    def advance_by(self, dt: float) -> float:
        return self.advance_to(self.now + dt)
