"""Shared wiring for CLI verbs that persist comparable JSON documents.

``bench``, ``perf``, and ``fleet`` all follow the same contract: run a
suite, save a schema-tagged document whose fingerprint makes runs
comparable, and (with ``--compare``) diff two such documents with a
direction-aware threshold.  The argument set and the compare flow are
identical across verbs — this module holds them once.
"""

from __future__ import annotations

import argparse
from typing import Callable, Optional, Tuple


def add_document_args(
    parser: argparse.ArgumentParser,
    kind: str,
    prefix: str,
    threshold: float = 0.10,
    threshold_help: Optional[str] = None,
) -> None:
    """Attach the --label/--json/--compare/--threshold/--warn-only set."""
    parser.add_argument(
        "--label", default=None,
        help="document label (default: 'smoke' or 'full')",
    )
    parser.add_argument(
        "--json", nargs="?", const=None, default=None, metavar="PATH",
        help=f"write the {kind} document here "
             f"(default: {prefix}_<label>.json)",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("BASELINE", "CANDIDATE"),
        help=f"compare two {kind} documents instead of running; "
             "exits 1 when a regression exceeds the threshold",
    )
    parser.add_argument(
        "--threshold", type=float, default=threshold,
        help=threshold_help
        or f"relative regression threshold (default {threshold:.2f})",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but always exit 0",
    )


def add_workers_arg(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--workers N`` flag (default: serial path).

    Every verb that accepts it routes through :mod:`repro.par`, whose
    canonical merge makes the parallel output byte-identical to serial.
    """
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the run across N worker processes (default: serial; "
             "output is byte-identical either way)",
    )


def add_ledger_args(parser: argparse.ArgumentParser) -> None:
    """Attach the run-ledger flags every document verb shares.

    Each run appends a fingerprinted manifest to the persistent ledger
    (``repro runs`` queries it); ``--no-ledger`` opts a run out.
    """
    parser.add_argument(
        "--ledger-dir", default=None, metavar="DIR",
        help="run-ledger directory (default: $REPRO_LEDGER_DIR or "
             "benchmarks/ledger)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not append this run's manifest to the run ledger",
    )


def record_ledger(
    args: argparse.Namespace,
    verb: str,
    document: dict,
    *,
    label: str = "local",
    seed: Optional[int] = None,
    wall_s: float = 0.0,
    extra: Optional[dict] = None,
) -> Optional[str]:
    """Append this run's manifest to the ledger (unless --no-ledger)."""
    if getattr(args, "no_ledger", False):
        return None
    from .obs import ledger

    path = ledger.record_run(
        verb, document, label=label, seed=seed,
        workers=getattr(args, "workers", None),
        args=extra, wall_s=wall_s,
        directory=getattr(args, "ledger_dir", None),
    )
    print(f"recorded run manifest {path}")
    return path


def document_path(args: argparse.Namespace, prefix: str) -> Tuple[str, str]:
    """Resolve the (label, output path) pair for a document run."""
    label = args.label or ("smoke" if getattr(args, "smoke", False) else "full")
    path = args.json or f"{prefix}_{label}.json"
    return label, path


def run_compare(
    args: argparse.Namespace,
    load: Callable[[str], dict],
    compare: Callable[..., object],
) -> Optional[int]:
    """Execute the --compare flow if requested; None means "not asked".

    ``load``/``compare`` are the document module's pair (e.g.
    ``bench.regression.load``/``compare``); every compare() in this repo
    returns a Comparison with ``.report()`` and ``.ok``.
    """
    if not args.compare:
        return None
    baseline = load(args.compare[0])
    candidate = load(args.compare[1])
    comparison = compare(baseline, candidate, threshold=args.threshold)
    print(comparison.report())
    if comparison.ok or args.warn_only:
        return 0
    return 1
