"""repro.fleet — defrag-as-a-service across a fleet of simulated volumes.

Scales the single-volume FragPicker reproduction up to operator scale: a
seed-keyed population of volumes (mixed filesystems, device models,
fragmentation profiles, workloads), a controller that watches per-volume
fragmentation and admits defrag jobs under a global concurrency cap and a
fleet-wide migration-bytes-per-tick budget, and an SLO report (foreground
read p50/p99, bytes migrated, volumes above threshold over time) with a
byte-reproducible fingerprint.
"""

from .admission import AdmissionController, TickBudget
from .controller import FleetController, build_volumes, run_fleet
from .jobs import DefragJob
from .report import FleetReport, TickRow, compare, fingerprint, load, percentile, save
from .slo import FleetSlo
from .spec import FileSpec, FleetConfig, VolumeSpec, make_volume_specs
from .volume import Volume

__all__ = [
    "AdmissionController",
    "TickBudget",
    "FleetController",
    "build_volumes",
    "run_fleet",
    "DefragJob",
    "FleetReport",
    "FleetSlo",
    "TickRow",
    "compare",
    "fingerprint",
    "load",
    "percentile",
    "save",
    "FileSpec",
    "FleetConfig",
    "VolumeSpec",
    "make_volume_specs",
    "Volume",
]
