"""Seed-keyed fleet and volume specifications.

One fleet seed pins down *everything* about a fleet: how many volumes,
each volume's filesystem personality, device model, initial fragmentation
profile, file set, and workload mix — all derived through dedicated
string-seeded :class:`random.Random` streams so that adding a volume or
reordering construction never perturbs another volume's draws.  Two runs
with the same :class:`FleetConfig` therefore build byte-identical fleets,
which is what makes the fleet fingerprint reproducible end to end.

Device mix is the paper's modern-storage set (Optane, flash, MicroSD);
HDDs are excluded on purpose — Section 6 recommends against FragPicker on
seek-time devices, and a fleet scheduler should encode that policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..constants import KIB, MIB
from ..core.migration import RetryPolicy
from ..errors import InvalidArgument
from ..faults.plan import FaultPlan

#: device models a fleet volume may use (no HDD: Section 6 policy)
DEVICE_MIX = ("optane", "flash", "microsd")

#: filesystem personalities in the mix
FS_MIX = ("ext4", "f2fs", "btrfs")

#: initial-layout profiles: (name, weight, pieces-per-file divisor);
#: a file of size S is built from S/divisor interleaved pieces, so
#: "heavy" volumes start well above the default admission trigger and
#: "clean" volumes start contiguous
PROFILES = (
    ("heavy", 0.35, 16),
    ("light", 0.35, 4),
    ("clean", 0.30, 1),
)

#: foreground workload kinds (every kind issues reads so the fleet's
#: p50/p99 foreground read-latency SLO is always measurable)
WORKLOADS = ("read_seq", "read_stride", "rw_mix")


@dataclass(frozen=True)
class FileSpec:
    """One file of a volume's initial layout."""

    path: str
    size: int
    #: interleave piece size; == size means a single contiguous extent
    piece: int
    #: dummy-file bytes written between pieces (opens gaps in the layout)
    gap: int


@dataclass(frozen=True)
class VolumeSpec:
    """Everything needed to (re)build one volume deterministically."""

    index: int
    name: str
    fs_type: str
    device: str
    profile: str
    workload: str
    files: Tuple[FileSpec, ...]
    workload_seed: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "fs_type": self.fs_type,
            "device": self.device,
            "profile": self.profile,
            "workload": self.workload,
            "files": [
                {"path": f.path, "size": f.size, "piece": f.piece, "gap": f.gap}
                for f in self.files
            ],
        }


@dataclass(frozen=True)
class FleetConfig:
    """The fleet simulator's knobs (all virtual-time; no wall clock)."""

    volumes: int = 64
    seed: int = 0
    #: scheduler ticks to run
    ticks: int = 12
    #: virtual seconds per tick
    tick_seconds: float = 0.25
    #: fleet-wide migration *payload* budget per tick, in bytes
    #: (the strict admission unit: a range of length L charges L bytes
    #: before it may migrate; None = unthrottled)
    budget_per_tick: Optional[int] = 4 * MIB
    #: global concurrent defrag-job cap
    max_jobs: int = 4
    #: admit a job when a volume's mean extents-per-file crosses this
    trigger: float = 4.0
    #: ticks a volume stays ineligible after its job finishes
    cooldown_ticks: int = 4
    #: foreground ops each volume issues per tick (bounds host work)
    fg_ops_per_tick: int = 32
    #: per-volume device capacity
    device_capacity: int = 256 * MIB
    #: arm the seeded fleet fault storm (transient errors, latency
    #: spikes, and one mid-migration power-off) — see :meth:`fault_plan`
    faults: bool = False
    #: foreground workload override for *every* volume: one of
    #: :data:`WORKLOADS`, or ``trace:<path>`` to replay a captured trace
    #: (see :mod:`repro.replay.workload`); None keeps the seed-keyed mix
    workload: Optional[str] = None
    #: bounded retry-with-backoff applied to every defrag job
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.volumes < 0:
            raise InvalidArgument("volumes must be >= 0")
        if self.ticks < 1:
            raise InvalidArgument("ticks must be >= 1")
        if self.tick_seconds <= 0:
            raise InvalidArgument("tick_seconds must be positive")
        if self.budget_per_tick is not None and self.budget_per_tick <= 0:
            raise InvalidArgument("budget_per_tick must be positive (None = unlimited)")
        if self.max_jobs < 1:
            raise InvalidArgument("max_jobs must be >= 1")
        if self.trigger <= 0:
            raise InvalidArgument("trigger must be positive")
        if self.fg_ops_per_tick < 0:
            raise InvalidArgument("fg_ops_per_tick must be >= 0")
        if self.workload is not None and self.workload not in WORKLOADS:
            from ..replay.workload import parse_trace_workload
            if parse_trace_workload(self.workload) is None:
                raise InvalidArgument(
                    f"unknown workload {self.workload!r}: expected one of "
                    f"{', '.join(WORKLOADS)} or trace:<path>"
                )

    @classmethod
    def smoke(cls, volumes: int = 8, seed: int = 0, **overrides: object) -> "FleetConfig":
        """Small/fast variant for CI and tests."""
        defaults: Dict[str, object] = {
            "volumes": volumes,
            "seed": seed,
            "ticks": 6,
            "budget_per_tick": 2 * MIB,
            "max_jobs": 2,
            "fg_ops_per_tick": 16,
        }
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        """Canonical (fingerprinted) configuration."""
        document: Dict[str, object] = {
            "volumes": self.volumes,
            "seed": self.seed,
            "ticks": self.ticks,
            "tick_seconds": self.tick_seconds,
            "budget_per_tick": self.budget_per_tick,
            "max_jobs": self.max_jobs,
            "trigger": self.trigger,
            "cooldown_ticks": self.cooldown_ticks,
            "fg_ops_per_tick": self.fg_ops_per_tick,
            "device_capacity": self.device_capacity,
            "faults": self.faults,
            "retry_attempts": self.retry.attempts,
        }
        # conditional: absent when unset so pre-override fleet documents
        # keep their fingerprints byte-identical
        if self.workload is not None:
            document["workload"] = self.workload
        return document

    def fault_plan(self) -> FaultPlan:
        """The fleet storm: aimed at migration syscalls so foreground
        traffic sees only latency spikes, while defrag jobs exercise the
        retry/skip path and — once per run — a mid-migration power-off
        that must recover via the journal without stalling the fleet."""
        return (
            FaultPlan(self.seed)
            .latency_spike("device.submit", probability=0.01, max_fires=0)
            .io_error("fs.fallocate", probability=0.05, max_fires=0)
            .io_error("fs.write", probability=0.01, max_fires=0)
            .crash("fs.fallocate", after_ops=6)
        )


# ----------------------------------------------------------------------
# seed-keyed generation
# ----------------------------------------------------------------------

#: file sizes a volume may draw (block-aligned, >= one readahead unit)
_FILE_SIZES = (128 * KIB, 256 * KIB, 512 * KIB)


def _pick_weighted(rng: random.Random, options) -> str:
    """Weighted choice over (name, weight, ...) tuples."""
    roll = rng.random()
    acc = 0.0
    for option in options:
        acc += option[1]
        if roll < acc:
            return option
    return options[-1]


def make_volume_specs(config: FleetConfig) -> List[VolumeSpec]:
    """Derive every volume's spec from the one fleet seed.

    Volume 0 is always a ``heavy`` profile so any non-empty fleet has at
    least one volume above the default trigger — the smallest fleets still
    exercise the admission path.
    """
    specs: List[VolumeSpec] = []
    for index in range(config.volumes):
        rng = random.Random(f"repro.fleet:{config.seed}:vol:{index}")
        name = f"vol{index:04d}"
        fs_type = rng.choice(FS_MIX)
        device = rng.choice(DEVICE_MIX)
        profile = _pick_weighted(rng, PROFILES) if index else PROFILES[0]
        # the choice is always drawn so an override never perturbs this
        # volume's later draws (file count/sizes share the stream)
        workload = rng.choice(WORKLOADS)
        if config.workload is not None:
            workload = config.workload
        files = []
        for fi in range(rng.randint(3, 5)):
            size = rng.choice(_FILE_SIZES)
            piece = max(4 * KIB, size // profile[2])
            gap = 0 if profile[2] == 1 else 16 * KIB
            files.append(FileSpec(
                path=f"/{name}/f{fi}", size=size, piece=piece, gap=gap,
            ))
        specs.append(VolumeSpec(
            index=index,
            name=name,
            fs_type=fs_type,
            device=device,
            profile=profile[0],
            workload=workload,
            files=tuple(files),
            workload_seed=f"repro.fleet:{config.seed}:wl:{index}",
        ))
    return specs
