"""The fleet controller: defrag-as-a-service over N simulated volumes.

Each scheduler *tick* the controller:

1. rolls the fleet-wide migration budget window,
2. admits queued (triggered) volumes up to the concurrent-job cap,
3. marches every volume through its tick window of virtual time —
   volumes with a running job co-schedule foreground traffic and the
   defrag actor on the shared device via
   :func:`repro.sim.engine.run_concurrently` (real interference, like
   the paper's co-running experiments); job-less volumes just run their
   foreground loop,
4. retires finished/crashed jobs (starting their cooldown) and takes a
   fragmentation census that queues newly-triggered volumes for the
   *next* tick's admission pass.

Volumes never share a device, so ticks are independent per volume and
the march order is fixed (spec order) — with every random draw seed-keyed
the whole run is deterministic, which :func:`run_fleet` turns into a
byte-reproducible fleet fingerprint.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs import hooks as obs_hooks
from ..faults import hooks as fault_hooks
from ..faults.hooks import FaultPlane
from ..sim.engine import run_concurrently
from .admission import AdmissionController, TickBudget
from .jobs import DefragJob, FAILED, RUNNING
from .report import FleetReport, TickRow, percentile
from .slo import FleetSlo
from .spec import FleetConfig, make_volume_specs
from .volume import Volume


class FleetController:
    """Watches volumes, admits FragPicker jobs, enforces the budget.

    With an optional :class:`~repro.fleet.slo.FleetSlo` monitor attached
    (``repro fleet --slo``) every tick also feeds the SLO plane — fg
    read latencies, budget utilisation, above-trigger fraction — and a
    volume whose latency SLO fires a burn alert is promoted to the front
    of the admission queue; alerts land in the report's ``slo`` section.
    Without a monitor (the default) the run is byte-identical to before.
    """

    def __init__(
        self,
        config: FleetConfig,
        volumes: List[Volume],
        slo: Optional[FleetSlo] = None,
    ) -> None:
        self.config = config
        self.volumes = volumes
        self.by_name: Dict[str, Volume] = {v.spec.name: v for v in volumes}
        self.budget = TickBudget(config.budget_per_tick)
        self.admission = AdmissionController(config.max_jobs, self.budget)
        self.slo = slo
        #: name -> first tick the volume is eligible to trigger again
        self.cooldown_until: Dict[str, int] = {}
        report_config = config.to_dict()
        if slo is not None:
            # gating changes scheduling: stamp it into the fingerprinted
            # config so gated and ungated documents never read as equals
            report_config["slo"] = slo.config_dict()
        self.report = FleetReport(
            config=report_config, volumes=len(volumes),
        )
        self._finished_jobs: List[DefragJob] = []

    # -- census --------------------------------------------------------

    def census(self) -> Dict[str, float]:
        """Sample every volume's mean extents-per-file at its own clock."""
        return {v.spec.name: v.frag_level() for v in self.volumes}

    def _queue_triggered(self, levels: Dict[str, float], tick: int) -> None:
        """Queue volumes above the trigger (respecting cooldown)."""
        for volume in self.volumes:
            name = volume.spec.name
            if levels[name] <= self.config.trigger:
                continue
            if tick < self.cooldown_until.get(name, 0):
                continue
            self.admission.request(name)

    # -- one tick ------------------------------------------------------

    def _build_job(self, name: str, tick: int) -> DefragJob:
        volume = self.by_name[name]
        with volume.scope():
            return DefragJob(volume, self.config, tick)

    def run_tick(self, tick: int) -> TickRow:
        config = self.config
        self.budget.begin_tick()
        admitted = self.admission.admit(
            lambda name: self._build_job(name, tick)
        )
        for job in admitted:
            # a running job watches its volume closely: nested attach on
            # top of the fleet-wide attach (refcounted, see sampler)
            job.volume.sampler.attach()
        jobs_running = len(self.admission.running)
        fg_before = sum(v.fg_ops for v in self.volumes)
        read_counts = (
            {v.spec.name: len(v.read_latencies) for v in self.volumes}
            if self.slo is not None else None
        )

        for volume in self.volumes:
            _, window_end = volume.window(tick)
            job = self.admission.running.get(volume.spec.name)
            # march inside the volume's obs scope: the engine's actor
            # events and any journal recovery read the live facade
            with volume.scope():
                if isinstance(job, DefragJob) and job.state == RUNNING:
                    contexts = run_concurrently(
                        {
                            "fg": volume.foreground_actor(
                                window_end, config.fg_ops_per_tick
                            ),
                            "defrag": job.actor(self.budget, window_end),
                        },
                        start=volume.now,
                        until=window_end,
                    )
                    end = max(ctx.now for ctx in contexts.values())
                    volume.now = max(volume.now, window_end, end)
                else:
                    volume.run_foreground(window_end, config.fg_ops_per_tick)

        for name, job in list(self.admission.running.items()):
            if isinstance(job, DefragJob) and job.state != RUNNING:
                self.admission.finish(name, failed=job.state == FAILED)
                self.cooldown_until[name] = tick + 1 + config.cooldown_ticks
                job.volume.sampler.detach()
                self._finished_jobs.append(job)

        levels = self.census()
        self._queue_triggered(levels, tick + 1)
        row = TickRow(
            tick=tick,
            volumes_above=sum(
                1 for level in levels.values() if level > config.trigger
            ),
            migrated_bytes=self.budget.spent_this_tick,
            jobs_running=jobs_running,
            jobs_admitted=len(admitted),
            jobs_waiting=len(self.admission.queue),
            fg_ops=sum(v.fg_ops for v in self.volumes) - fg_before,
        )
        self.report.ticks.append(row)
        self._mirror_tick(row)
        if self.slo is not None:
            latencies = {
                v.spec.name: v.read_latencies[read_counts[v.spec.name]:]
                for v in self.volumes
            }
            _, promote = self.slo.record_tick(
                tick, row, latencies, len(self.volumes)
            )
            for name in promote:
                if self.admission.promote(name):
                    self.slo.record_promotion(tick, name)
        return row

    # -- the whole run -------------------------------------------------

    def begin(self) -> None:
        """Initial census + trigger pass (before the first tick)."""
        levels = self.census()
        self.report.volumes_above_start = sum(
            1 for level in levels.values() if level > self.config.trigger
        )
        self._queue_triggered(levels, tick=0)

    def finish(self) -> FleetReport:
        """Close the budget window and finalise the report."""
        self.budget.close()
        self._finalize()
        return self.report

    def run(self) -> FleetReport:
        self.begin()
        for tick in range(self.config.ticks):
            self.run_tick(tick)
        return self.finish()

    def _finalize(self) -> None:
        report = self.report
        # abandon jobs still running when the last tick closes (their
        # partial migrations are already durable; the report says so)
        for name, job in sorted(self.admission.running.items()):
            if isinstance(job, DefragJob):
                job.abandon(job.volume.now)
                self._finished_jobs.append(job)
        report.jobs_admitted = self.admission.admitted
        report.jobs_completed = self.admission.completed
        report.jobs_failed = self.admission.failed
        report.jobs_still_running = len(self.admission.running)
        report.jobs_deferred_ticks = self.admission.deferred_ticks
        report.migrated_payload_bytes = self.budget.spent_total
        for job in self._finished_jobs:
            job_report = job.report
            report.defrag_read_bytes += job_report.read_bytes
            report.defrag_write_bytes += job_report.write_bytes
            report.ranges_migrated += job_report.ranges_migrated
            report.ranges_failed += job_report.ranges_failed
            report.retries += job_report.retries
            report.jobs_budget_blocked_ticks += job.blocked_ticks
            report.recovered_entries += job.recovered_entries
            report.journal_pending += len(job.picker.journal)
        latencies: List[float] = []
        for volume in self.volumes:
            latencies.extend(volume.read_latencies)
            report.fg_ops += volume.fg_ops
            report.fg_errors += volume.fg_errors
        report.fg_read_count = len(latencies)
        report.fg_read_p50_s = percentile(latencies, 0.50)
        report.fg_read_p99_s = percentile(latencies, 0.99)
        report.fg_read_mean_s = (
            sum(latencies) / len(latencies) if latencies else 0.0
        )
        report.fg_read_max_s = max(latencies, default=0.0)
        if report.ticks:
            report.volumes_above_end = report.ticks[-1].volumes_above
        if self.slo is not None:
            report.slo = self.slo.report_section()
        self._mirror_summary(latencies)
        self._harvest_volumes()

    def _harvest_volumes(self) -> None:
        """Merge every volume's telemetry into the ambient plane.

        Spec order, ``<volume>/`` track prefixes — exactly the merge the
        sharded run performs on the parent, so armed serial and
        ``--workers N`` fleets export identical planes.
        """
        obs = obs_hooks.current()
        if not obs.enabled:
            return
        from ..obs import harvest

        for volume in self.volumes:
            if volume.obs is not None:
                harvest.capture(volume.obs).merge_into(
                    obs, track_prefix=f"{volume.spec.name}/"
                )

    # -- observability mirroring ---------------------------------------

    def _mirror_tick(self, row: TickRow) -> None:
        obs = obs_hooks.current()
        if not obs.enabled:
            return
        now = max((v.now for v in self.volumes), default=0.0)
        obs.event(
            "fleet.tick", now, track="fleet",
            tick=row.tick, volumes_above=row.volumes_above,
            migrated_bytes=row.migrated_bytes,
            jobs_running=row.jobs_running, jobs_waiting=row.jobs_waiting,
        )
        registry = obs.registry
        registry.gauge("fleet.volumes_above").set(row.volumes_above)
        registry.gauge("fleet.jobs_running").set(row.jobs_running)
        registry.gauge("fleet.jobs_waiting").set(row.jobs_waiting)
        registry.counter("fleet.migrated_bytes").inc(row.migrated_bytes)
        registry.counter("fleet.fg_ops").inc(row.fg_ops)

    def _mirror_summary(self, latencies: List[float]) -> None:
        obs = obs_hooks.current()
        if not obs.enabled:
            return
        registry = obs.registry
        histogram = registry.histogram("fleet.fg_read_latency_s")
        for latency in latencies:
            histogram.observe(latency)
        registry.counter("fleet.jobs_admitted").inc(self.admission.admitted)
        registry.counter("fleet.jobs_completed").inc(self.admission.completed)
        registry.counter("fleet.jobs_failed").inc(self.admission.failed)
        registry.counter("fleet.jobs_deferred_ticks").inc(
            self.admission.deferred_ticks
        )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def build_volumes(config: FleetConfig) -> List[Volume]:
    """Instantiate every volume of the fleet (setup is fault-free even
    when a storm is armed: the plane activates only for the run).

    When the ambient instrumentation is armed, each volume is built
    under its own child instrumentation (mirroring the ambient ring
    sizes and provenance arming) so its layers record per-volume; the
    controller merges the per-volume planes back at the end of the run
    (:meth:`FleetController._harvest_volumes`).  Unarmed runs are
    untouched — no child facades, no scopes, the pre-harvest fast path.
    """
    ambient = obs_hooks.current()
    if not ambient.enabled:
        return [Volume(spec, config) for spec in make_volume_specs(config)]
    from ..obs import harvest

    volumes: List[Volume] = []
    for spec in make_volume_specs(config):
        child = harvest.child_of(ambient)
        with obs_hooks.use(child):
            volume = Volume(spec, config)
        volume.obs = child
        volumes.append(volume)
    return volumes


def run_fleet(
    config: FleetConfig,
    slo: Optional[FleetSlo] = None,
    on_tick=None,
    workers: Optional[int] = None,
) -> FleetReport:
    """Build the fleet, run the scheduler, return the SLO report.

    With ``config.faults`` set, the seeded fleet storm from
    :meth:`FleetConfig.fault_plan` is installed around volume
    construction (layers capture the plane then) but activated only
    after setup, so faults hit the run — including one mid-migration
    power-off that must recover through the journal — never the build.

    ``slo`` attaches a :class:`~repro.fleet.slo.FleetSlo` monitor (burn
    alerts + admission gating); ``on_tick(controller, tick, row)`` is
    called after every tick — the ``repro watch`` dashboard's frame
    hook.

    ``workers`` shards the volumes across persistent worker processes
    (:mod:`repro.fleet.par`); the report is byte-identical to the serial
    run.  Incompatible with ``on_tick`` (there is no live controller to
    hand to the hook) and with ``config.faults`` (one global storm).
    """
    if workers is not None:
        from ..errors import InvalidArgument
        from .par import run_fleet_parallel

        if on_tick is not None:
            raise InvalidArgument(
                "--workers is incompatible with a live on_tick hook "
                "(repro watch); run the dashboard serially"
            )
        return run_fleet_parallel(config, workers, slo=slo)
    if not config.faults:
        return _run(config, slo=slo, on_tick=on_tick)
    plane = FaultPlane(config.fault_plan())
    with fault_hooks.use(plane):
        return _run(config, plane, slo=slo, on_tick=on_tick)


def _run(
    config: FleetConfig,
    plane: Optional[FaultPlane] = None,
    slo: Optional[FleetSlo] = None,
    on_tick=None,
) -> FleetReport:
    volumes = build_volumes(config)
    for volume in volumes:
        volume.sampler.attach()
    if plane is not None:
        plane.activate()
    try:
        controller = FleetController(config, volumes, slo=slo)
        controller.begin()
        for tick in range(config.ticks):
            row = controller.run_tick(tick)
            if on_tick is not None:
                on_tick(controller, tick, row)
        return controller.finish()
    finally:
        if plane is not None:
            plane.deactivate()
        for volume in volumes:
            volume.close()
