"""One admitted FragPicker job, stepped by the fleet controller.

A job wraps a :class:`~repro.core.fragpicker.MigrationCursor` over the
volume's files (bypass plans — the fleet defragments whole files, the
FIEMAP check skips already-contiguous pieces).  Each tick the controller
runs the job's *actor* co-scheduled with the volume's foreground traffic,
so migration and application I/O interleave on the shared device exactly
like the paper's Figure 2/10 co-running experiments.

Before migrating a range of length L the actor must reserve L bytes from
the fleet's :class:`~repro.fleet.admission.TickBudget`; when the budget
runs dry the job parks until next tick.  Transient faults retry inside
FragPicker (bounded backoff, skip-and-report).  A power-off crash ends
the job: the volume recovers via :class:`MigrationJournal` on the spot
and the fleet moves on — one crashed migration never stalls the fleet.
"""

from __future__ import annotations

from typing import Optional

from ..core import FragPicker, FragPickerConfig, FileRangeList
from ..core.frag_check import range_is_fragmented
from ..core.report import DefragReport
from ..errors import InjectedCrash
from ..faults import hooks as fault_hooks
from .spec import FleetConfig
from .volume import Volume

#: job lifecycle states
RUNNING, DONE, FAILED = "running", "done", "failed"


class DefragJob:
    """One volume's admitted defragmentation, resumable across ticks."""

    def __init__(self, volume: Volume, config: FleetConfig, tick: int) -> None:
        self.volume = volume
        self.admitted_tick = tick
        self.state = RUNNING
        self.migrated_bytes = 0          # reserved payload (budget units)
        self.blocked_ticks = 0           # ticks parked on a dry budget
        self.recovered_entries = 0       # journal entries replayed after a crash
        self.picker = FragPicker(
            volume.fs, FragPickerConfig(retry=config.retry)
        )
        # plan only ranges that are fragmented *now*: the budget then
        # charges (almost) exactly what will migrate, instead of paying
        # for ranges the FIEMAP check would skip anyway
        plans = []
        for plan in self.picker.bypass_plans(volume.paths):
            keep = [
                r for r in plan.ranges
                if range_is_fragmented(volume.fs, plan.path, r)
            ]
            if keep:
                plans.append(FileRangeList(plan.ino, plan.path, keep))
        self.cursor = self.picker.cursor(plans=plans, now=volume.now)

    @property
    def name(self) -> str:
        return self.volume.spec.name

    @property
    def report(self) -> DefragReport:
        return self.cursor.report

    def actor(self, budget, until: float):
        """Generator for :func:`repro.sim.engine.run_concurrently`.

        Migrates ranges (one yield each) while the tick window is open
        and the fleet budget holds out; parks otherwise.  Sets ``state``
        when the plan is exhausted or a crash ends the job.
        """
        def _run(ctx):
            blocked = False
            while ctx.now < until:
                item = self.cursor.peek()
                if item is None:
                    break
                _, file_range = item
                if not budget.try_reserve(file_range.length):
                    blocked = True
                    break
                try:
                    ctx.now = self.cursor.migrate_next(ctx.now)
                except InjectedCrash:
                    ctx.now = self._recover_after_crash(ctx.now)
                    self.state = FAILED
                    self.cursor.finish(ctx.now)
                    return
                self.migrated_bytes += file_range.length
                yield
            if blocked:
                self.blocked_ticks += 1
            if self.cursor.exhausted and self.state == RUNNING:
                self.state = DONE
                self.cursor.finish(ctx.now)
        return _run

    def abandon(self, now: float) -> None:
        """Close the report of a job still running when the fleet stops."""
        self.cursor.finish(now)

    def _recover_after_crash(self, now: float) -> float:
        """Power-off mid-migration: replay the journal on the live volume.

        The fault plane is paused during recovery (a recovery pass must
        not be re-crashed by the same storm) and resumed after, mirroring
        the operator-level recovery of :mod:`repro.faults.campaign`.
        """
        plane = fault_hooks.current()
        was_active = getattr(plane, "active", False)
        if was_active:
            plane.deactivate()
        try:
            now, recovery = self.picker.journal.recover(self.volume.fs, now=now)
            self.recovered_entries += recovery.entries_replayed
        finally:
            if was_active:
                plane.activate()
        return now
