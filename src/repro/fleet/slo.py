"""Fleet SLO monitoring and admission gating (``repro fleet --slo``).

Wraps an :class:`~repro.obs.slo.SloPlane` around one fleet run: every
scheduler tick the controller feeds this monitor the tick's foreground
read latencies (fleet-wide *and* per volume), the budget utilisation,
and the above-trigger census fraction; the plane evaluates the closed
tick window and the monitor turns verdicts into scheduling pressure —
a volume whose own read-latency SLO fires a burn alert **jumps the
admission queue** (the controller promotes it to the queue front), and
every alert lands in the FLEET report's ``slo`` section.

Window geometry is one window per scheduler tick, so burn rates read
directly as "ticks of bad behaviour": a fast burn of 4 means this tick
spent budget four times faster than the target allows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import hooks as obs_hooks
from ..obs.slo import SloPlane, SloSpec, build_document
from .spec import FleetConfig, make_volume_specs

#: default foreground read-latency objective (per read, seconds) — sized
#: so a healthy mixed fleet complies and a fault storm's spikes do not
DEFAULT_LATENCY_SLO_S = 0.002

#: prefix of per-volume gating SLOs (their alerts promote the volume)
VOLUME_SLO_PREFIX = "vol."


def fleet_specs(
    config: FleetConfig, latency_slo_s: float = DEFAULT_LATENCY_SLO_S
) -> List[SloSpec]:
    """The default fleet-level objectives for one run."""
    specs = [
        SloSpec(
            name="fg_read_latency",
            metric="fleet.fg_read_latency_s",
            threshold=latency_slo_s, objective="le", target=0.95,
            fast_windows=1, slow_windows=4, fast_burn=4.0, slow_burn=2.0,
        ),
        SloSpec(
            name="frag_backlog",
            metric="fleet.volumes_above_frac",
            threshold=0.25, objective="le", target=0.50,
            fast_windows=1, slow_windows=4, fast_burn=1.8, slow_burn=1.5,
        ),
    ]
    if config.budget_per_tick is not None:
        # saturated ticks mean the fleet is migration-starved
        specs.append(SloSpec(
            name="budget_saturation",
            metric="fleet.budget_util",
            threshold=0.99, objective="le", target=0.75,
            fast_windows=1, slow_windows=4, fast_burn=3.0, slow_burn=2.0,
        ))
    return specs


def volume_spec(name: str, latency_slo_s: float) -> SloSpec:
    """The per-volume gating objective (alert => jump the queue)."""
    return SloSpec(
        name=f"{VOLUME_SLO_PREFIX}{name}.read_latency",
        metric=f"vol.{name}.read_latency_s",
        threshold=latency_slo_s, objective="le", target=0.90,
        fast_windows=1, slow_windows=2, fast_burn=2.0, slow_burn=1.5,
    )


class FleetSlo:
    """One fleet run's SLO monitor: telemetry in, alerts + gating out."""

    def __init__(
        self,
        config: FleetConfig,
        volume_names: Sequence[str],
        latency_slo_s: float = DEFAULT_LATENCY_SLO_S,
        specs: Optional[Sequence[SloSpec]] = None,
    ) -> None:
        self.config = config
        self.latency_slo_s = latency_slo_s
        self._fleet_specs = (
            list(specs) if specs is not None else fleet_specs(config, latency_slo_s)
        )
        self._volume_specs = [
            volume_spec(name, latency_slo_s) for name in sorted(volume_names)
        ]
        self.plane = SloPlane(
            self._fleet_specs + self._volume_specs,
            window=config.tick_seconds,
        )
        #: volumes promoted by gating, in promotion order (report evidence)
        self.promotions: List[Dict[str, object]] = []

    @classmethod
    def for_config(
        cls,
        config: FleetConfig,
        latency_slo_s: float = DEFAULT_LATENCY_SLO_S,
        specs: Optional[Sequence[SloSpec]] = None,
    ) -> "FleetSlo":
        """Build the monitor for a config (derives the volume names)."""
        names = [spec.name for spec in make_volume_specs(config)]
        return cls(config, names, latency_slo_s=latency_slo_s, specs=specs)

    # -- per-tick ingestion + evaluation -------------------------------

    def record_tick(
        self,
        tick: int,
        row,
        latencies: Dict[str, List[float]],
        volumes_total: int,
    ) -> Tuple[List[Dict[str, object]], List[str]]:
        """Feed one tick's telemetry, evaluate its window.

        Returns ``(alerts fired this tick, volume names to promote)``.
        ``latencies`` maps volume name -> that volume's read latencies
        completed during this tick.
        """
        # the carrying instrumentation may have been armed after
        # construction; rebind so events/gauges mirror when it is live
        self.plane.bind(obs_hooks.current())
        for name in sorted(latencies):
            for latency in latencies[name]:
                self.plane.observe_at("fleet.fg_read_latency_s", tick, latency)
                self.plane.observe_at(f"vol.{name}.read_latency_s", tick, latency)
        budget = self.config.budget_per_tick
        if budget is not None:
            self.plane.observe_at(
                "fleet.budget_util", tick, row.migrated_bytes / budget
            )
        if volumes_total:
            self.plane.observe_at(
                "fleet.volumes_above_frac", tick,
                row.volumes_above / volumes_total,
            )
        fired = self.plane.evaluate_through(tick)
        promote = []
        for alert in fired:
            slo_name = str(alert["slo"])
            if slo_name.startswith(VOLUME_SLO_PREFIX):
                # vol.<name>.read_latency -> <name>
                volume = slo_name[len(VOLUME_SLO_PREFIX):].rsplit(".", 1)[0]
                if volume not in promote:
                    promote.append(volume)
        return fired, promote

    def record_promotion(self, tick: int, volume: str) -> None:
        self.promotions.append({"tick": tick, "volume": volume})

    # -- whole-run views -----------------------------------------------

    def fleet_summaries(self) -> Dict[str, Dict[str, object]]:
        """Fleet-level SLO summaries only (the dashboard's table)."""
        return {
            spec.name: self.plane.evaluators[spec.name].summary()
            for spec in self._fleet_specs
        }

    def firing(self) -> List[str]:
        """Fleet-level SLOs whose latest window is alerting."""
        fleet_names = {spec.name for spec in self._fleet_specs}
        return [name for name in self.plane.firing() if name in fleet_names]

    def volume_alerts(self) -> int:
        """Total per-volume gating alerts fired over the run."""
        return sum(
            1 for row in self.plane.alerts
            if str(row["slo"]).startswith(VOLUME_SLO_PREFIX)
        )

    def config_dict(self) -> Dict[str, object]:
        """Gating marker folded into the report's config (fingerprinted)."""
        return {
            "latency_slo_s": self.latency_slo_s,
            "specs": [spec.name for spec in self._fleet_specs],
        }

    def report_section(self) -> Dict[str, object]:
        """The FLEET document's ``slo`` section."""
        return {
            "latency_slo_s": self.latency_slo_s,
            "slos": self.fleet_summaries(),
            "alerts": list(self.plane.alerts),
            "volume_alerts": self.volume_alerts(),
            "promotions": list(self.promotions),
        }

    def document(self, label: str, source: Dict[str, object]) -> Dict[str, object]:
        """The standalone fingerprinted ``repro.slo/v1`` document."""
        return build_document(label, source, self.plane)
