"""Parallel fleet ticks: volumes sharded across persistent workers.

Volumes never share a device, so a tick's per-volume marches are
independent — except for the fleet-wide :class:`TickBudget`, which
running defrag jobs draw from in spec order.  The sharded run keeps the
serial run's exact semantics (the FLEET document is byte-identical,
asserted by the determinism tests) by splitting a tick into:

- **serial job marches**: each running job's volume is marched one at a
  time in spec order; the parent sends the budget's current tick spend
  down with the call, the worker replays the draw sequence against a
  local budget preset to that spend, and the parent applies the
  returned reservation delta before marching the next job.  Budget
  arithmetic is integer, so the replayed sequence is exact.
- **fan-out plain marches**: every job-less volume runs its foreground
  loop concurrently across the shards (the bulk of the fleet, and the
  part that actually parallelises).

Admission, cooldown, census triggering, SLO gating, and the report all
stay in the parent, fed by values returned from the shards; per-volume
state (filesystems, jobs, samplers, RNG streams) lives its whole life
inside one worker, so no simulation state ever crosses a process
boundary mid-run.

Sharding is rejected for ``config.faults`` runs: the fleet storm is one
globally-seeded :class:`FaultPlane` whose RNG streams advance across
volumes — splitting it would change which volume each fault hits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import InvalidArgument
from ..obs import hooks as obs_hooks
from ..par import StickyPool, resolve_workers
from .admission import AdmissionController, TickBudget
from .jobs import DefragJob, FAILED, RUNNING
from .report import FleetReport, TickRow, percentile
from .spec import FleetConfig, make_volume_specs


class FleetShard:
    """Worker-side state: this shard's volumes and their jobs.

    ``harvest_spec`` (a picklable :class:`repro.obs.harvest.HarvestSpec`,
    set when the parent's instrumentation is armed) gives every volume
    its own child instrumentation — the same per-volume planes the armed
    serial controller builds — captured at :meth:`finalize` and merged
    by the parent in global spec order.
    """

    def __init__(
        self,
        config: FleetConfig,
        indices: List[int],
        harvest_spec=None,
    ) -> None:
        from .volume import Volume

        self.config = config
        self.harvest_spec = harvest_spec
        specs = make_volume_specs(config)
        self.volumes: Dict[str, "Volume"] = {}
        for index in indices:
            if harvest_spec is not None:
                child = harvest_spec.child()
                with obs_hooks.use(child):
                    volume = Volume(specs[index], config)
                volume.obs = child
            else:
                volume = Volume(specs[index], config)
            volume.sampler.attach()  # the fleet-wide attach
            self.volumes[volume.spec.name] = volume
        self.jobs: Dict[str, DefragJob] = {}
        self._finished: List[DefragJob] = []

    def census(self) -> Dict[str, float]:
        return {
            name: volume.frag_level() for name, volume in self.volumes.items()
        }

    def admit(self, name: str, tick: int) -> str:
        volume = self.volumes[name]
        with volume.scope():
            job = DefragJob(volume, self.config, tick)
        self.jobs[name] = job
        job.volume.sampler.attach()  # nested attach, like the controller
        return job.state

    def march_job(
        self, name: str, tick: int, spent_this_tick: int
    ) -> Dict[str, object]:
        """Co-schedule one running job with its volume's foreground.

        The local budget starts at the parent's current tick spend, so
        every ``try_reserve`` sees exactly the number the serial run's
        shared budget would have shown it.
        """
        from ..sim.engine import run_concurrently

        volume = self.volumes[name]
        job = self.jobs[name]
        budget = TickBudget(self.config.budget_per_tick)
        budget.spent_this_tick = spent_this_tick
        _, window_end = volume.window(tick)
        ops_before = volume.fg_ops
        reads_before = len(volume.read_latencies)
        with volume.scope():
            contexts = run_concurrently(
                {
                    "fg": volume.foreground_actor(
                        window_end, self.config.fg_ops_per_tick
                    ),
                    "defrag": job.actor(budget, window_end),
                },
                start=volume.now,
                until=window_end,
            )
            end = max(ctx.now for ctx in contexts.values())
        volume.now = max(volume.now, window_end, end)
        return {
            "reserved": budget.spent_this_tick - spent_this_tick,
            "state": job.state,
            "fg_ops": volume.fg_ops - ops_before,
            "latencies": volume.read_latencies[reads_before:],
            "now": volume.now,
        }

    def march_plain(
        self, tick: int, names: List[str]
    ) -> Dict[str, Dict[str, object]]:
        """Foreground-only marches for this shard's job-less volumes."""
        out: Dict[str, Dict[str, object]] = {}
        for name in names:
            volume = self.volumes[name]
            _, window_end = volume.window(tick)
            ops_before = volume.fg_ops
            reads_before = len(volume.read_latencies)
            with volume.scope():
                volume.run_foreground(window_end, self.config.fg_ops_per_tick)
            out[name] = {
                "fg_ops": volume.fg_ops - ops_before,
                "latencies": volume.read_latencies[reads_before:],
                "now": volume.now,
            }
        return out

    def retire(self, name: str) -> None:
        job = self.jobs.pop(name)
        job.volume.sampler.detach()
        self._finished.append(job)

    def finalize(self, still_running: List[str]) -> Dict[str, object]:
        """Abandon leftover jobs, then return the report contributions."""
        for name in still_running:
            job = self.jobs.pop(name)
            job.abandon(job.volume.now)
            self._finished.append(job)
        jobs = {
            "defrag_read_bytes": 0, "defrag_write_bytes": 0,
            "ranges_migrated": 0, "ranges_failed": 0, "retries": 0,
            "jobs_budget_blocked_ticks": 0, "recovered_entries": 0,
            "journal_pending": 0,
        }
        for job in self._finished:
            job_report = job.report
            jobs["defrag_read_bytes"] += job_report.read_bytes
            jobs["defrag_write_bytes"] += job_report.write_bytes
            jobs["ranges_migrated"] += job_report.ranges_migrated
            jobs["ranges_failed"] += job_report.ranges_failed
            jobs["retries"] += job_report.retries
            jobs["jobs_budget_blocked_ticks"] += job.blocked_ticks
            jobs["recovered_entries"] += job.recovered_entries
            jobs["journal_pending"] += len(job.picker.journal)
        volumes = {
            name: {
                "latencies": volume.read_latencies,
                "fg_ops": volume.fg_ops,
                "fg_errors": volume.fg_errors,
            }
            for name, volume in self.volumes.items()
        }
        telemetry = {}
        if self.harvest_spec is not None:
            from ..obs import harvest

            telemetry = {
                name: harvest.capture(volume.obs)
                for name, volume in self.volumes.items()
                if volume.obs is not None
            }
        return {"jobs": jobs, "volumes": volumes, "telemetry": telemetry}

    def close(self) -> None:
        for volume in self.volumes.values():
            volume.close()


def _build_fleet_shard(payload: Tuple) -> FleetShard:
    config, indices, harvest_spec = payload
    return FleetShard(config, indices, harvest_spec)


def run_fleet_parallel(config: FleetConfig, workers: int, slo=None) -> FleetReport:
    """Run the fleet with volumes sharded across ``workers`` processes.

    Byte-identical to :func:`repro.fleet.controller.run_fleet` for the
    same config (any worker count, including 1).  Fault storms cannot be
    sharded — pass ``workers=None``/omit ``--workers`` for those.
    """
    from .controller import run_fleet

    workers = resolve_workers(workers)
    if workers is None or config.volumes == 0:
        return run_fleet(config, slo=slo)
    if config.faults:
        raise InvalidArgument(
            "--workers cannot shard a fleet fault storm: the storm is one "
            "globally-seeded plane whose RNG streams span volumes"
        )

    specs = make_volume_specs(config)
    shard_count = min(workers, len(specs))
    assignments = [
        list(range(shard, len(specs), shard_count))
        for shard in range(shard_count)
    ]
    owner: Dict[str, int] = {}
    for shard, indices in enumerate(assignments):
        for index in indices:
            owner[specs[index].name] = shard

    budget = TickBudget(config.budget_per_tick)
    admission = AdmissionController(config.max_jobs, budget)
    cooldown_until: Dict[str, int] = {}
    report_config = config.to_dict()
    if slo is not None:
        report_config["slo"] = slo.config_dict()
    report = FleetReport(config=report_config, volumes=len(specs))
    job_states: Dict[str, str] = {}
    volume_nows: Dict[str, float] = {}
    jobs_finished_totals: Optional[Dict[str, int]] = None

    def queue_triggered(levels: Dict[str, float], tick: int) -> None:
        for spec in specs:
            if levels[spec.name] <= config.trigger:
                continue
            if tick < cooldown_until.get(spec.name, 0):
                continue
            admission.request(spec.name)

    def fleet_census(pool: StickyPool) -> Dict[str, float]:
        levels: Dict[str, float] = {}
        for shard_levels in pool.call_all("census"):
            levels.update(shard_levels)
        return levels

    def mirror_tick(row: TickRow) -> None:
        obs = obs_hooks.current()
        if not obs.enabled:
            return
        now = max(volume_nows.values(), default=0.0)
        obs.event(
            "fleet.tick", now, track="fleet",
            tick=row.tick, volumes_above=row.volumes_above,
            migrated_bytes=row.migrated_bytes,
            jobs_running=row.jobs_running, jobs_waiting=row.jobs_waiting,
        )
        registry = obs.registry
        registry.gauge("fleet.volumes_above").set(row.volumes_above)
        registry.gauge("fleet.jobs_running").set(row.jobs_running)
        registry.gauge("fleet.jobs_waiting").set(row.jobs_waiting)
        registry.counter("fleet.migrated_bytes").inc(row.migrated_bytes)
        registry.counter("fleet.fg_ops").inc(row.fg_ops)

    ambient = obs_hooks.current()
    harvest_spec = None
    if ambient.enabled:
        from ..obs.harvest import HarvestSpec

        harvest_spec = HarvestSpec.from_obs(ambient)

    with StickyPool(
        _build_fleet_shard,
        [(config, indices, harvest_spec) for indices in assignments],
        label="fleet shard",
    ) as pool:
        # begin(): initial census + trigger pass
        levels = fleet_census(pool)
        report.volumes_above_start = sum(
            1 for level in levels.values() if level > config.trigger
        )
        queue_triggered(levels, tick=0)

        for tick in range(config.ticks):
            budget.begin_tick()
            admitted = []
            while admission.queue and len(admission.running) < config.max_jobs:
                name = admission.queue.popleft()
                job_states[name] = pool.call(owner[name], "admit", name, tick)
                admission.running[name] = name
                admission.admitted += 1
                admitted.append(name)
            admission.deferred_ticks += len(admission.queue)
            jobs_running = len(admission.running)

            # job marches: serial, spec order — the budget draw sequence
            fg_ops_total = 0
            tick_latencies: Dict[str, List[float]] = {}
            plain_names: Dict[int, List[str]] = {}
            for spec in specs:
                name = spec.name
                if name in admission.running and job_states[name] == RUNNING:
                    outcome = pool.call(
                        owner[name], "march_job", name, tick,
                        budget.spent_this_tick,
                    )
                    budget.spent_this_tick += outcome["reserved"]
                    budget.spent_total += outcome["reserved"]
                    job_states[name] = outcome["state"]
                    fg_ops_total += outcome["fg_ops"]
                    tick_latencies[name] = outcome["latencies"]
                    volume_nows[name] = outcome["now"]
                else:
                    plain_names.setdefault(owner[name], []).append(name)
            # plain marches: all shards concurrently
            marched = pool.call_each([
                (shard, "march_plain", (tick, names))
                for shard, names in plain_names.items()
            ])
            for shard_out in marched:
                for name, outcome in shard_out.items():
                    fg_ops_total += outcome["fg_ops"]
                    tick_latencies[name] = outcome["latencies"]
                    volume_nows[name] = outcome["now"]

            # retire in running-map insertion order, like the controller
            for name in list(admission.running):
                if job_states[name] != RUNNING:
                    admission.finish(name, failed=job_states[name] == FAILED)
                    cooldown_until[name] = tick + 1 + config.cooldown_ticks
                    pool.call(owner[name], "retire", name)
                    del job_states[name]

            levels = fleet_census(pool)
            queue_triggered(levels, tick + 1)
            row = TickRow(
                tick=tick,
                volumes_above=sum(
                    1 for level in levels.values() if level > config.trigger
                ),
                migrated_bytes=budget.spent_this_tick,
                jobs_running=jobs_running,
                jobs_admitted=len(admitted),
                jobs_waiting=len(admission.queue),
                fg_ops=fg_ops_total,
            )
            report.ticks.append(row)
            mirror_tick(row)
            if slo is not None:
                latencies = {
                    spec.name: tick_latencies.get(spec.name, [])
                    for spec in specs
                }
                _, promote = slo.record_tick(tick, row, latencies, len(specs))
                for name in promote:
                    if admission.promote(name):
                        slo.record_promotion(tick, name)

        # finish(): close the budget, gather every shard's contribution
        budget.close()
        still_running = sorted(admission.running)
        by_shard: Dict[int, List[str]] = {}
        for name in still_running:
            by_shard.setdefault(owner[name], []).append(name)
        finals = pool.call_each([
            (shard, "finalize", (by_shard.get(shard, []),))
            for shard in range(len(assignments))
        ])
        jobs_finished_totals = {
            key: sum(final["jobs"][key] for final in finals)
            for key in finals[0]["jobs"]
        }
        volume_finals: Dict[str, Dict[str, object]] = {}
        volume_telemetry: Dict[str, object] = {}
        for final in finals:
            volume_finals.update(final["volumes"])
            volume_telemetry.update(final.get("telemetry", {}))

    report.jobs_admitted = admission.admitted
    report.jobs_completed = admission.completed
    report.jobs_failed = admission.failed
    report.jobs_still_running = len(admission.running)
    report.jobs_deferred_ticks = admission.deferred_ticks
    report.migrated_payload_bytes = budget.spent_total
    report.defrag_read_bytes = jobs_finished_totals["defrag_read_bytes"]
    report.defrag_write_bytes = jobs_finished_totals["defrag_write_bytes"]
    report.ranges_migrated = jobs_finished_totals["ranges_migrated"]
    report.ranges_failed = jobs_finished_totals["ranges_failed"]
    report.retries = jobs_finished_totals["retries"]
    report.jobs_budget_blocked_ticks = (
        jobs_finished_totals["jobs_budget_blocked_ticks"]
    )
    report.recovered_entries = jobs_finished_totals["recovered_entries"]
    report.journal_pending = jobs_finished_totals["journal_pending"]
    latencies: List[float] = []
    for spec in specs:  # global spec order, like the serial concatenation
        final = volume_finals[spec.name]
        latencies.extend(final["latencies"])
        report.fg_ops += final["fg_ops"]
        report.fg_errors += final["fg_errors"]
    report.fg_read_count = len(latencies)
    report.fg_read_p50_s = percentile(latencies, 0.50)
    report.fg_read_p99_s = percentile(latencies, 0.99)
    report.fg_read_mean_s = (
        sum(latencies) / len(latencies) if latencies else 0.0
    )
    report.fg_read_max_s = max(latencies, default=0.0)
    if report.ticks:
        report.volumes_above_end = report.ticks[-1].volumes_above
    if slo is not None:
        report.slo = slo.report_section()

    obs = obs_hooks.current()
    if obs.enabled:
        registry = obs.registry
        histogram = registry.histogram("fleet.fg_read_latency_s")
        for latency in latencies:
            histogram.observe(latency)
        registry.counter("fleet.jobs_admitted").inc(admission.admitted)
        registry.counter("fleet.jobs_completed").inc(admission.completed)
        registry.counter("fleet.jobs_failed").inc(admission.failed)
        registry.counter("fleet.jobs_deferred_ticks").inc(
            admission.deferred_ticks
        )
        # harvest merge in global spec order with per-volume track
        # prefixes — the exact merge the serial controller performs in
        # _harvest_volumes, so exports stay byte-identical
        for spec in specs:
            snapshot = volume_telemetry.get(spec.name)
            if snapshot is not None:
                snapshot.merge_into(obs, track_prefix=f"{spec.name}/")
    return report
