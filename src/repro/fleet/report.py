"""The fleet SLO report: population-scale figures, not single-run bars.

Everything in here derives from virtual time and seeded draws, so the
canonical JSON document — and therefore its sha256 fingerprint — is
byte-identical run to run for the same :class:`FleetConfig`, with or
without the observability plane armed (the fleet's determinism guard).

``compare`` reuses the bench pipeline's direction-aware
:class:`~repro.bench.regression.Comparison`/:class:`Finding` machinery:
foreground latency going up is a regression, foreground ops going down is
a regression, volumes left above the trigger going up is a regression.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bench.regression import Comparison, Finding
from ..constants import MIB

#: document schema tag; bump on incompatible layout changes
SCHEMA = "repro.fleet/v1"

#: headline metrics compared by :func:`compare`: name -> higher_is_better
_COMPARED = {
    "fg_read_p50_s": False,
    "fg_read_p99_s": False,
    "fg_read_mean_s": False,
    "fg_ops": True,
    "volumes_above_end": False,
}


def percentile(values: Sequence[float], q: float) -> float:
    """Deterministic nearest-rank percentile (q in [0, 1])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class TickRow:
    """One scheduler tick's fleet-wide readings."""

    tick: int
    volumes_above: int
    migrated_bytes: int
    jobs_running: int
    jobs_admitted: int
    jobs_waiting: int
    fg_ops: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "tick": self.tick,
            "volumes_above": self.volumes_above,
            "migrated_bytes": self.migrated_bytes,
            "jobs_running": self.jobs_running,
            "jobs_admitted": self.jobs_admitted,
            "jobs_waiting": self.jobs_waiting,
            "fg_ops": self.fg_ops,
        }


@dataclass
class FleetReport:
    """What one fleet run did, SLO-style."""

    config: Dict[str, object]
    volumes: int = 0
    ticks: List[TickRow] = field(default_factory=list)
    # jobs
    jobs_admitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_still_running: int = 0
    jobs_deferred_ticks: int = 0
    jobs_budget_blocked_ticks: int = 0
    recovered_entries: int = 0
    journal_pending: int = 0
    # migration traffic
    migrated_payload_bytes: int = 0
    defrag_read_bytes: int = 0
    defrag_write_bytes: int = 0
    ranges_migrated: int = 0
    ranges_failed: int = 0
    retries: int = 0
    # foreground SLO
    fg_ops: int = 0
    fg_errors: int = 0
    fg_read_count: int = 0
    fg_read_p50_s: float = 0.0
    fg_read_p99_s: float = 0.0
    fg_read_mean_s: float = 0.0
    fg_read_max_s: float = 0.0
    # fragmentation census
    volumes_above_start: int = 0
    volumes_above_end: int = 0
    # SLO monitor section (only when gating is armed; absent keeps old
    # documents byte-identical)
    slo: Optional[Dict[str, object]] = None

    # -- budget compliance ---------------------------------------------

    @property
    def max_tick_migrated(self) -> int:
        return max((row.migrated_bytes for row in self.ticks), default=0)

    @property
    def budget_ok(self) -> bool:
        """Did any tick exceed the configured migration budget?"""
        budget = self.config.get("budget_per_tick")
        if budget is None:
            return True
        return self.max_tick_migrated <= int(budget)

    # -- document ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema": SCHEMA,
            "config": dict(self.config),
            "volumes": self.volumes,
            "jobs": {
                "admitted": self.jobs_admitted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "still_running": self.jobs_still_running,
                "deferred_ticks": self.jobs_deferred_ticks,
                "budget_blocked_ticks": self.jobs_budget_blocked_ticks,
                "recovered_entries": self.recovered_entries,
                "journal_pending": self.journal_pending,
            },
            "migration": {
                "payload_bytes": self.migrated_payload_bytes,
                "read_bytes": self.defrag_read_bytes,
                "write_bytes": self.defrag_write_bytes,
                "ranges_migrated": self.ranges_migrated,
                "ranges_failed": self.ranges_failed,
                "retries": self.retries,
                "max_tick_migrated": self.max_tick_migrated,
                "budget_ok": self.budget_ok,
            },
            "foreground": {
                "ops": self.fg_ops,
                "errors": self.fg_errors,
                "read_count": self.fg_read_count,
                "read_p50_s": self.fg_read_p50_s,
                "read_p99_s": self.fg_read_p99_s,
                "read_mean_s": self.fg_read_mean_s,
                "read_max_s": self.fg_read_max_s,
            },
            "census": {
                "volumes_above_start": self.volumes_above_start,
                "volumes_above_end": self.volumes_above_end,
                "ticks": [row.to_dict() for row in self.ticks],
            },
        }
        if self.slo is not None:
            doc["slo"] = self.slo
        doc["fingerprint"] = fingerprint(doc)
        return doc

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.to_dict())

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    # -- rendering -----------------------------------------------------

    def text(self) -> str:
        config = self.config
        budget = config.get("budget_per_tick")
        budget_text = (
            "unthrottled" if budget is None else f"{budget / MIB:.2f} MiB/tick"
        )
        lines = [
            "fleet SLO report",
            "=" * 16,
            "",
            f"fleet          : {self.volumes} volumes, seed {config.get('seed')}, "
            f"{len(self.ticks)} ticks x {config.get('tick_seconds')}s",
            f"scheduler      : trigger {config.get('trigger')} extents/file, "
            f"cap {config.get('max_jobs')} jobs, budget {budget_text}",
            "",
            f"jobs           : {self.jobs_admitted} admitted, "
            f"{self.jobs_completed} completed, {self.jobs_failed} failed, "
            f"{self.jobs_still_running} still running",
            f"  deferred     : {self.jobs_deferred_ticks} volume-ticks queued "
            f"behind the cap, {self.jobs_budget_blocked_ticks} job-ticks "
            f"parked on a dry budget",
            f"  resilience   : {self.retries} retries, {self.ranges_failed} "
            f"ranges skipped, {self.recovered_entries} journal entries "
            f"replayed, {self.journal_pending} pending",
            f"migration      : {self.migrated_payload_bytes / MIB:.2f} MiB payload "
            f"({self.ranges_migrated} ranges), device traffic "
            f"{self.defrag_read_bytes / MIB:.2f} MiB read + "
            f"{self.defrag_write_bytes / MIB:.2f} MiB written",
            f"  budget       : max {self.max_tick_migrated / MIB:.2f} MiB in one tick "
            f"-> {'within budget' if self.budget_ok else 'BUDGET EXCEEDED'}",
            "",
            f"foreground SLO : {self.fg_ops} ops ({self.fg_errors} errors), "
            f"{self.fg_read_count} reads",
            f"  read latency : p50 {self.fg_read_p50_s * 1e3:.3f} ms, "
            f"p99 {self.fg_read_p99_s * 1e3:.3f} ms, "
            f"mean {self.fg_read_mean_s * 1e3:.3f} ms, "
            f"max {self.fg_read_max_s * 1e3:.3f} ms",
            "",
            f"fragmentation  : {self.volumes_above_start} volumes above trigger "
            f"at start -> {self.volumes_above_end} at end",
        ]
        if self.slo is not None:
            alerts = self.slo.get("alerts", [])
            promotions = self.slo.get("promotions", [])
            lines.append(
                f"SLO gating     : latency objective "
                f"{float(self.slo.get('latency_slo_s', 0.0)) * 1e3:.3f} ms, "
                f"{len(alerts)} burn alerts "
                f"({self.slo.get('volume_alerts', 0)} per-volume), "
                f"{len(promotions)} queue promotions"
            )
            for name, summary in sorted(self.slo.get("slos", {}).items()):
                lines.append(
                    f"  {name:<13}: compliance {summary.get('compliance', 0.0):.4f}, "
                    f"budget left {summary.get('budget_remaining', 0.0) * 100:.1f}%, "
                    f"{summary.get('alerts', 0)} alerts"
                )
        lines.extend([
            "",
            "  tick  above  migrated(MiB)  running  admitted  waiting  fg_ops",
        ])
        for row in self.ticks:
            lines.append(
                f"  {row.tick:>4}  {row.volumes_above:>5}  "
                f"{row.migrated_bytes / MIB:>13.2f}  {row.jobs_running:>7}  "
                f"{row.jobs_admitted:>8}  {row.jobs_waiting:>7}  {row.fg_ops:>6}"
            )
        lines.append("")
        lines.append(f"fingerprint: {self.fingerprint}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# canonical fingerprint + persistence
# ----------------------------------------------------------------------

def fingerprint(document: Dict[str, object]) -> str:
    """sha256 over the canonical document (fingerprint field excluded)."""
    body = {k: v for k, v in document.items() if k != "fingerprint"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def save(path: str, document: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load(path: str) -> Dict[str, object]:
    with open(path) as fh:
        document = json.load(fh)
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported fleet schema {schema!r} (want {SCHEMA!r})"
        )
    return document


# ----------------------------------------------------------------------
# direction-aware comparison (reuses the bench pipeline's machinery)
# ----------------------------------------------------------------------

def _headline(document: Dict[str, object]) -> Dict[str, float]:
    fg = document.get("foreground", {})
    census = document.get("census", {})
    return {
        "fg_read_p50_s": float(fg.get("read_p50_s", 0.0)),
        "fg_read_p99_s": float(fg.get("read_p99_s", 0.0)),
        "fg_read_mean_s": float(fg.get("read_mean_s", 0.0)),
        "fg_ops": float(fg.get("ops", 0)),
        "volumes_above_end": float(census.get("volumes_above_end", 0)),
    }


def compare(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    threshold: float = 0.10,
) -> Comparison:
    """Direction-aware comparison of two FLEET documents."""
    comparison = Comparison(
        baseline_label=str(baseline.get("config", {}).get("seed", "?")),
        candidate_label=str(candidate.get("config", {}).get("seed", "?")),
        threshold=threshold,
        kind="fleet",
    )
    if baseline.get("fingerprint") != candidate.get("fingerprint"):
        base_cfg = baseline.get("config", {})
        cand_cfg = candidate.get("config", {})
        if base_cfg != cand_cfg:
            comparison.warnings.append(
                "fleet configurations differ: the documents describe "
                "different fleets"
            )
    base_values = _headline(baseline)
    cand_values = _headline(candidate)
    for metric, higher_is_better in _COMPARED.items():
        base = base_values[metric]
        cand = cand_values[metric]
        if max(abs(base), abs(cand)) < 1e-12:
            continue
        if abs(base) < 1e-12:
            change = 1.0
        else:
            change = (cand - base) / abs(base)
        if higher_is_better:
            regression = change <= -threshold
        else:
            regression = change >= threshold
        comparison.findings.append(Finding(
            figure="fleet", variant="slo", metric=metric,
            baseline=base, candidate=cand, change=change,
            regression=regression,
        ))
    return comparison
