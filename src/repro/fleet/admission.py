"""Admission and throttling: the fleet yields the device to foreground.

Two independent brakes:

- :class:`TickBudget` — a fleet-wide migration *payload* budget per tick.
  A range of length L must reserve L bytes **before** migrating, so the
  per-tick migrated payload can never exceed the configured budget (the
  strict invariant the SLO report asserts).  Reservation is the unit of
  throttling; the actual device traffic a migration causes (read + write,
  journal, metadata) is accounted separately and reported as a ratio.

- :class:`AdmissionController` — a FIFO queue of triggered volumes and a
  global concurrent-job cap.  A triggered volume that cannot be admitted
  this tick stays queued and is counted *deferred* once per tick it
  waits; the next tick's admission pass re-examines the queue, so a
  deferred volume is re-admitted as soon as a slot frees up.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional


class TickBudget:
    """Fleet-wide migration-bytes-per-tick budget (None = unthrottled)."""

    def __init__(self, per_tick: Optional[int]) -> None:
        self.per_tick = per_tick
        self.spent_this_tick = 0
        self.spent_total = 0
        self.ticks = 0
        #: per-tick history of reserved payload bytes (the report's
        #: budget-compliance evidence)
        self.history: List[int] = []

    def begin_tick(self) -> None:
        """Roll the budget window; banks nothing across ticks."""
        if self.ticks:
            self.history.append(self.spent_this_tick)
        self.spent_this_tick = 0
        self.ticks += 1

    def close(self) -> None:
        """Flush the final tick's spend into the history."""
        if self.ticks and len(self.history) < self.ticks:
            self.history.append(self.spent_this_tick)

    @property
    def remaining(self) -> Optional[int]:
        if self.per_tick is None:
            return None
        return max(0, self.per_tick - self.spent_this_tick)

    def try_reserve(self, nbytes: int) -> bool:
        """Charge ``nbytes`` against this tick, or refuse untouched."""
        if nbytes < 0:
            raise ValueError("cannot reserve negative bytes")
        if self.per_tick is not None and self.spent_this_tick + nbytes > self.per_tick:
            return False
        self.spent_this_tick += nbytes
        self.spent_total += nbytes
        return True


class AdmissionController:
    """Global concurrent-job cap over a FIFO trigger queue."""

    def __init__(self, max_jobs: int, budget: TickBudget) -> None:
        self.max_jobs = max_jobs
        self.budget = budget
        self.queue: Deque[str] = deque()
        self.running: Dict[str, object] = {}
        self.admitted = 0
        self.deferred_ticks = 0
        self.completed = 0
        self.failed = 0

    def pending(self, name: str) -> bool:
        """Is this volume already queued or being defragmented?"""
        return name in self.running or name in self.queue

    def request(self, name: str) -> bool:
        """Queue a triggered volume (idempotent while pending)."""
        if self.pending(name):
            return False
        self.queue.append(name)
        return True

    def promote(self, name: str) -> bool:
        """Move a queued volume to the queue front (SLO gating).

        A volume whose latency SLO fires a burn alert jumps the FIFO so
        the next admission pass services it first.  No-op unless the
        volume is actually queued — gating reorders, it never admits a
        volume the trigger census did not queue.
        """
        if name not in self.queue:
            return False
        self.queue.remove(name)
        self.queue.appendleft(name)
        return True

    def admit(self, make_job: Callable[[str], object]) -> List[object]:
        """Admit queued volumes up to the cap; count the rest deferred."""
        admitted = []
        while self.queue and len(self.running) < self.max_jobs:
            name = self.queue.popleft()
            job = make_job(name)
            self.running[name] = job
            self.admitted += 1
            admitted.append(job)
        self.deferred_ticks += len(self.queue)
        return admitted

    def finish(self, name: str, failed: bool = False) -> None:
        """Release a finished job's slot."""
        self.running.pop(name, None)
        if failed:
            self.failed += 1
        else:
            self.completed += 1
