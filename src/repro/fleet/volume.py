"""One fleet volume: a filesystem on its own device plus its workload.

A volume owns its virtual clock.  The controller marches every volume
through the same tick windows (relative to the volume's post-setup
epoch), so "per tick" means the same slice of virtual time on every
volume even though their absolute clocks differ after setup.

Foreground traffic is seed-keyed per volume and always includes reads —
each read's ``finish - submit`` latency lands in ``read_latencies``, the
raw material of the fleet's p50/p99 SLO.  Injected transient faults
surface to the application (counted, not retried), exactly like an EIO
reaching a real process; only power-off crashes propagate.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..constants import BLOCK_SIZE, KIB, READAHEAD_SIZE
from ..device import make_device
from ..errors import FaultError, InjectedCrash
from ..fs import make_filesystem
from ..obs.sampler import FragmentationSampler
from ..replay.workload import cycling_ops, parse_trace_workload
from ..workloads.synthetic import FragmentSpec, make_fragmented_file
from .spec import FleetConfig, VolumeSpec

#: foreground update request size
_UPDATE_SIZE = 16 * KIB


class Volume:
    """Runtime state of one simulated volume."""

    def __init__(self, spec: VolumeSpec, config: FleetConfig) -> None:
        self.spec = spec
        self.config = config
        #: per-volume instrumentation for armed fleet runs — the builder
        #: constructs the volume under ``obs_hooks.use(child)`` (so the
        #: fs/device/sampler layers capture it) and then stores the
        #: child here; None on unarmed runs
        self.obs = None
        self.device = make_device(spec.device, capacity=config.device_capacity)
        self.fs = make_filesystem(spec.fs_type, self.device)
        now = 0.0
        for file_spec in spec.files:
            if file_spec.piece >= file_spec.size:
                frag = FragmentSpec(file_spec.size, 0)
            else:
                frag = FragmentSpec(file_spec.piece, file_spec.gap)
            now = make_fragmented_file(
                self.fs, file_spec.path, file_spec.size, frag,
                now=now, app="fleet-setup",
            )
        # drop the interleave dummies: like an aged filesystem, the gaps
        # they occupied become fragmented free space
        for file_spec in spec.files:
            dummy = file_spec.path + ".dummy"
            if self.fs.exists(dummy):
                now = self.fs.unlink(dummy, now=now).finish_time
        self.paths: List[str] = [f.path for f in spec.files]
        #: virtual clock; tick windows are relative to ``epoch``
        self.now = now
        self.epoch = now
        self.sampler = FragmentationSampler(
            self.fs, interval=config.tick_seconds / 4, paths=self.paths,
        )
        self.rng = random.Random(spec.workload_seed)
        self.read_latencies: List[float] = []
        self.fg_ops = 0
        self.fg_errors = 0
        self._handles: Dict[str, object] = {
            path: self.fs.open(path, o_direct=True, app="fg") for path in self.paths
        }
        self._scan_offsets: Dict[str, int] = {path: 0 for path in self.paths}
        self._trace_ops = None
        trace_path = parse_trace_workload(spec.workload)
        if trace_path is not None:
            # every volume re-reads the same trace; records are mapped
            # onto this volume's own file set (file_id % files) so the
            # stream is shareable across heterogeneous volumes
            self._trace_ops = cycling_ops(trace_path)

    # -- observability -------------------------------------------------

    def scope(self):
        """Context installing this volume's instrumentation (if any).

        Live ``obs_hooks.current()`` readers — the concurrency engine's
        actor events, journal recovery, job construction — must run
        inside this scope so armed serial and sharded runs record onto
        the same per-volume plane.
        """
        from contextlib import nullcontext

        from ..obs import hooks as obs_hooks

        return obs_hooks.use(self.obs) if self.obs is not None else nullcontext()

    # -- tick geometry -------------------------------------------------

    def window(self, tick: int):
        """This volume's [start, end) virtual window for ``tick``."""
        dt = self.config.tick_seconds
        return self.epoch + tick * dt, self.epoch + (tick + 1) * dt

    # -- fragmentation census ------------------------------------------

    def frag_level(self) -> float:
        """Sample now; returns the mean extents-per-file reading."""
        return self.sampler.sample(self.now)["frag.extents_per_file"]

    # -- foreground workload -------------------------------------------

    def _trace_op(self, now: float) -> float:
        """One trace-driven foreground op (workload ``trace:<path>``).

        Trace entities land on this volume's file set by residue
        (``file_id % files``); ranges are clamped to the target file so
        any trace drives any volume.  Reads still feed the latency SLO.
        """
        record = next(self._trace_ops)
        path = self.paths[record.file_id % len(self.paths)]
        handle = self._handles[path]
        size = self.fs.inode_of(path).size
        try:
            if record.op == "fsync":
                result = self.fs.fsync(handle, now=now)
            else:
                length = max(BLOCK_SIZE, min(record.size, size))
                length -= length % BLOCK_SIZE
                offset = record.offset % max(BLOCK_SIZE, size - length + 1)
                offset -= offset % BLOCK_SIZE
                if record.op == "read":
                    result = self.fs.read(handle, offset, length, now=now)
                    self.read_latencies.append(result.finish_time - now)
                else:
                    result = self.fs.write(handle, offset, length, now=now)
            self.fg_ops += 1
            return result.finish_time
        except InjectedCrash:
            raise
        except FaultError:
            self.fg_errors += 1
            self.fg_ops += 1
            return now

    def _one_op(self, now: float) -> float:
        """One foreground op at ``now``; returns its finish time."""
        if self._trace_ops is not None:
            return self._trace_op(now)
        path = self.rng.choice(self.paths)
        handle = self._handles[path]
        size = self.fs.inode_of(path).size
        workload = self.spec.workload
        do_read = workload != "rw_mix" or self.rng.random() < 0.5
        try:
            if do_read:
                request = min(READAHEAD_SIZE, size)
                if workload == "read_seq":
                    offset = self._scan_offsets[path]
                    self._scan_offsets[path] = (
                        0 if offset + 2 * request > size else offset + request
                    )
                else:
                    slots = max(1, size // request)
                    offset = self.rng.randrange(slots) * request
                result = self.fs.read(handle, offset, request, now=now)
                self.read_latencies.append(result.finish_time - now)
            else:
                slots = max(1, (size - _UPDATE_SIZE) // BLOCK_SIZE + 1)
                offset = self.rng.randrange(slots) * BLOCK_SIZE
                offset = min(offset, size - _UPDATE_SIZE)
                result = self.fs.write(handle, offset, _UPDATE_SIZE, now=now)
            self.fg_ops += 1
            return result.finish_time
        except InjectedCrash:
            raise
        except FaultError:
            # an EIO reached the application; it moves on to the next op
            self.fg_errors += 1
            self.fg_ops += 1
            return now

    def run_foreground(self, until: float, max_ops: int) -> None:
        """Issue ops until the window closes or the op budget is spent."""
        now = self.now
        ops = 0
        while now < until and ops < max_ops:
            now = self._one_op(now)
            ops += 1
        self.now = max(now, until)

    def foreground_actor(self, until: float, max_ops: int):
        """Co-running form of :meth:`run_foreground` (one yield per op),
        for interleaving with a defrag job on the shared device."""
        def _run(ctx):
            ops = 0
            while ctx.now < until and ops < max_ops:
                ctx.now = self._one_op(ctx.now)
                ops += 1
                yield
        return _run

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self.sampler.detach()
