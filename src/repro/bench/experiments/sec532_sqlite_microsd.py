"""Section 5.3.2: SQLite on Btrfs on the MicroSD card.

Synchronous sequential insertion (journal and database writes interleaved)
shreds the database file on Btrfs without any aging.  Then, while a FIO
sequential writer runs in the foreground, either btrfs.defragment or
FragPicker (bypass plans — a SELECT is a sequential scan) defragments the
database, and finally a SELECT returning 30% of the data is timed.

Paper numbers for orientation: select 29.5 s -> 4.4 s; FragPicker moved
163 MB read / 137 MB write vs btrfs.defragment's 474/426 MB; defrag
elapsed 30% of the conventional tool's; co-running FIO throughput ~2x
higher with FragPicker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...constants import GIB, MIB
from ...core import FragPicker
from ...core.report import DefragReport
from ...device import make_device
from ...fs import make_filesystem
from ...tools import btrfs_defragment
from ...workloads.fio import fio_sequential_writer
from ...workloads.sqlite_like import SqliteConfig, SqliteLike
from ..harness import corun_until_background_done


@dataclass
class SqliteRun:
    tool: str
    select_elapsed: float
    defrag_elapsed: float
    defrag_read_mb: float
    defrag_write_mb: float
    fio_mbps: float
    fragments_after: int


@dataclass
class SqliteResult:
    select_before: float
    runs: Dict[str, SqliteRun]

    def report(self) -> str:
        lines = [f"select before defrag: {self.select_before:.3f}s"]
        for run in self.runs.values():
            lines.append(
                f"{run.tool}: select {run.select_elapsed:.3f}s, defrag {run.defrag_elapsed:.2f}s "
                f"(R {run.defrag_read_mb:.0f} MB / W {run.defrag_write_mb:.0f} MB), "
                f"co-running FIO {run.fio_mbps:.1f} MB/s, frags after {run.fragments_after}"
            )
        return "\n".join(lines)


def _setup(rows: int, value_size: int):
    device = make_device("microsd", capacity=2 * GIB)
    fs = make_filesystem("btrfs", device)
    db = SqliteLike(fs, SqliteConfig())
    now = db.load_sequential(rows, value_size, 0.0)
    fs.drop_caches()
    return fs, db, now


def run(rows: int = 8_000, value_size: int = 4096, select_fraction: float = 0.3) -> SqliteResult:
    # baseline select on the fragmented database
    fs, db, now = _setup(rows, value_size)
    _, select_before = db.select_fraction(select_fraction, now)

    runs: Dict[str, SqliteRun] = {}
    for tool_name in ("btrfs.defragment", "fragpicker"):
        fs, db, now = _setup(rows, value_size)
        report = DefragReport(tool=tool_name)
        if tool_name == "btrfs.defragment":
            background = btrfs_defragment(fs).actor([db.config.db_path], report_out=report)
        else:
            # FragPicker analyses the workload it is optimizing for: the
            # SELECT scans only `select_fraction` of the database, so only
            # that part is worth migrating (the paper's 163 MB vs 474 MB).
            picker = FragPicker(fs)
            with picker.monitor(apps={db.config.app}) as monitor:
                now, _ = db.select_fraction(select_fraction, now)
            fs.drop_caches()
            plans = picker.analyze(monitor.records, paths=[db.config.db_path])
            background = picker.actor(plans, report_out=report)
        fio = fio_sequential_writer(fs, duration=float("inf"))
        fio_ctx, _ = corun_until_background_done(fio, background, start=now)
        fio_mbps = fio_ctx.timeline.total() / fio_ctx.timeline.duration / 1e6 if fio_ctx.timeline.duration else 0.0
        now = fio_ctx.now
        fs.drop_caches()
        now, select_elapsed = db.select_fraction(select_fraction, now)
        runs[tool_name] = SqliteRun(
            tool=tool_name,
            select_elapsed=select_elapsed,
            defrag_elapsed=report.elapsed,
            defrag_read_mb=report.read_bytes / MIB,
            defrag_write_mb=report.write_bytes / MIB,
            fio_mbps=fio_mbps,
            fragments_after=sum(report.fragments_after.values()),
        )
    return SqliteResult(select_before=select_before, runs=runs)
