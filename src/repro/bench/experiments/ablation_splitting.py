"""Ablation E12: the request-splitting mechanism itself.

Counts block-layer commands per 128 KiB read syscall as a function of
fragment size, and decomposes the latency into host (kernel) time vs
device time — quantifying the paper's Section 2.2 claims that splitting
(i) multiplies kernel work, (ii) multiplies commands over the interface,
and (iii) is what defragmentation actually removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...constants import KIB, MIB, READAHEAD_SIZE
from ...stats.tables import format_table
from ...workloads.synthetic import FragmentSpec, make_fragmented_file
from ..harness import fresh_fs


@dataclass
class SplitPoint:
    frag_size: int
    commands_per_syscall: float
    kernel_time_us: float
    device_time_us: float
    latency_us: float


@dataclass
class SplittingResult:
    device: str
    points: List[SplitPoint]

    def report(self) -> str:
        headers = ["frag KiB", "cmds/syscall", "kernel us", "device us", "latency us"]
        rows = [
            [p.frag_size // KIB, p.commands_per_syscall, p.kernel_time_us,
             p.device_time_us, p.latency_us]
            for p in self.points
        ]
        return f"[{self.device}]\n" + format_table(headers, rows)


def run(device_kind: str = "optane", file_size: int = 8 * MIB,
        frag_sizes: List[int] = None) -> SplittingResult:
    frag_sizes = frag_sizes or [4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB, 128 * KIB]
    points: List[SplitPoint] = []
    for frag_size in frag_sizes:
        fs, _ = fresh_fs("ext4", device_kind)
        now = make_fragmented_file(
            fs, "/t", file_size, FragmentSpec(frag_size, 1024 * KIB), fallocate_dummy=True
        )
        handle = fs.open("/t", o_direct=True, app="bench")
        syscalls = 0
        commands = 0
        kernel = 0.0
        device = 0.0
        latency = 0.0
        before_kernel = fs.scheduler.kernel_time_total
        before_busy = fs.device.stats.busy_time
        for offset in range(0, file_size, READAHEAD_SIZE):
            result = fs.read(handle, offset, READAHEAD_SIZE, now=now)
            latency += result.latency
            commands += result.requests
            syscalls += 1
            now = result.finish_time
        kernel = fs.scheduler.kernel_time_total - before_kernel
        device = fs.device.stats.busy_time - before_busy
        points.append(
            SplitPoint(
                frag_size=frag_size,
                commands_per_syscall=commands / syscalls,
                kernel_time_us=kernel / syscalls * 1e6,
                device_time_us=device / syscalls * 1e6,
                latency_us=latency / syscalls * 1e6,
            )
        )
    return SplittingResult(device=device_kind, points=points)
