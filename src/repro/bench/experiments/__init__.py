"""One module per paper artifact (see DESIGN.md's per-experiment index)."""
