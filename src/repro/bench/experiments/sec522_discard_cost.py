"""Section 5.2.2: discard cost (s/GB) before vs after FragPicker.

The paper deletes the synthetic file on Ext4/flash and issues fstrim.
A discard command can only name contiguous LBAs, so deleting a fragmented
file leaves shredded free runs and many discard commands (16.6 s/GB),
while deleting the FragPicker-defragmented file costs about half
(8.485 s/GB).

The filesystem is built small and mostly-occupied so the deleted file's
runs dominate the trim (mirroring the paper normalizing by the file size);
the surrounding dummy file pins neighbouring blocks, preventing the freed
runs from coalescing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...constants import GIB, MIB
from ...core import FragPicker
from ...device import make_device
from ...fs import make_filesystem
from ...tools.fstrim import Fstrim
from ...workloads.synthetic import make_paper_synthetic_file, sequential_read


@dataclass
class DiscardCostResult:
    #: s/GB for "original" (fragmented) and "fragpicker" (defragmented)
    cost: Dict[str, float]
    commands: Dict[str, int]

    def report(self) -> str:
        return "\n".join(
            f"{name}: {self.cost[name]:.3f} s/GB over {self.commands[name]} discard commands"
            for name in self.cost
        )


def _one(defrag: bool, file_size: int) -> Dict[str, float]:
    device = make_device("flash", capacity=1 * GIB)
    fs = make_filesystem("ext4", device)
    now = make_paper_synthetic_file(fs, "/victim", file_size)
    if defrag:
        picker = FragPicker(fs)
        with picker.monitor(apps={"bench"}) as monitor:
            now, _ = sequential_read(fs, "/victim", now=now)
        report = picker.defragment(monitor.records, paths=["/victim"], now=now)
        now = report.finished_at
    # fstrim covers *all* free space; measure the file's contribution as
    # the delta between a trim before and after the delete
    trimmer = Fstrim(fs)
    pre = trimmer.run(now)
    now += pre.elapsed
    now = fs.unlink("/victim", now=now).finish_time
    post = trimmer.run(now)
    file_gb = file_size / GIB
    return {
        "cost": max(0.0, post.elapsed - pre.elapsed) / file_gb,
        "commands": max(0, post.commands - pre.commands),
    }


def run(file_size: int = 128 * MIB) -> DiscardCostResult:
    original = _one(defrag=False, file_size=file_size)
    defragged = _one(defrag=True, file_size=file_size)
    return DiscardCostResult(
        cost={"original": original["cost"], "fragpicker": defragged["cost"]},
        commands={"original": int(original["commands"]), "fragpicker": int(defragged["commands"])},
    )
