"""Figures 8 and 9: the synthetic-workload defragmentation comparison.

For each (filesystem, device) the paper builds a file of repeating
32 x 4 KiB + 1 x 128 KiB units (dummy writes interleaved), then measures
sequential/stride reads and updates (O_DIRECT, 128 KiB requests, 288 KiB
stride) under five treatments:

- **Original** — no defragmentation,
- **Conv.** — the filesystem's conventional tool (full-file migration),
- **Conv.-T** — btrfs.defragment with the 128 KiB extent threshold
  (Figure 8c only),
- **FragPicker** — analysis run of the same workload, then migration,
- **FragPicker-B** — the bypass option (sequential plans, no analysis).

The per-variant defragmentation write traffic is recorded per I/O pattern
class (sequential vs stride), matching the tables beneath the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...constants import KIB, MIB
from ...core import FragPicker, FragPickerConfig
from ...core.report import DefragReport
from ...stats.tables import format_table
from ...tools import btrfs_defragment, make_conventional
from ...workloads.synthetic import (
    make_paper_synthetic_file,
    sequential_read,
    sequential_update,
    stride_read,
    stride_update,
)
from ..harness import VariantResult, fresh_fs, measured_variant

PATTERNS: Dict[str, Callable] = {
    "seq_read": sequential_read,
    "stride_read": stride_read,
    "seq_update": sequential_update,
    "stride_update": stride_update,
}

VARIANTS = ("original", "conv", "conv_t", "fragpicker", "fragpicker_b")


@dataclass
class SyntheticCell:
    throughput_mbps: float
    defrag_write_mb: float = 0.0
    defrag_read_mb: float = 0.0
    defrag_elapsed: float = 0.0
    fragments_after: int = 0
    #: windowed obs capture for this cell (metrics + latency attribution);
    #: None unless the observability plane was enabled during the run
    obs: Optional[VariantResult] = None


@dataclass
class SyntheticResult:
    fs_type: str
    device: str
    file_size: int
    #: cells[variant][pattern]
    cells: Dict[str, Dict[str, SyntheticCell]] = field(default_factory=dict)

    def cell(self, variant: str, pattern: str) -> SyntheticCell:
        return self.cells[variant][pattern]

    def report(self) -> str:
        patterns = list(next(iter(self.cells.values())).keys())
        headers = ["variant"] + [f"{p} MB/s" for p in patterns] + ["seq writes MB", "stride writes MB"]
        rows = []
        for variant, per_pattern in self.cells.items():
            row: List[object] = [variant]
            row += [per_pattern[p].throughput_mbps for p in patterns]
            seq_w = per_pattern.get("seq_read") or per_pattern.get("seq_update")
            str_w = per_pattern.get("stride_read") or per_pattern.get("stride_update")
            row += [seq_w.defrag_write_mb if seq_w else 0.0,
                    str_w.defrag_write_mb if str_w else 0.0]
            rows.append(row)
        title = f"[{self.fs_type} on {self.device}, {self.file_size // MIB} MiB file]"
        return title + "\n" + format_table(headers, rows)


def _apply_variant(fs, variant: str, path: str, pattern_fn, now: float,
                   hotness: float) -> Tuple[float, Optional[DefragReport]]:
    """Defragment according to the variant; returns (now, report)."""
    if variant == "original":
        return now, None
    if variant == "conv":
        tool = make_conventional(fs)
        report = tool.defragment([path], now=now)
        return report.finished_at, report
    if variant == "conv_t":
        tool = btrfs_defragment(fs, extent_threshold=128 * KIB)
        report = tool.defragment([path], now=now)
        return report.finished_at, report
    picker = FragPicker(fs, FragPickerConfig(hotness_criterion=hotness))
    if variant == "fragpicker_b":
        report = picker.defragment_bypass([path], now=now)
        return report.finished_at, report
    # fragpicker: analysis run of the same workload first (Section 5.1)
    with picker.monitor(apps={"bench"}) as monitor:
        now, _ = pattern_fn(fs, path, now=now)
    report = picker.defragment(monitor.records, paths=[path], now=now)
    return report.finished_at, report


def run(
    fs_type: str,
    device_kind: str,
    file_size: int = 64 * MIB,
    variants: Tuple[str, ...] = ("original", "conv", "fragpicker", "fragpicker_b"),
    patterns: Tuple[str, ...] = tuple(PATTERNS),
    hotness: float = 1.0,
) -> SyntheticResult:
    """Run the full grid; every (variant, pattern) gets a fresh filesystem."""
    result = SyntheticResult(fs_type=fs_type, device=device_kind, file_size=file_size)
    for variant in variants:
        result.cells[variant] = {}
        for pattern in patterns:
            with measured_variant(f"{variant}:{pattern}") as window:
                fs, _ = fresh_fs(fs_type, device_kind)
                now = make_paper_synthetic_file(fs, "/target", file_size)
                pattern_fn = PATTERNS[pattern]
                now, report = _apply_variant(fs, variant, "/target", pattern_fn, now, hotness)
                now, mbps = pattern_fn(fs, "/target", now=now)
                window.throughput_mbps = mbps
                if report is not None:
                    window.defrag_write_mb = report.write_bytes / MIB
                    window.defrag_read_mb = report.read_bytes / MIB
                    window.defrag_elapsed = report.elapsed
                    window.fragments_after = sum(report.fragments_after.values())
            cell = SyntheticCell(
                throughput_mbps=window.throughput_mbps,
                defrag_write_mb=window.defrag_write_mb,
                defrag_read_mb=window.defrag_read_mb,
                defrag_elapsed=window.defrag_elapsed,
                fragments_after=int(window.fragments_after),
                obs=window if window.metrics is not None else None,
            )
            result.cells[variant][pattern] = cell
    return result
