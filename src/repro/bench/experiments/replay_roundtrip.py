"""Capture -> corpus -> replay round trip (the lossless-format proof).

The claim behind ``repro replay``: a captured workload, serialized to the
compact binary format and replayed through the reconstruction layer, is
*the same workload* — not approximately, byte-for-byte.  This experiment
proves it the strong way:

1. **Direct run** — a seeded op stream drives a fresh filesystem
   closed-loop, with a :class:`~repro.trace.syscall_monitor.SyscallMonitor`
   attached capturing every read/write at the syscall boundary.
2. **Capture** — the monitor's window is dumped as a ``repro.replay/v1``
   binary corpus (inode numbers become trace file ids).
3. **Replay** — an identically-seeded *fresh* filesystem (same files,
   same virtual epoch, monitor attached so probe costs match) replays
   the corpus through :class:`~repro.replay.reconstruct.Reconstructor`
   with an explicit ino->path mapping.
4. **Verdict** — elapsed virtual time, cache hit/miss counts, and
   device-level traffic must be *equal*, and the trace the replay side's
   monitor recaptures must be byte-identical to the captured corpus.

Any lossy step — a field dropped by the format, a repair the
reconstructor applied where none was needed, a probe-cost asymmetry —
breaks equality, so the round trip doubles as a regression guard over
the whole replay stack.
"""

from __future__ import annotations

import filecmp
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...constants import MIB
from ...fs.base import FallocMode, Filesystem
from ...replay.generate import TraceProfile, generate_ops
from ...replay.reconstruct import PlacementPolicy, Reconstructor
from ...trace.syscall_monitor import SyscallMonitor
from ..harness import fresh_fs

#: round-trip op stream: no fsyncs — the syscall monitor's capture
#: boundary sees read/write only, so fsyncs would replay asymmetrically
_PROFILE = TraceProfile(
    ops=4000, seed=11, files=12, file_bytes=4 * MIB,
    read_fraction=0.6, fsync_every=0, interarrival=0.0,
)


@dataclass
class SideFigures:
    """One side's measured figures (every field must match the other side)."""

    ops: int = 0
    elapsed_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    device_read_bytes: int = 0
    device_write_bytes: int = 0
    device_read_commands: int = 0
    device_write_commands: int = 0

    def to_dict(self) -> Dict[str, float]:
        return {
            "ops": self.ops,
            "elapsed_s": self.elapsed_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "device_read_bytes": self.device_read_bytes,
            "device_write_bytes": self.device_write_bytes,
            "device_read_commands": self.device_read_commands,
            "device_write_commands": self.device_write_commands,
        }


@dataclass
class RoundTripResult:
    direct: SideFigures
    replayed: SideFigures
    captured_records: int = 0
    recaptured_records: int = 0
    trace_bytes: int = 0
    trace_identical: bool = False

    @property
    def figures_identical(self) -> bool:
        return self.direct.to_dict() == self.replayed.to_dict()

    @property
    def ok(self) -> bool:
        return self.figures_identical and self.trace_identical

    def mismatches(self) -> List[str]:
        direct, replayed = self.direct.to_dict(), self.replayed.to_dict()
        return [
            f"{key}: direct {direct[key]!r} != replayed {replayed[key]!r}"
            for key in direct if direct[key] != replayed[key]
        ]

    def report(self) -> str:
        lines = [
            "capture -> corpus -> replay round trip",
            f"  captured   : {self.captured_records} records "
            f"({self.trace_bytes} bytes on disk)",
            f"  direct     : {self.direct.ops} ops in "
            f"{self.direct.elapsed_s:.6f} s, "
            f"{self.direct.cache_hits}/{self.direct.cache_misses} cache h/m",
            f"  replayed   : {self.replayed.ops} ops in "
            f"{self.replayed.elapsed_s:.6f} s, "
            f"{self.replayed.cache_hits}/{self.replayed.cache_misses} cache h/m",
            f"  recaptured : {self.recaptured_records} records, "
            f"byte-identical: {self.trace_identical}",
            f"  figures byte-identical: {self.figures_identical}",
        ]
        lines.extend("  MISMATCH " + m for m in self.mismatches())
        lines.append(f"  round trip {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def _seeded_side(fs_type: str, device: str) -> Tuple[Filesystem, Dict[int, str], float]:
    """One side's identical starting state: fresh fs, the op stream's
    file set pre-materialized at full size, caches dropped."""
    fs, _ = fresh_fs(fs_type, device)
    paths: Dict[int, str] = {}
    now = 0.0
    for file_id in range(_PROFILE.files):
        path = f"/rt/f{file_id:04d}"
        handle = fs.open(path, o_direct=True, app="replay", create=True)
        now = fs.fallocate(
            handle, FallocMode.ALLOCATE, 0, _PROFILE.file_bytes, now=now
        ).finish_time
        paths[file_id] = path
    fs.drop_caches()
    return fs, paths, now


def _measure(fs: Filesystem, mapping: Dict[int, str], records, now: float) -> SideFigures:
    """Drive ``records`` through ``fs`` closed-loop; snapshot the figures."""
    cache = fs.page_cache.stats
    hits0, misses0 = cache.hits, cache.misses
    traffic0 = fs.tracer.tag("replay").snapshot()
    reconstructor = Reconstructor(
        fs, PlacementPolicy(mapping=mapping, file_cap=_PROFILE.file_bytes)
    )
    finish = reconstructor.run(records, now=now)
    traffic = fs.tracer.tag("replay").delta(traffic0)
    return SideFigures(
        ops=reconstructor.stats.ops,
        elapsed_s=finish - now,
        cache_hits=cache.hits - hits0,
        cache_misses=cache.misses - misses0,
        device_read_bytes=traffic.read_bytes,
        device_write_bytes=traffic.write_bytes,
        device_read_commands=traffic.read_commands,
        device_write_commands=traffic.write_commands,
    )


def run(fs_type: str = "ext4", device: str = "flash") -> RoundTripResult:
    from ...replay.formats import BinaryTraceReader

    workdir = tempfile.mkdtemp(prefix="repro-roundtrip-")
    captured_path = os.path.join(workdir, "captured.bin")
    recaptured_path = os.path.join(workdir, "recaptured.bin")

    # -- side A: direct run, monitor capturing --------------------------
    fs_a, paths_a, epoch = _seeded_side(fs_type, device)
    with SyscallMonitor(fs_a, apps={"replay"}) as monitor_a:
        direct = _measure(fs_a, paths_a, generate_ops(_PROFILE), epoch)
    captured = monitor_a.dump_binary(captured_path)

    # -- side B: fresh identical state, replay the corpus ---------------
    # the corpus keys ops by side A's inode numbers; map them onto side
    # B's paths through side A's id->path table (setup is identical, so
    # inode_of(path) on A *is* the captured file_id)
    fs_b, paths_b, epoch_b = _seeded_side(fs_type, device)
    assert epoch_b == epoch
    mapping = {
        fs_a.inode_of(path).ino: paths_b[file_id]
        for file_id, path in paths_a.items()
    }
    with SyscallMonitor(fs_b, apps={"replay"}) as monitor_b:
        replayed = _measure(
            fs_b, mapping, iter(BinaryTraceReader(captured_path)), epoch
        )
    recaptured = monitor_b.dump_binary(recaptured_path)

    return RoundTripResult(
        direct=direct,
        replayed=replayed,
        captured_records=captured,
        recaptured_records=recaptured,
        trace_bytes=os.path.getsize(captured_path),
        trace_identical=filecmp.cmp(captured_path, recaptured_path, shallow=False),
    )
