"""Figure 12: the hotness-criterion sweep under uniform vs zipfian reads.

A fragmented synthetic file is read with 128 KiB O_DIRECT requests whose
offsets follow either a uniform or a zipfian distribution.  FragPicker
analyses that trace and migrates the top-x% of hot data for x from 10% to
100%.  Reported per point: post-defrag throughput of the same access
stream and the write amount.

Paper shape: uniform -> performance and writes both rise with the
criterion; zipfian -> performance is flat (the analysis already caught the
hot set) and the write amount is tiny.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...constants import MIB, READAHEAD_SIZE
from ...core import FragPicker, FragPickerConfig
from ...workloads.distributions import ZipfianKeys
from ...workloads.synthetic import make_paper_synthetic_file
from ..harness import fresh_fs

CRITERIA = [0.1, 0.25, 0.5, 0.75, 1.0]


@dataclass
class HotnessPoint:
    criterion: float
    throughput_mbps: float
    write_mb: float


@dataclass
class Fig12Result:
    #: distribution -> sweep points
    sweeps: Dict[str, List[HotnessPoint]]
    original_mbps: Dict[str, float]

    def report(self) -> str:
        lines = []
        for dist, points in self.sweeps.items():
            lines.append(f"-- {dist} (original {self.original_mbps[dist]:.0f} MB/s) --")
            for p in points:
                lines.append(
                    f"  top {p.criterion * 100:3.0f}%: {p.throughput_mbps:7.1f} MB/s, "
                    f"writes {p.write_mb:6.1f} MB"
                )
        return "\n".join(lines)


def _offsets(distribution: str, file_size: int, count: int, seed: int) -> List[int]:
    slots = file_size // READAHEAD_SIZE
    if distribution == "uniform":
        rng = random.Random(seed)
        return [rng.randrange(slots) * READAHEAD_SIZE for _ in range(count)]
    zipf = ZipfianKeys(slots, seed=seed)
    return [zipf.next() * READAHEAD_SIZE for _ in range(count)]


def _read_stream(fs, path: str, offsets: List[int], now: float) -> Tuple[float, float]:
    handle = fs.open(path, o_direct=True, app="bench")
    start = now
    for offset in offsets:
        now = fs.read(handle, offset, READAHEAD_SIZE, now=now).finish_time
    mbps = len(offsets) * READAHEAD_SIZE / (now - start) / 1e6
    return now, mbps


def run(
    file_size: int = 66 * MIB,
    ops: int = 1_500,
    criteria: List[float] = None,
    seed: int = 9,
) -> Fig12Result:
    criteria = criteria or CRITERIA
    sweeps: Dict[str, List[HotnessPoint]] = {}
    original: Dict[str, float] = {}
    for distribution in ("uniform", "zipfian"):
        offsets = _offsets(distribution, file_size, ops, seed)
        points: List[HotnessPoint] = []
        for criterion in criteria:
            fs, _ = fresh_fs("ext4", "optane")
            now = make_paper_synthetic_file(fs, "/target", file_size)
            now, base_mbps = _read_stream(fs, "/target", offsets, now)
            original.setdefault(distribution, base_mbps)
            picker = FragPicker(fs, FragPickerConfig(hotness_criterion=criterion))
            with picker.monitor(apps={"bench"}) as monitor:
                now, _ = _read_stream(fs, "/target", offsets, now)
            report = picker.defragment(monitor.records, paths=["/target"], now=now)
            now, mbps = _read_stream(fs, "/target", offsets, report.finished_at)
            points.append(
                HotnessPoint(criterion=criterion, throughput_mbps=mbps,
                             write_mb=report.write_bytes / MIB)
            )
        sweeps[distribution] = points
    return Fig12Result(sweeps=sweeps, original_mbps=original)
