"""Observability tour: the Fig. 10 protocol, fully instrumented.

Runs a scaled-down version of the Figure 10 experiment (YCSB-C over the
LSM store on an aged Ext4/Optane) with :mod:`repro.obs` enabled, wrapping
each protocol phase in a span:

- **before** — workload alone on the fragmented database,
- **analysis** — FragPicker's syscall monitor attached,
- **defrag** — FragPicker migrating concurrently with the workload,
- **after** — workload on the defragmented database.

The point of the exercise is the paper's core mechanism made visible: the
``block.split_fanout`` histogram (device commands per syscall) is windowed
around the *before* and *after* phases, and defragmentation shifts it
toward 1.  The result also carries the complete metrics registry and a
Chrome ``trace_event`` document with nested FragPicker phase spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...constants import KIB, MIB
from ...core import FragPicker, FragPickerConfig
from ...core.report import DefragReport
from ...device import make_device
from ...fs import make_filesystem
from ...obs import hooks as obs_hooks
from ...obs.analysis import attribute
from ...obs.critical_path import (
    CriticalPath,
    critical_path,
    flamegraph,
    flow_events,
)
from ...obs.export import chrome_trace, histogram_table, metrics_table
from ...obs.hooks import Instrumentation
from ...obs.metrics import Histogram
from ...obs.provenance import ProvenanceForest, build_forest
from ...obs.sampler import FragmentationSampler
from ...stats.tables import format_table
from ...workloads.aging import age_filesystem
from ...workloads.kvstore import LsmConfig, LsmStore
from ...workloads.ycsb import YcsbConfig, YcsbWorkload
from ..harness import corun_until_background_done


@dataclass
class ObsTraceResult:
    """Everything the observability plane captured for one run."""

    obs: Instrumentation
    phase_ops: Dict[str, float] = field(default_factory=dict)
    fanout_before: Optional[Histogram] = None
    fanout_after: Optional[Histogram] = None
    defrag: Optional[DefragReport] = None
    sampler: Optional[FragmentationSampler] = None
    _forest: Optional[ProvenanceForest] = None

    def trace(self) -> Dict[str, object]:
        """Chrome trace_event document (load in chrome://tracing/Perfetto).

        Includes the fragmentation-timeline counter curves, the raw
        ``fragTimeline`` samples when a sampler ran, and — when causal
        tracing was armed — per-syscall/per-command provenance tracks
        with flow arrows linking each syscall to its tail command.
        """
        extra = None
        if self.obs.provenance is not None:
            extra = flow_events(self.forest())
        return chrome_trace(
            self.obs.spans, self.obs.registry,
            sampler=self.sampler, extra_events=extra,
        )

    def attribution(self):
        """Latency attribution over the whole run (sum-to-total checked)."""
        return attribute(self.obs.registry)

    # -- provenance views (armed runs only) ----------------------------

    def forest(self) -> ProvenanceForest:
        """Per-syscall command trees reconstructed from the event ring."""
        if self._forest is None:
            self._forest = build_forest(self.obs.spans)
        return self._forest

    def critical_path(self) -> CriticalPath:
        """The run's wall-clock decomposed along the critical path."""
        return critical_path(self.forest(), self.obs.spans)

    def flamegraph(self) -> str:
        """Collapsed-stack profile (flamegraph.pl / speedscope input)."""
        return flamegraph(self.forest(), self.obs.spans)

    def top_latency_histograms(self, count: int = 5) -> List[Histogram]:
        """Busiest latency histograms (by sample count)."""
        latency = [
            hist for hist in self.obs.registry.histograms()
            if "latency" in hist.name or "actor_step" in hist.name
        ]
        latency.sort(key=lambda h: h.count, reverse=True)
        return latency[:count]

    def report(self) -> str:
        phase_rows = [[name, ops] for name, ops in self.phase_ops.items()]
        parts = [format_table(["phase", "ops/s"], phase_rows)]
        if self.fanout_before is not None and self.fanout_after is not None:
            parts.append(format_table(
                ["split fan-out (cmds/syscall)", "mean", "p95", "max"],
                [
                    ["before defrag", self.fanout_before.mean,
                     self.fanout_before.quantile(0.95), self.fanout_before.max_value],
                    ["after defrag", self.fanout_after.mean,
                     self.fanout_after.quantile(0.95), self.fanout_after.max_value],
                ],
            ))
        if self.defrag is not None:
            parts.append(self.defrag.summary())
        parts.append(self.attribution().table())
        if self.sampler is not None and self.sampler.samples_taken:
            contiguity = self.sampler.series["frag.contiguity"]
            parts.append(
                f"frag timeline: {self.sampler.samples_taken} samples, "
                f"contiguity {contiguity.values[0]:.3f} -> {contiguity.last:.3f}"
            )
        if self.obs.provenance is not None:
            forest = self.forest()
            summary = forest.summary()
            parts.append(
                f"provenance: {summary['syscalls']} syscalls traced, "
                f"{summary['layer_crossing']} crossed to the device, "
                f"{summary['commands']} commands, "
                f"max fan-out {summary['max_fanout']} "
                f"({summary['orphan_edges']} orphan edges, "
                f"{summary['events_dropped']} ring drops)"
            )
            parts.append(forest.table())
            parts.append(self.critical_path().table())
        parts.append(metrics_table(self.obs.registry))
        return "\n\n".join(parts)

    def tour(self, count: int = 5) -> str:
        """The short version: phases, fan-out shift, top-N histograms."""
        parts = [self.report().split("\n\n")[0]]
        if self.fanout_before is not None and self.fanout_after is not None:
            parts.append(
                f"split fan-out mean: {self.fanout_before.mean:.2f} before "
                f"-> {self.fanout_after.mean:.2f} after"
            )
        parts.append(histogram_table(self.top_latency_histograms(count)))
        return "\n\n".join(parts)


def _build_state(
    capacity: int, record_count: int, value_size: int, seed: int,
    device_name: str = "optane",
) -> Tuple:
    """Fig. 10's aged-filesystem + loaded-database setup, scaled down."""
    device = make_device(device_name, capacity=capacity)
    fs = make_filesystem("ext4", device, metadata_region=16 * MIB)
    age_filesystem(fs, fill_fraction=0.997, delete_fraction=0.35,
                   min_file=8 * KIB, max_file=48 * KIB, seed=seed)
    store = LsmStore(fs, LsmConfig(block_size=128 * KIB, memtable_bytes=4 * MIB))
    workload = YcsbWorkload(
        store,
        YcsbConfig(record_count=record_count, value_size=value_size,
                   read_proportion=1.0, update_proportion=0.0, seed=seed),
    )
    now = workload.load(0.0)
    leftovers = sorted(fs.listdir("/aging"))
    band = leftovers[len(leftovers) // 3 : len(leftovers) // 3 + len(leftovers) // 4]
    for path in band:
        now = fs.unlink(path, now=now).finish_time
    fs.drop_caches()
    return fs, store, workload, now


def run(
    smoke: bool = False,
    capacity: int = 384 * MIB,
    record_count: int = 5_000,
    value_size: int = 1024,
    window_ops: int = 1_500,
    hotness: float = 0.5,
    seed: int = 42,
    obs: Optional[Instrumentation] = None,
    device: str = "optane",
) -> ObsTraceResult:
    """Run the instrumented protocol; returns spans + metrics + fan-out."""
    if smoke:
        capacity = 96 * MIB
        record_count = 1_200
        window_ops = 400
    if obs is None:
        obs = Instrumentation()
    with obs_hooks.use(obs):
        if obs.provenance is not None:
            # don't flood the ring with setup traffic: aging + db load
            # mint no pids; tracing arms at the first measured phase
            obs.provenance.suspend()
        fs, store, workload, now = _build_state(
            capacity, record_count, value_size, seed, device
        )
        if obs.provenance is not None:
            obs.provenance.resume()
        result = ObsTraceResult(obs=obs)
        fanout = obs.registry.histogram("block.split_fanout")
        # fragmentation timeline over the database tables; activity-driven,
        # so it rides the same device batches the phases generate
        sampler = FragmentationSampler(fs, interval=0.02, paths=store.files())
        result.sampler = sampler
        sampler.attach()
        sampler.sample(now)

        span = obs.span_start("phase.before", now)
        mark = fanout.snapshot()
        now, ops_per_sec = workload.run_ops(window_ops, now)
        result.fanout_before = fanout.delta(mark)
        result.phase_ops["before"] = ops_per_sec
        obs.span_finish(span, now)

        picker = FragPicker(fs, FragPickerConfig(hotness_criterion=hotness))
        span = obs.span_start("phase.analysis", now)
        with picker.monitor(apps={"rocksdb"}) as monitor:
            now, ops_per_sec = workload.run_ops(window_ops, now)
        result.phase_ops["analysis"] = ops_per_sec
        obs.span_finish(span, now)
        plans = picker.analyze(monitor.records, paths=store.files(), now=now)

        report = DefragReport(tool="fragpicker")
        fg_ctx, bg_ctx = corun_until_background_done(
            workload.actor(duration=float("inf")),
            picker.actor(plans, report_out=report),
            start=now,
        )
        result.phase_ops["defrag"] = fg_ctx.timeline.rate()
        result.defrag = report
        now = max(fg_ctx.now, bg_ctx.now)

        span = obs.span_start("phase.after", now)
        mark = fanout.snapshot()
        now, ops_per_sec = workload.run_ops(window_ops, now)
        result.fanout_after = fanout.delta(mark)
        result.phase_ops["after"] = ops_per_sec
        obs.span_finish(span, now)
        sampler.sample(now)
        sampler.detach()
    return result
