"""Section 3.3 (text-only result): sequential O_DIRECT *update* sweeps.

The paper reports, without a figure, that sequential updates behave like
reads: on Optane CC ~0.83 / NLRS ~0.0072 below 128 KiB, and on flash the
update NLRS (~0.0016) is *smaller* than the read NLRS because flash
allocates fresh pages across channels for updates (out-of-place) while
Optane updates in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .fig4_frag_metrics import Fig4Result, run as run_fig4


@dataclass
class UpdateSweepResult:
    reads: Fig4Result
    updates: Fig4Result

    def nlrs_before(self, result: Fig4Result, device: str) -> float:
        return result.sweeps[device].table1_row()["nlrs_size_before"]

    def summary(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for device in ("flash", "optane"):
            out[device] = {
                "read_nlrs": self.nlrs_before(self.reads, device),
                "update_nlrs": self.nlrs_before(self.updates, device),
            }
        return out

    def report(self) -> str:
        lines = []
        for device, row in self.summary().items():
            lines.append(
                f"{device}: NLRS(frag_size<128K) reads={row['read_nlrs']:.6f} "
                f"updates={row['update_nlrs']:.6f}"
            )
        return "\n".join(lines)


def run(**kwargs) -> UpdateSweepResult:
    devices = ("flash", "optane")
    reads = run_fig4(io_kind="read", devices=devices, **kwargs)
    updates = run_fig4(io_kind="update", devices=devices, **kwargs)
    return UpdateSweepResult(reads=reads, updates=updates)
