"""Extension E15 (paper Section 6): device-level (PBA) fragmentation.

Build a file that is perfectly contiguous in LBA space but whose pages
were rewritten in a pattern that concentrated them on one flash channel.
``filefrag`` (and therefore stock FragPicker) sees nothing to do, yet
sequential reads lose the channel parallelism.  The open-channel-aware
:class:`~repro.core.openchannel.PbaAwareFragPicker` detects the physical
imbalance and restripes the data by rewriting it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...constants import BLOCK_SIZE, GIB, MIB
from ...core import FragPicker
from ...core.openchannel import OpenChannelInspector, PbaAwareFragPicker
from ...core.range_list import FileRange
from ...device import make_device
from ...fs import make_filesystem
from ...workloads.synthetic import sequential_read


@dataclass
class PbaResult:
    balanced_mbps: float
    conflicted_mbps: float
    stock_fragpicker_mbps: float
    pba_fragpicker_mbps: float
    stock_migrated: int
    pba_migrated: int
    imbalance_before: float
    imbalance_after: float

    def report(self) -> str:
        return (
            f"seq read balanced:            {self.balanced_mbps:7.1f} MB/s\n"
            f"after channel concentration:  {self.conflicted_mbps:7.1f} MB/s "
            f"(imbalance {self.imbalance_before:.1f}x)\n"
            f"stock FragPicker (filefrag):  {self.stock_fragpicker_mbps:7.1f} MB/s "
            f"({self.stock_migrated} ranges migrated — LBA looks clean)\n"
            f"PBA-aware FragPicker:         {self.pba_fragpicker_mbps:7.1f} MB/s "
            f"({self.pba_migrated} ranges migrated, imbalance {self.imbalance_after:.1f}x)"
        )


def _build(file_size: int):
    device = make_device("flash", capacity=1 * GIB)
    fs = make_filesystem("ext4", device)
    handle = fs.open("/data", o_direct=True, app="setup", create=True)
    now = fs.write(handle, 0, file_size, now=0.0).finish_time
    return fs, device, handle, now


def _concentrate(fs, handle, file_size: int, now: float) -> float:
    """Rewrite each page with 7 dummy pages in between: every file page
    lands on the same flash channel (in-place LBA, out-of-place PBA)."""
    dummy = fs.open("/dummy", o_direct=True, app="setup", create=True)
    dummy_offset = 0
    for offset in range(0, file_size, BLOCK_SIZE):
        now = fs.write(handle, offset, BLOCK_SIZE, now=now).finish_time
        now = fs.write(dummy, dummy_offset, 7 * BLOCK_SIZE, now=now).finish_time
        dummy_offset += 7 * BLOCK_SIZE
    return now


def run(file_size: int = 8 * MIB) -> PbaResult:
    # balanced baseline
    fs, device, handle, now = _build(file_size)
    now, balanced = sequential_read(fs, "/data", now=now)
    inspector = OpenChannelInspector(device)
    now = _concentrate(fs, handle, file_size, now)
    imbalance_before = inspector.imbalance(fs, "/data", FileRange(0, file_size))
    now, conflicted = sequential_read(fs, "/data", now=now)

    # stock FragPicker: filefrag sees a contiguous file, migrates nothing
    stock = FragPicker(fs)
    stock_report = stock.defragment_bypass(["/data"], now=now)
    now, stock_mbps = sequential_read(fs, "/data", now=stock_report.finished_at)

    # PBA-aware FragPicker on an identically rebuilt state
    fs2, device2, handle2, now2 = _build(file_size)
    now2 = _concentrate(fs2, handle2, file_size, now2)
    pba = PbaAwareFragPicker(fs2)
    pba_report = pba.defragment(plans=pba.bypass_plans(["/data"]), now=now2)
    inspector2 = OpenChannelInspector(device2)
    imbalance_after = inspector2.imbalance(fs2, "/data", FileRange(0, file_size))
    now2, pba_mbps = sequential_read(fs2, "/data", now=pba_report.finished_at)

    return PbaResult(
        balanced_mbps=balanced,
        conflicted_mbps=conflicted,
        stock_fragpicker_mbps=stock_mbps,
        pba_fragpicker_mbps=pba_mbps,
        stock_migrated=stock_report.ranges_migrated,
        pba_migrated=pba_report.ranges_migrated,
        imbalance_before=imbalance_before,
        imbalance_after=imbalance_after,
    )
