"""Figure 10: YCSB workload-C over the LSM store on aged Ext4 / Optane.

The paper's protocol, scaled down: age the filesystem with dummy churn
(the Dabre-profile substitute), load the database (its tables land in
fragmented free space), free some dummy space, then measure workload
throughput in phases:

- **before** — no defragmentation running,
- **analysis** — FragPicker's syscall monitor attached (probe overhead),
- **migration / defrag** — the tool runs concurrently with the workload,
- **after** — post-defragmentation throughput.

Both e4defrag and FragPicker (hotness criterion 0.5, as in the paper) run
this protocol on identically rebuilt (same-seed) states.  Reported per
variant: phase throughputs, defrag elapsed time, and defrag I/O bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...constants import GIB, KIB, MIB
from ...core import FragPicker, FragPickerConfig
from ...core.report import DefragReport
from ...device import make_device
from ...fs import make_filesystem
from ...stats.tables import format_table
from ...tools import e4defrag
from ...workloads.aging import age_filesystem
from ...workloads.kvstore import LsmConfig, LsmStore
from ...workloads.ycsb import YcsbConfig, YcsbWorkload
from ..harness import VariantResult, corun_until_background_done, measured_variant


@dataclass
class PhaseStats:
    ops_per_sec: float
    ops: int
    duration: float


@dataclass
class VariantRun:
    tool: str
    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    defrag_elapsed: float = 0.0
    defrag_read_mb: float = 0.0
    defrag_write_mb: float = 0.0
    fragments_before: int = 0
    fragments_after: int = 0
    #: windowed obs capture (metrics + attribution); None when obs is off
    obs: Optional[VariantResult] = None

    @property
    def total_io_mb(self) -> float:
        return self.defrag_read_mb + self.defrag_write_mb

    def degradation_during(self) -> float:
        """Fractional throughput drop while defragmenting."""
        before = self.phases["before"].ops_per_sec
        during = self.phases["defrag"].ops_per_sec
        return 1.0 - during / before if before else 0.0

    def improvement_after(self) -> float:
        before = self.phases["before"].ops_per_sec
        after = self.phases["after"].ops_per_sec
        return after / before - 1.0 if before else 0.0


@dataclass
class Fig10Result:
    runs: Dict[str, VariantRun]

    def report(self) -> str:
        headers = ["tool", "before op/s", "analysis op/s", "defrag op/s",
                   "after op/s", "defrag s", "R+W MB", "frags before", "frags after"]
        rows = []
        for run in self.runs.values():
            rows.append([
                run.tool,
                run.phases["before"].ops_per_sec,
                run.phases.get("analysis", run.phases["before"]).ops_per_sec,
                run.phases["defrag"].ops_per_sec,
                run.phases["after"].ops_per_sec,
                run.defrag_elapsed,
                run.total_io_mb,
                run.fragments_before,
                run.fragments_after,
            ])
        return format_table(headers, rows)


def _build_state(record_count: int, value_size: int, seed: int) -> Tuple:
    """Aged filesystem + loaded database, fully deterministic."""
    device = make_device("optane", capacity=2 * GIB)
    fs = make_filesystem("ext4", device)
    # Fill nearly full with small files, then delete a random subset: the
    # remaining free space is all small holes, so the database tables land
    # shredded (an aged filesystem, the paper's Dabre-profile substitute).
    age_filesystem(fs, fill_fraction=0.997, delete_fraction=0.35,
                   min_file=8 * KIB, max_file=48 * KIB, seed=seed)
    store = LsmStore(fs, LsmConfig(block_size=128 * KIB, memtable_bytes=4 * MIB))
    workload = YcsbWorkload(
        store,
        YcsbConfig(record_count=record_count, value_size=value_size,
                   read_proportion=1.0, update_proportion=0.0, seed=seed),
    )
    now = workload.load(0.0)
    # Delete a *contiguous* band of dummy files after loading — the
    # paper's "deleted some of the dummy files to secure some free space":
    # consecutively created files are adjacent on disk, so this opens large
    # runs the defragmenters can migrate into.
    leftovers = sorted(fs.listdir("/aging"))
    band = leftovers[len(leftovers) // 3 : len(leftovers) // 3 + len(leftovers) // 4]
    for path in band:
        now = fs.unlink(path, now=now).finish_time
    fs.drop_caches()
    return fs, store, workload, now


def _run_window(workload: YcsbWorkload, ops: int, now: float) -> Tuple[float, PhaseStats]:
    start = now
    now, ops_per_sec = workload.run_ops(ops, now)
    return now, PhaseStats(ops_per_sec=ops_per_sec, ops=ops, duration=now - start)


def _avg_frags(fs, paths: List[str]) -> int:
    counts = [fs.inode_of(p).fragment_count() for p in paths if fs.exists(p)]
    return sum(counts) // max(1, len(counts))


def run(
    record_count: int = 30_000,
    value_size: int = 1024,
    window_ops: int = 2_000,
    warmup_ops: int = 3_000,
    hotness: float = 0.5,
    seed: int = 42,
) -> Fig10Result:
    """Run the Figure 10 protocol for e4defrag and FragPicker."""
    runs: Dict[str, VariantRun] = {}

    # ---------------- e4defrag ----------------
    with measured_variant("e4defrag") as window:
        fs, store, workload, now = _build_state(record_count, value_size, seed)
        run_e4 = VariantRun(tool="e4defrag")
        run_e4.fragments_before = _avg_frags(fs, store.files())
        now, _ = _run_window(workload, warmup_ops, now)
        now, run_e4.phases["before"] = _run_window(workload, window_ops, now)
        tool = e4defrag(fs)
        report = DefragReport(tool="e4defrag")
        fg_ctx, bg_ctx = corun_until_background_done(
            workload.actor(duration=float("inf")),
            tool.actor(store.files(), report_out=report),
            start=now,
        )
        during = fg_ctx.timeline
        run_e4.phases["defrag"] = PhaseStats(
            ops_per_sec=during.rate(), ops=len(during.events), duration=during.duration
        )
        run_e4.defrag_elapsed = report.elapsed
        run_e4.defrag_read_mb = report.read_bytes / MIB
        run_e4.defrag_write_mb = report.write_bytes / MIB
        now = max(fg_ctx.now, bg_ctx.now)
        now, run_e4.phases["after"] = _run_window(workload, window_ops, now)
        run_e4.fragments_after = _avg_frags(fs, store.files())
        _fill_window(window, run_e4)
    run_e4.obs = window if window.metrics is not None else None
    runs["e4defrag"] = run_e4

    # ---------------- FragPicker ----------------
    with measured_variant("fragpicker") as window:
        fs, store, workload, now = _build_state(record_count, value_size, seed)
        run_fp = VariantRun(tool="fragpicker")
        run_fp.fragments_before = _avg_frags(fs, store.files())
        now, _ = _run_window(workload, warmup_ops, now)
        now, run_fp.phases["before"] = _run_window(workload, window_ops, now)
        picker = FragPicker(fs, FragPickerConfig(hotness_criterion=hotness))
        with picker.monitor(apps={"rocksdb"}) as monitor:
            now, run_fp.phases["analysis"] = _run_window(workload, window_ops, now)
        plans = picker.analyze(monitor.records, paths=store.files())
        report = DefragReport(tool="fragpicker")
        fg_ctx, bg_ctx = corun_until_background_done(
            workload.actor(duration=float("inf")),
            picker.actor(plans, report_out=report),
            start=now,
        )
        during = fg_ctx.timeline
        run_fp.phases["defrag"] = PhaseStats(
            ops_per_sec=during.rate(), ops=len(during.events), duration=during.duration
        )
        run_fp.defrag_elapsed = report.elapsed
        run_fp.defrag_read_mb = report.read_bytes / MIB
        run_fp.defrag_write_mb = report.write_bytes / MIB
        now = max(fg_ctx.now, bg_ctx.now)
        now, run_fp.phases["after"] = _run_window(workload, window_ops, now)
        run_fp.fragments_after = _avg_frags(fs, store.files())
        _fill_window(window, run_fp)
    run_fp.obs = window if window.metrics is not None else None
    runs["fragpicker"] = run_fp

    return Fig10Result(runs=runs)


def _fill_window(window: VariantResult, run: VariantRun) -> None:
    """Mirror a VariantRun's headline numbers into its obs window."""
    window.throughput_mbps = run.phases["after"].ops_per_sec
    window.defrag_read_mb = run.defrag_read_mb
    window.defrag_write_mb = run.defrag_write_mb
    window.defrag_elapsed = run.defrag_elapsed
    window.fragments_after = float(run.fragments_after)
    window.extra["before_ops_per_sec"] = run.phases["before"].ops_per_sec
    window.extra["defrag_ops_per_sec"] = run.phases["defrag"].ops_per_sec
