"""Ablation E13: what each FragPicker design choice contributes.

Runs the stride-read synthetic scenario with individual features knocked
out:

- ``full``        — FragPicker as designed,
- ``no_merge``    — Algorithm 1 disabled (raw per-I/O ranges),
- ``no_check``    — fragmentation checking disabled (migrate every range),
- ``no_readahead``— readahead imitation disabled (matters for buffered
  sequential workloads: analysis under-sizes the ranges).

Each variant reports the post-defrag throughput and the migration write
traffic; the design claim is that the checks cut writes without hurting
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...constants import MIB
from ...core import FragPicker, FragPickerConfig
from ...stats.tables import format_table
from ...workloads.synthetic import make_paper_synthetic_file, stride_read, sequential_read
from ..harness import fresh_fs

CONFIGS: Dict[str, FragPickerConfig] = {
    "full": FragPickerConfig(),
    "no_merge": FragPickerConfig(merge_overlaps=False),
    "no_check": FragPickerConfig(check_fragmentation=False),
    "no_readahead": FragPickerConfig(imitate_readahead=False),
}


@dataclass
class PhaseCell:
    throughput_mbps: float
    write_mb: float
    elapsed: float


@dataclass
class PhasesResult:
    cells: Dict[str, PhaseCell]
    original_mbps: float

    def report(self) -> str:
        headers = ["variant", "MB/s", "writes MB", "defrag s"]
        rows = [[name, c.throughput_mbps, c.write_mb, c.elapsed]
                for name, c in self.cells.items()]
        return (f"original: {self.original_mbps:.1f} MB/s\n"
                + format_table(headers, rows))


def run(
    fs_type: str = "ext4",
    device_kind: str = "optane",
    file_size: int = 33 * MIB,
    pattern: str = "stride_read",
) -> PhasesResult:
    pattern_fn = stride_read if pattern == "stride_read" else sequential_read
    original_mbps = 0.0
    cells: Dict[str, PhaseCell] = {}
    for name, config in CONFIGS.items():
        fs, _ = fresh_fs(fs_type, device_kind)
        now = make_paper_synthetic_file(fs, "/t", file_size)
        now, base = pattern_fn(fs, "/t", now=now)
        original_mbps = original_mbps or base
        # buffered trace for the readahead-imitation knob to matter
        o_direct = name != "no_readahead"
        picker = FragPicker(fs, config)
        with picker.monitor(apps={"bench"}) as monitor:
            now, _ = pattern_fn(fs, "/t", now=now, o_direct=o_direct)
        report = picker.defragment(monitor.records, paths=["/t"], now=now)
        now, mbps = pattern_fn(fs, "/t", now=report.finished_at)
        cells[name] = PhaseCell(
            throughput_mbps=mbps,
            write_mb=report.write_bytes / MIB,
            elapsed=report.elapsed,
        )
    return PhasesResult(cells=cells, original_mbps=original_mbps)
