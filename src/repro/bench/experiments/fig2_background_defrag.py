"""Figure 2: YCSB workload-A throughput while e4defrag works in the
background on unrelated files.

Protocol (scaled from the paper's 30 GB / 1000 files): build a set of
fragmented dummy files and a separate LSM database on Ext4/flash, run
YCSB-A (50/50 read/update, zipfian), and after a warm-up window start a
defragmenter on the dummy files.  The result carries the ops/sec timeline
plus the average throughput before/during defragmentation — the paper
reports a ~32% drop for e4defrag.  Running FragPicker instead (bypass
plans over the same files) shows the contrast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...constants import GIB, KIB, MIB
from ...core import FragPicker, FragPickerConfig
from ...core.report import DefragReport
from ...device import make_device
from ...fs import make_filesystem
from ...stats.timeline import windowed_throughput
from ...tools import e4defrag
from ...workloads.fileserver import FileServer, FileServerConfig
from ...workloads.kvstore import LsmConfig, LsmStore
from ...workloads.ycsb import YcsbConfig, YcsbWorkload
from ..harness import corun_until_background_done


@dataclass
class Fig2Run:
    tool: str
    before_ops: float
    during_ops: float
    after_ops: float
    defrag_elapsed: float
    defrag_write_mb: float
    timeline: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def degradation(self) -> float:
        return 1.0 - self.during_ops / self.before_ops if self.before_ops else 0.0


@dataclass
class Fig2Result:
    runs: Dict[str, Fig2Run]

    def report(self) -> str:
        lines = []
        for run in self.runs.values():
            lines.append(
                f"{run.tool}: before {run.before_ops:.0f} op/s, during {run.during_ops:.0f} op/s "
                f"({run.degradation * 100:.0f}% drop), after {run.after_ops:.0f} op/s, "
                f"defrag took {run.defrag_elapsed:.1f}s writing {run.defrag_write_mb:.0f} MB"
            )
        return "\n".join(lines)


def _setup(seed: int, dummy_files: int, dummy_mean: int, record_count: int, value_size: int):
    device = make_device("flash", capacity=4 * GIB)
    fs = make_filesystem("ext4", device)
    server = FileServer(
        fs,
        FileServerConfig(
            directory="/dummies", file_count=dummy_files, mean_file_size=dummy_mean,
            churn_rounds=1, seed=seed,
        ),
    )
    now = server.populate(0.0)
    store = LsmStore(fs, LsmConfig(block_size=128 * KIB))
    workload = YcsbWorkload(
        store,
        YcsbConfig(record_count=record_count, value_size=value_size,
                   read_proportion=0.5, update_proportion=0.5, seed=seed),
    )
    now = workload.load(now)
    fs.drop_caches()
    return fs, server, workload, now


def run(
    dummy_files: int = 50,
    dummy_mean: int = 2 * MIB,
    record_count: int = 20_000,
    value_size: int = 1024,
    window_ops: int = 8_000,
    warmup_ops: int = 6_000,
    seed: int = 42,
) -> Fig2Result:
    """Run Figure 2 with e4defrag, then with FragPicker for contrast."""
    runs: Dict[str, Fig2Run] = {}
    for tool_name in ("e4defrag", "fragpicker"):
        fs, server, workload, now = _setup(seed, dummy_files, dummy_mean, record_count, value_size)
        now, _ = workload.run_ops(warmup_ops, now)  # reach steady state
        now, before = workload.run_ops(window_ops, now)
        report = DefragReport(tool=tool_name)
        if tool_name == "e4defrag":
            background = e4defrag(fs).actor(server.paths, report_out=report)
        else:
            picker = FragPicker(fs, FragPickerConfig())
            background = picker.actor(picker.bypass_plans(server.paths), report_out=report)
        fg_ctx, bg_ctx = corun_until_background_done(
            workload.actor(duration=float("inf")), background, start=now
        )
        during = fg_ctx.timeline.rate()
        now = max(fg_ctx.now, bg_ctx.now)
        now, after = workload.run_ops(window_ops, now)
        samples = windowed_throughput(
            fg_ctx.timeline, window=max(report.elapsed / 20.0, 1e-3)
        )
        runs[tool_name] = Fig2Run(
            tool=tool_name,
            before_ops=before,
            during_ops=during,
            after_ops=after,
            defrag_elapsed=report.elapsed,
            defrag_write_mb=report.write_bytes / MIB,
            timeline=samples,
        )
    return Fig2Result(runs=runs)
