"""Figure 4 + Table 1: performance vs frag_size / frag_distance per device.

Recreates the paper's Section 3 sweeps:

- **frag_size sweep** — fragment sizes from 4 KiB past the 128 KiB request
  size, frag_distance fixed at 1024 KiB; sequential 128 KiB reads.
- **frag_distance sweep** — distances from 4 KiB to 4 MiB with frag_size
  fixed at 4 KiB.

From the sweep samples it computes Table 1: the correlation coefficient
(CC) and normalized linear regression slope (NLRS) between each metric and
performance (normalized to the lowest sample), with the frag_size
statistics split at 128 KiB.  Section 3.3's update-mode variant is also
available (``io_kind="update"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...constants import KIB, MIB
from ...stats.correlation import correlation_coefficient, nlrs
from ...stats.tables import format_table
from ...workloads.synthetic import (
    FragmentSpec,
    make_fragmented_file,
    sequential_read,
    sequential_update,
)
from ..harness import fresh_fs

DEVICES = ("hdd", "microsd", "flash", "optane")

FRAG_SIZES = [4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB, 96 * KIB,
              128 * KIB, 192 * KIB, 256 * KIB, 384 * KIB, 512 * KIB]
FRAG_DISTANCES = [4 * KIB, 64 * KIB, 512 * KIB, 2 * MIB, 8 * MIB, 16 * MIB]

SIZE_SWEEP_DISTANCE = 1024 * KIB   # the paper fixes distance at 1024 KiB
DISTANCE_SWEEP_FRAG = 4 * KIB      # and frag size at 4 KiB


@dataclass
class DeviceSweep:
    device: str
    #: frag_size -> MB/s
    size_curve: Dict[int, float] = field(default_factory=dict)
    #: frag_distance -> MB/s
    distance_curve: Dict[int, float] = field(default_factory=dict)

    # -- Table 1 statistics -------------------------------------------------

    def _split(self) -> Tuple[List[int], List[float], List[int], List[float]]:
        xs_lo, ys_lo, xs_hi, ys_hi = [], [], [], []
        for size, perf in sorted(self.size_curve.items()):
            if size <= 128 * KIB:
                xs_lo.append(size // KIB)
                ys_lo.append(perf)
            if size >= 128 * KIB:
                xs_hi.append(size // KIB)
                ys_hi.append(perf)
        return xs_lo, ys_lo, xs_hi, ys_hi

    def table1_row(self) -> Dict[str, float]:
        xs_lo, ys_lo, xs_hi, ys_hi = self._split()
        all_perf = list(self.size_curve.values()) + list(self.distance_curve.values())
        lo = min(all_perf)
        norm = lambda ys: [y / lo for y in ys]
        xd = [d // KIB for d in sorted(self.distance_curve)]
        yd = [self.distance_curve[d] for d in sorted(self.distance_curve)]
        return {
            "cc_size_before": correlation_coefficient(xs_lo, norm(ys_lo)),
            "cc_size_after": correlation_coefficient(xs_hi, norm(ys_hi)),
            "nlrs_size_before": nlrs(xs_lo, norm(ys_lo)),
            "nlrs_size_after": nlrs(xs_hi, norm(ys_hi)),
            "cc_distance": correlation_coefficient(xd, norm(yd)),
            "nlrs_distance": nlrs(xd, norm(yd)),
        }


@dataclass
class Fig4Result:
    io_kind: str
    sweeps: Dict[str, DeviceSweep]

    def table1(self) -> str:
        headers = ["Device", "CC size <128K", "CC size >128K",
                   "NLRS size <128K", "NLRS size >128K", "CC dist", "NLRS dist"]
        rows = []
        for device, sweep in self.sweeps.items():
            row = sweep.table1_row()
            rows.append([
                device,
                row["cc_size_before"], row["cc_size_after"],
                row["nlrs_size_before"], row["nlrs_size_after"],
                row["cc_distance"], row["nlrs_distance"],
            ])
        return format_table(headers, rows)

    def figure4(self) -> str:
        lines = []
        for device, sweep in self.sweeps.items():
            lines.append(f"-- {device}: seq {self.io_kind} MB/s --")
            lines.append("  frag_size:  " + "  ".join(
                f"{s // KIB}K={sweep.size_curve[s]:.1f}" for s in sorted(sweep.size_curve)))
            lines.append("  frag_dist:  " + "  ".join(
                f"{d // KIB}K={sweep.distance_curve[d]:.1f}" for d in sorted(sweep.distance_curve)))
        return "\n".join(lines)


def _measure_point(device_kind: str, spec: FragmentSpec, io_kind: str, file_size: int) -> float:
    fs, _ = fresh_fs("ext4", device_kind)
    now = make_fragmented_file(fs, "/sweep", file_size, spec, fallocate_dummy=True)
    runner = sequential_read if io_kind == "read" else sequential_update
    _, mbps = runner(fs, "/sweep", now=now)
    return mbps


def run(
    io_kind: str = "read",
    devices: Tuple[str, ...] = DEVICES,
    file_size: int = 16 * MIB,
    distance_file_size: int = 4 * MIB,
    frag_sizes: List[int] = None,
    frag_distances: List[int] = None,
) -> Fig4Result:
    """Run both sweeps on every device; returns curves + Table 1 stats.

    The distance sweep uses a smaller file so large distances keep the
    total span within device capacity.
    """
    frag_sizes = frag_sizes or FRAG_SIZES
    frag_distances = frag_distances or FRAG_DISTANCES
    sweeps: Dict[str, DeviceSweep] = {}
    for device in devices:
        sweep = DeviceSweep(device)
        for frag_size in frag_sizes:
            spec = FragmentSpec(frag_size, SIZE_SWEEP_DISTANCE)
            sweep.size_curve[frag_size] = _measure_point(device, spec, io_kind, file_size)
        for distance in frag_distances:
            spec = FragmentSpec(DISTANCE_SWEEP_FRAG, distance)
            sweep.distance_curve[distance] = _measure_point(
                device, spec, io_kind, distance_file_size
            )
        sweeps[device] = sweep
    return Fig4Result(io_kind=io_kind, sweeps=sweeps)
