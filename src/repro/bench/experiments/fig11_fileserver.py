"""Figure 11: Filebench-fileserver grep cost on F2FS (Flash and Optane).

Populate/churn a fileserver directory (O_DIRECT, interleaved appends),
then measure the recursive-grep cost (s/GB; 32 KiB buffered sequential
reads, so readahead issues 128 KiB requests) for:

- **original** — fragmented file set,
- **conv** — full-file rewrite defragmentation (the paper's F2FS mimic),
- **fragpicker** — bypass plans (grep *is* a sequential read workload).

Also reported: defragmentation write traffic and the average fragments per
file before/after (the paper: 1395 -> 1.77 on Optane, 1068 -> 2.48 on
flash).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...constants import GIB, MIB
from ...core import FragPicker
from ...device import make_device
from ...fs import make_filesystem
from ...tools import f2fs_defrag
from ...workloads.fileserver import FileServer, FileServerConfig, grep_directory
from ..harness import VariantResult, measured_variant


@dataclass
class Fig11Cell:
    grep_cost: float            # s/GB
    defrag_write_mb: float
    avg_fragments: float
    #: windowed obs capture (metrics + attribution); None when obs is off
    obs: Optional[VariantResult] = None


@dataclass
class Fig11Result:
    device: str
    fragments_before: float
    cells: Dict[str, Fig11Cell]

    def report(self) -> str:
        lines = [f"[f2fs on {self.device}] avg fragments before: {self.fragments_before:.0f}"]
        for name, cell in self.cells.items():
            lines.append(
                f"{name}: grep {cell.grep_cost:.2f} s/GB, defrag writes {cell.defrag_write_mb:.0f} MB, "
                f"avg frags {cell.avg_fragments:.2f}"
            )
        return "\n".join(lines)


def _setup(device_kind: str, file_count: int, mean_size: int, seed: int):
    device = make_device(device_kind, capacity=4 * GIB)
    fs = make_filesystem("f2fs", device)
    server = FileServer(
        fs,
        FileServerConfig(file_count=file_count, mean_file_size=mean_size,
                         churn_rounds=2, seed=seed),
    )
    now = server.populate(0.0)
    fs.drop_caches()
    return fs, server, now


def run(
    device_kind: str = "flash",
    file_count: int = 60,
    mean_size: int = 2 * MIB,
    seed: int = 5,
) -> Fig11Result:
    cells: Dict[str, Fig11Cell] = {}
    fragments_before = 0.0
    for variant in ("original", "conv", "fragpicker"):
        with measured_variant(variant) as window:
            fs, server, now = _setup(device_kind, file_count, mean_size, seed)
            if not fragments_before:
                fragments_before = server.average_fragments()
            write_mb = 0.0
            if variant == "conv":
                report = f2fs_defrag(fs).defragment(server.paths, now=now)
                now = report.finished_at
                write_mb = report.write_bytes / MIB
            elif variant == "fragpicker":
                picker = FragPicker(fs)
                report = picker.defragment(plans=picker.bypass_plans(server.paths), now=now)
                now = report.finished_at
                write_mb = report.write_bytes / MIB
            fs.drop_caches()
            now, grep = grep_directory(fs, server.config.directory, now)
            window.defrag_write_mb = write_mb
            window.fragments_after = server.average_fragments()
            window.extra["grep_cost_s_per_gb"] = grep.cost_per_gb
        cells[variant] = Fig11Cell(
            grep_cost=grep.cost_per_gb,
            defrag_write_mb=write_mb,
            avg_fragments=window.fragments_after,
            obs=window if window.metrics is not None else None,
        )
    return Fig11Result(device=device_kind, fragments_before=fragments_before, cells=cells)
