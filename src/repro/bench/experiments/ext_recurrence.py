"""Extension E16 (paper Section 2.4): defragmentation as a routine.

Fragmentation recurs within days, so defragmentation is scheduled daily or
weekly in practice — which multiplies each tool's per-run I/O.  This
experiment alternates a fragmenting churn workload with a defrag cycle,
``cycles`` times, and accumulates each tool's total write traffic and the
flash wear it causes — the compounding cost the paper's introduction warns
about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ...constants import GIB, MIB
from ...core import FragPicker
from ...device import make_device
from ...device.flash import FlashSsd
from ...fs import make_filesystem
from ...tools import e4defrag
from ...workloads.fileserver import FileServer, FileServerConfig, grep_directory


@dataclass
class RoutineRun:
    tool: str
    per_cycle_write_mb: List[float] = field(default_factory=list)
    total_write_mb: float = 0.0
    pages_programmed: int = 0
    final_grep_cost: float = 0.0


@dataclass
class RecurrenceResult:
    runs: Dict[str, RoutineRun]

    def report(self) -> str:
        lines = []
        for run in self.runs.values():
            cycles = ", ".join(f"{w:.0f}" for w in run.per_cycle_write_mb)
            lines.append(
                f"{run.tool}: {run.total_write_mb:.0f} MB written over "
                f"{len(run.per_cycle_write_mb)} cycles [{cycles}], "
                f"{run.pages_programmed} flash pages programmed, "
                f"final grep {run.final_grep_cost:.2f} s/GB"
            )
        return "\n".join(lines)


def _one_tool(tool_name: str, cycles: int, seed: int) -> RoutineRun:
    device = make_device("flash", capacity=2 * GIB)
    fs = make_filesystem("ext4", device)
    assert isinstance(device, FlashSsd)
    server = FileServer(
        fs,
        FileServerConfig(file_count=20, mean_file_size=1 * MIB,
                         churn_rounds=0, seed=seed),
    )
    now = server.populate(0.0)
    run = RoutineRun(tool=tool_name)
    pages_before = device.ftl.host_pages_written + device.ftl.relocated_pages_total
    for cycle in range(cycles):
        now = server._churn(cycle, now)  # the recurring fragmentation
        if tool_name == "e4defrag":
            report = e4defrag(fs).defragment(server.paths, now=now)
        else:
            picker = FragPicker(fs)
            report = picker.defragment(plans=picker.bypass_plans(server.paths), now=now)
        now = report.finished_at
        run.per_cycle_write_mb.append(report.write_bytes / MIB)
    run.total_write_mb = sum(run.per_cycle_write_mb)
    run.pages_programmed = (
        device.ftl.host_pages_written + device.ftl.relocated_pages_total - pages_before
    )
    fs.drop_caches()
    now, grep = grep_directory(fs, server.config.directory, now)
    run.final_grep_cost = grep.cost_per_gb
    return run


def run(cycles: int = 4, seed: int = 13) -> RecurrenceResult:
    return RecurrenceResult(
        runs={
            "e4defrag": _one_tool("e4defrag", cycles, seed),
            "fragpicker": _one_tool("fragpicker", cycles, seed),
        }
    )
