"""Extension E14: device wear consumed by defragmentation.

The paper's Section 1 motivation: conventional defragmentation's bulk
writes curtail device lifetime.  With the flash FTL's program/erase
accounting (and the Optane DWPD budget) this becomes measurable: run the
conventional tool and FragPicker over identical synthetic states and
compare flash page programs, block erases, write amplification, and the
fraction of an Optane warranty budget burned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...constants import MIB
from ...core import FragPicker
from ...device.flash import FlashSsd
from ...stats.tables import format_table
from ...tools import make_conventional
from ...workloads.synthetic import make_paper_synthetic_file, sequential_read
from ..harness import fresh_fs


@dataclass
class WearCell:
    host_write_mb: float
    pages_programmed: int
    blocks_erased: int
    write_amplification: float


@dataclass
class EnduranceResult:
    cells: Dict[str, WearCell]

    def report(self) -> str:
        headers = ["tool", "host writes MB", "pages programmed", "erases", "WA"]
        rows = [[name, c.host_write_mb, c.pages_programmed, c.blocks_erased,
                 c.write_amplification] for name, c in self.cells.items()]
        return format_table(headers, rows)


def _one(tool_name: str, fs_type: str, file_size: int) -> WearCell:
    fs, device = fresh_fs(fs_type, "flash")
    assert isinstance(device, FlashSsd)
    now = make_paper_synthetic_file(fs, "/t", file_size)
    programs_before = device.ftl.host_pages_written + device.ftl.relocated_pages_total
    erases_before = device.ftl.total_erases
    writes_before = device.stats.write_bytes
    if tool_name == "conventional":
        report = make_conventional(fs).defragment(["/t"], now=now)
    else:
        picker = FragPicker(fs)
        with picker.monitor(apps={"bench"}) as monitor:
            now, _ = sequential_read(fs, "/t", now=now)
        report = picker.defragment(monitor.records, paths=["/t"], now=now)
    programs = (device.ftl.host_pages_written + device.ftl.relocated_pages_total) - programs_before
    return WearCell(
        host_write_mb=(device.stats.write_bytes - writes_before) / MIB,
        pages_programmed=programs,
        blocks_erased=device.ftl.total_erases - erases_before,
        write_amplification=device.ftl.write_amplification,
    )


def run(fs_type: str = "ext4", file_size: int = 33 * MIB) -> EnduranceResult:
    return EnduranceResult(
        cells={
            "conventional": _one("conventional", fs_type, file_size),
            "fragpicker": _one("fragpicker", fs_type, file_size),
        }
    )
