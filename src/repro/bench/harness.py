"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..device import make_device
from ..device.base import StorageDevice
from ..fs import make_filesystem
from ..fs.base import Filesystem
from ..obs import hooks as obs_hooks


def fresh_fs(fs_type: str, device_kind: str, **fs_kwargs) -> Tuple[Filesystem, StorageDevice]:
    """A fresh filesystem on a fresh device (every variant starts equal)."""
    device = make_device(device_kind)
    fs = make_filesystem(fs_type, device, **fs_kwargs)
    return fs, device


@dataclass
class VariantResult:
    """One bar of a figure: a defrag variant's performance and cost."""

    name: str
    throughput_mbps: float = 0.0
    defrag_read_mb: float = 0.0
    defrag_write_mb: float = 0.0
    defrag_elapsed: float = 0.0
    fragments_after: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: full ``repro.obs`` registry dump (None unless obs was enabled)
    metrics: Optional[Dict[str, Dict[str, object]]] = None

    def attach_metrics(self) -> "VariantResult":
        """Snapshot the current instrumentation's registry, if enabled."""
        self.metrics = metrics_snapshot()
        return self


def metrics_snapshot() -> Optional[Dict[str, Dict[str, object]]]:
    """JSON-ready dump of the active obs registry (None when disabled)."""
    obs = obs_hooks.current()
    if not obs.enabled:
        return None
    return obs.registry.to_dict()


@dataclass
class Variant:
    """Named defrag strategy applied inside an experiment."""

    name: str
    kind: str  # "original" | "conventional" | "conventional-t" | "fragpicker" | "fragpicker-b"
    extent_threshold: Optional[int] = None
    hotness_criterion: float = 1.0


def print_header(title: str) -> None:
    bar = "=" * len(title)
    print(f"\n{bar}\n{title}\n{bar}")


def corun_until_background_done(foreground, background, start: float = 0.0):
    """Run ``foreground`` (an endless actor) until ``background`` finishes.

    Both arguments are actor factories (``fn(ctx) -> generator``).  Returns
    ``(foreground_ctx, background_ctx)`` — this is the Figure 2/10 pattern:
    a workload hammered while a defragmenter works in the background.
    """
    from ..sim.engine import run_concurrently  # late import: avoid cycles

    done = {"flag": False}

    def bg(ctx):
        for _ in background(ctx):
            yield
        done["flag"] = True

    def fg(ctx):
        iterator = foreground(ctx)
        while not done["flag"]:
            try:
                next(iterator)
            except StopIteration:
                break
            yield

    contexts = run_concurrently({"foreground": fg, "background": bg}, start=start)
    return contexts["foreground"], contexts["background"]
