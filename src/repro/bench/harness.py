"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..device import make_device
from ..device.base import StorageDevice
from ..fs import make_filesystem
from ..fs.base import Filesystem
from ..obs import analysis as obs_analysis
from ..obs import hooks as obs_hooks


def fresh_fs(fs_type: str, device_kind: str, **fs_kwargs) -> Tuple[Filesystem, StorageDevice]:
    """A fresh filesystem on a fresh device (every variant starts equal)."""
    device = make_device(device_kind)
    fs = make_filesystem(fs_type, device, **fs_kwargs)
    return fs, device


@dataclass
class VariantResult:
    """One bar of a figure: a defrag variant's performance and cost."""

    name: str
    throughput_mbps: float = 0.0
    defrag_read_mb: float = 0.0
    defrag_write_mb: float = 0.0
    defrag_elapsed: float = 0.0
    fragments_after: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: ``repro.obs`` registry dump for this variant's measurement window
    #: (None unless obs was enabled)
    metrics: Optional[Dict[str, Dict[str, object]]] = None
    #: latency-attribution breakdown over the same window
    #: (``repro.obs.analysis.Attribution.to_dict()``; None when disabled)
    attribution: Optional[Dict[str, object]] = None
    #: provenance-forest summary (``ProvenanceForest.summary()``; None
    #: unless causal tracing was armed via ``Instrumentation(provenance=True)``)
    provenance: Optional[Dict[str, object]] = None

    def attach_metrics(self, since: Optional[Dict[str, object]] = None) -> "VariantResult":
        """Capture the active registry (windowed against ``since``) plus
        its latency attribution, if obs is enabled."""
        obs = obs_hooks.current()
        if not obs.enabled:
            return self
        self.metrics = obs_analysis.delta_metrics(obs.registry, since)
        self.attribution = obs_analysis.attribute(self.metrics).to_dict()
        if obs.provenance is not None:
            from ..obs.provenance import build_forest  # late: avoid cycles
            self.provenance = build_forest(obs.spans).summary()
        return self

    def attribution_table(self) -> str:
        if self.metrics is None:
            return "(no metrics attached)"
        return obs_analysis.attribute(self.metrics).table()

    def fanout_summary(self) -> Dict[str, float]:
        """{count, mean, p95, max} of this window's split fan-out."""
        return obs_analysis.histogram_summary(self.metrics or {}, "block.split_fanout")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (what ``BENCH_*.json`` persists per variant)."""
        doc: Dict[str, object] = {
            "throughput_mbps": self.throughput_mbps,
            "defrag_read_mb": self.defrag_read_mb,
            "defrag_write_mb": self.defrag_write_mb,
            "defrag_elapsed": self.defrag_elapsed,
            "fragments_after": self.fragments_after,
            "extra": dict(self.extra),
        }
        if self.metrics is not None:
            doc["split_fanout"] = self.fanout_summary()
        if self.attribution is not None:
            doc["attribution"] = self.attribution
        if self.provenance is not None:
            doc["provenance"] = self.provenance
        return doc


@contextmanager
def measured_variant(name: str) -> Iterator[VariantResult]:
    """One variant's measurement window, metrics attached centrally.

    Wraps a variant's whole run (setup + defrag + measurement).  On exit
    the live registry is windowed against the entry snapshot and attached,
    so no experiment can silently drop telemetry by forgetting
    ``attach_metrics()``; with obs disabled this costs two attribute
    lookups.
    """
    obs = obs_hooks.current()
    since = obs.registry.snapshot() if obs.enabled else None
    result = VariantResult(name=name)
    try:
        yield result
    finally:
        result.attach_metrics(since=since)


def metrics_snapshot() -> Optional[Dict[str, Dict[str, object]]]:
    """JSON-ready dump of the active obs registry (None when disabled)."""
    obs = obs_hooks.current()
    if not obs.enabled:
        return None
    return obs.registry.to_dict()


@dataclass
class Variant:
    """Named defrag strategy applied inside an experiment."""

    name: str
    kind: str  # "original" | "conventional" | "conventional-t" | "fragpicker" | "fragpicker-b"
    extent_threshold: Optional[int] = None
    hotness_criterion: float = 1.0


def print_header(title: str) -> None:
    bar = "=" * len(title)
    print(f"\n{bar}\n{title}\n{bar}")


def corun_until_background_done(foreground, background, start: float = 0.0):
    """Run ``foreground`` (an endless actor) until ``background`` finishes.

    Both arguments are actor factories (``fn(ctx) -> generator``).  Returns
    ``(foreground_ctx, background_ctx)`` — this is the Figure 2/10 pattern:
    a workload hammered while a defragmenter works in the background.
    """
    from ..sim.engine import run_concurrently  # late import: avoid cycles

    done = {"flag": False}

    def bg(ctx):
        for _ in background(ctx):
            yield
        done["flag"] = True

    def fg(ctx):
        iterator = foreground(ctx)
        while not done["flag"]:
            try:
                next(iterator)
            except StopIteration:
                break
            yield

    contexts = run_concurrently({"foreground": fg, "background": bg}, start=start)
    return contexts["foreground"], contexts["background"]
