"""Experiment implementations for every table and figure in the paper.

Each module in :mod:`repro.bench.experiments` reproduces one artifact and
returns a result object with the same rows/series the paper reports; the
``benchmarks/`` pytest suite wraps them and asserts the result *shapes*
(who wins, by roughly what factor, where the knees fall).
"""

from .harness import (
    Variant,
    VariantResult,
    fresh_fs,
    measured_variant,
    print_header,
)

__all__ = [
    "Variant",
    "VariantResult",
    "fresh_fs",
    "measured_variant",
    "print_header",
]
