"""The ``repro bench`` suite: a scaled, instrumented sweep for regression
tracking.

Runs a deterministic subset of the paper's figures with the observability
plane enabled, and condenses each variant into the flat summary shape
:mod:`repro.bench.regression` compares:

- ``synthetic_<fs>_<device>`` — the Figure 8/9 grid, one cell per
  (variant, pattern), with per-window latency attribution and split
  fan-out;
- ``fileserver_<device>`` — Figure 11's grep cost (stored as GB/s so
  "higher is better" holds);
- ``obs_trace`` — the instrumented Fig. 10 protocol: phase throughputs,
  the before/after fan-out shift, and the whole-run attribution.

``--smoke`` shrinks file sizes, device list, and variant set to keep the
CI job in seconds; the configuration that produced a document is
fingerprinted into it, so ``repro bench --compare`` can refuse to read
apples against oranges.

``workers`` shards the per-device synthetic grids and the fileserver
figure across spawned processes (:mod:`repro.par`).  Each figure runs
under its own fresh :class:`Instrumentation` in **both** paths — the
serial loop calls the exact shard function inline — so the sharded
document is byte-identical to the serial one by construction (the
determinism tests assert it), and no figure's histograms or float
accumulation leak into the next.  The ``obs_trace`` figure stays in the
parent either way (the CLI exports its Chrome trace from the live
result).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..constants import MIB
from ..obs import harvest
from ..obs import hooks as obs_hooks
from ..obs.analysis import histogram_summary
from ..obs.hooks import Instrumentation
from . import regression


def suite_config(smoke: bool = False) -> Dict[str, object]:
    """The full parameterisation of one suite run (fingerprinted)."""
    if smoke:
        return {
            "smoke": True,
            "synthetic": {
                "fs_type": "ext4",
                "devices": ["optane", "hdd"],
                "file_size_mib": 6,
                "variants": ["original", "fragpicker_b"],
                "patterns": ["seq_read", "stride_read"],
            },
            "fileserver": {
                "device": "flash", "file_count": 12, "mean_size_mib": 1, "seed": 5,
            },
            "obs_trace": {"smoke": True, "seed": 42},
        }
    return {
        "smoke": False,
        "synthetic": {
            "fs_type": "ext4",
            "devices": ["optane", "flash", "hdd", "microsd"],
            "file_size_mib": 33,
            "variants": ["original", "conv", "fragpicker", "fragpicker_b"],
            "patterns": ["seq_read", "stride_read", "seq_update", "stride_update"],
        },
        "fileserver": {
            "device": "flash", "file_count": 60, "mean_size_mib": 2, "seed": 5,
        },
        "obs_trace": {"smoke": False, "seed": 42},
    }


# ----------------------------------------------------------------------
# figure builders (shard units)
# ----------------------------------------------------------------------


def _synthetic_figure(syn: Dict[str, object], device: str) -> Dict[str, object]:
    """One device's Figure 8/9 grid, condensed to the flat summary."""
    from .experiments import synthetic_defrag

    result = synthetic_defrag.run(
        syn["fs_type"], device,
        file_size=syn["file_size_mib"] * MIB,
        variants=tuple(syn["variants"]),
        patterns=tuple(syn["patterns"]),
    )
    figure: Dict[str, Dict[str, object]] = {}
    for variant, per_pattern in result.cells.items():
        for pattern, cell in per_pattern.items():
            summary: Dict[str, object] = {
                "throughput_mbps": cell.throughput_mbps,
                "defrag_write_mb": cell.defrag_write_mb,
            }
            if cell.obs is not None:
                summary["split_fanout"] = cell.obs.fanout_summary()
                summary["attribution"] = cell.obs.attribution
            figure[f"{variant}:{pattern}"] = summary
    return figure


def _fileserver_figure(fsrv: Dict[str, object]) -> Dict[str, object]:
    """Figure 11's grep cost, condensed to the flat summary."""
    from .experiments import fig11_fileserver

    result = fig11_fileserver.run(
        fsrv["device"], file_count=fsrv["file_count"],
        mean_size=fsrv["mean_size_mib"] * MIB, seed=fsrv["seed"],
    )
    figure: Dict[str, Dict[str, object]] = {}
    for variant, cell in result.cells.items():
        summary = {
            "grep_gb_per_s": 1.0 / cell.grep_cost if cell.grep_cost else 0.0,
            "defrag_write_mb": cell.defrag_write_mb,
        }
        if cell.obs is not None:
            summary["split_fanout"] = cell.obs.fanout_summary()
            summary["attribution"] = cell.obs.attribution
        figure[variant] = summary
    return figure


def _bench_shard(payload: Tuple[str, Dict[str, object]]):
    """Worker entry: one figure under a fresh instrumentation.

    Every figure's numbers are per-variant windowed deltas, so a fresh
    registry per shard reproduces the serial figures exactly.  The
    registry snapshot rides back so the parent can merge worker-side
    counters into the ambient obs plane.
    """
    kind, config = payload
    obs = Instrumentation()
    with obs_hooks.use(obs):
        if kind == "fileserver":
            figure = _fileserver_figure(config["fileserver"])
        else:
            figure = _synthetic_figure(config["synthetic"], kind)
    return figure, harvest.capture(obs)


def _merge_worker_snapshots(obs, snapshots) -> None:
    """Fold per-figure telemetry snapshots into the parent's obs plane.

    Full harvest merge in shard order: counters add, gauges keep the
    last shard's reading (with the cross-shard peak), histograms add
    bucket-wise, and worker spans/events land on per-shard tracks — so
    an armed ``--workers N`` bench exports the same plane as serial.
    """
    if not obs.enabled:
        return
    for index, snapshot in enumerate(snapshots):
        snapshot.merge_into(
            obs, track_prefix=harvest.shard_track_prefix(index)
        )


def run_suite(
    smoke: bool = False,
    label: str = "local",
    obs: Optional[Instrumentation] = None,
    workers: Optional[int] = None,
) -> Tuple[Dict[str, object], object]:
    """Run the suite; returns ``(bench_document, obs_trace_result)``.

    The trace result is returned separately so the CLI can also export
    the Chrome trace (spans + fragmentation timeline) from the same run.
    """
    from ..par import run_sharded
    from .experiments import fig11_fileserver, obs_trace, synthetic_defrag

    config = suite_config(smoke)
    figures: Dict[str, Dict[str, Dict[str, object]]] = {}
    if obs is None:
        obs = Instrumentation()

    syn = config["synthetic"]
    payloads = [(device, config) for device in syn["devices"]]
    payloads.append(("fileserver", config))
    # serial and parallel run the same shard function — per-figure
    # isolation either way, so the documents match by construction.
    # harvest=False: the shard fn manages its own instrumentation and
    # returns its own snapshots, merged below.
    sharded = run_sharded(
        _bench_shard, payloads, workers=workers, label="bench figure",
        harvest=False,
    )
    for (kind, _), (figure, _snapshot) in zip(payloads, sharded):
        key = (
            f"fileserver_{config['fileserver']['device']}"
            if kind == "fileserver" else f"synthetic_{syn['fs_type']}_{kind}"
        )
        figures[key] = figure
    _merge_worker_snapshots(obs, [snap for _, snap in sharded])

    # obs_trace manages its own instrumentation context (fresh registry),
    # which keeps its whole-run attribution self-contained
    trace_result = obs_trace.run(
        smoke=config["obs_trace"]["smoke"], seed=config["obs_trace"]["seed"]
    )
    figure = {}
    for phase in ("before", "after"):
        fanout = getattr(trace_result, f"fanout_{phase}")
        figure[phase] = {
            "ops_per_sec": trace_result.phase_ops[phase],
            "split_fanout": {
                "count": fanout.count,
                "mean": fanout.mean,
                "p95": fanout.quantile(0.95),
                "max": fanout.max_value,
            },
        }
    figure["overall"] = {
        "attribution": trace_result.attribution().to_dict(),
        "split_fanout": histogram_summary(
            trace_result.obs.registry, "block.split_fanout"
        ),
    }
    figures["obs_trace"] = figure

    document = regression.build_document(label, config, figures)
    return document, trace_result


def evaluate_slos(trace_result, specs=None, window: float = 0.02):
    """Post-hoc SLO evaluation over the traced run's fragmentation
    timeline.

    Replays the sampler's recorded ``(time, value)`` curves into an
    :class:`~repro.obs.slo.SloPlane` and evaluates every window — the
    same engine the fleet controller drives live, applied after the
    fact to a bench run.  Input is virtual time, so the resulting plane
    (and any document built from it) is deterministic per seed.
    """
    from ..obs.slo import SloPlane, SloSpec

    if trace_result.sampler is None:
        raise ValueError("trace result has no fragmentation sampler")
    if specs is None:
        specs = [
            SloSpec(
                name="frag_level", metric="frag.extents_per_file",
                threshold=40.0, objective="le", target=0.50,
                fast_windows=2, slow_windows=6,
                fast_burn=1.5, slow_burn=1.2,
            ),
            SloSpec(
                name="contiguity", metric="frag.contiguity",
                threshold=0.03, objective="ge", target=0.50,
                fast_windows=2, slow_windows=6,
                fast_burn=1.5, slow_burn=1.2,
            ),
        ]
    plane = SloPlane(specs, window=window)
    for name, series in trace_result.sampler.series.items():
        for time, value in series.samples():
            plane.observe(name, time, value)
    plane.evaluate_all()
    return plane
