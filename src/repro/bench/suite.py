"""The ``repro bench`` suite: a scaled, instrumented sweep for regression
tracking.

Runs a deterministic subset of the paper's figures with the observability
plane enabled, and condenses each variant into the flat summary shape
:mod:`repro.bench.regression` compares:

- ``synthetic_<fs>_<device>`` — the Figure 8/9 grid, one cell per
  (variant, pattern), with per-window latency attribution and split
  fan-out;
- ``fileserver_<device>`` — Figure 11's grep cost (stored as GB/s so
  "higher is better" holds);
- ``obs_trace`` — the instrumented Fig. 10 protocol: phase throughputs,
  the before/after fan-out shift, and the whole-run attribution.

``--smoke`` shrinks file sizes, device list, and variant set to keep the
CI job in seconds; the configuration that produced a document is
fingerprinted into it, so ``repro bench --compare`` can refuse to read
apples against oranges.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..constants import MIB
from ..obs import hooks as obs_hooks
from ..obs.analysis import histogram_summary
from ..obs.hooks import Instrumentation
from . import regression


def suite_config(smoke: bool = False) -> Dict[str, object]:
    """The full parameterisation of one suite run (fingerprinted)."""
    if smoke:
        return {
            "smoke": True,
            "synthetic": {
                "fs_type": "ext4",
                "devices": ["optane", "hdd"],
                "file_size_mib": 6,
                "variants": ["original", "fragpicker_b"],
                "patterns": ["seq_read", "stride_read"],
            },
            "fileserver": {
                "device": "flash", "file_count": 12, "mean_size_mib": 1, "seed": 5,
            },
            "obs_trace": {"smoke": True, "seed": 42},
        }
    return {
        "smoke": False,
        "synthetic": {
            "fs_type": "ext4",
            "devices": ["optane", "flash", "hdd", "microsd"],
            "file_size_mib": 33,
            "variants": ["original", "conv", "fragpicker", "fragpicker_b"],
            "patterns": ["seq_read", "stride_read", "seq_update", "stride_update"],
        },
        "fileserver": {
            "device": "flash", "file_count": 60, "mean_size_mib": 2, "seed": 5,
        },
        "obs_trace": {"smoke": False, "seed": 42},
    }


def run_suite(
    smoke: bool = False,
    label: str = "local",
    obs: Optional[Instrumentation] = None,
) -> Tuple[Dict[str, object], object]:
    """Run the suite; returns ``(bench_document, obs_trace_result)``.

    The trace result is returned separately so the CLI can also export
    the Chrome trace (spans + fragmentation timeline) from the same run.
    """
    from .experiments import fig11_fileserver, obs_trace, synthetic_defrag

    config = suite_config(smoke)
    figures: Dict[str, Dict[str, Dict[str, object]]] = {}
    if obs is None:
        obs = Instrumentation()

    with obs_hooks.use(obs):
        syn = config["synthetic"]
        for device in syn["devices"]:
            result = synthetic_defrag.run(
                syn["fs_type"], device,
                file_size=syn["file_size_mib"] * MIB,
                variants=tuple(syn["variants"]),
                patterns=tuple(syn["patterns"]),
            )
            figure: Dict[str, Dict[str, object]] = {}
            for variant, per_pattern in result.cells.items():
                for pattern, cell in per_pattern.items():
                    summary: Dict[str, object] = {
                        "throughput_mbps": cell.throughput_mbps,
                        "defrag_write_mb": cell.defrag_write_mb,
                    }
                    if cell.obs is not None:
                        summary["split_fanout"] = cell.obs.fanout_summary()
                        summary["attribution"] = cell.obs.attribution
                    figure[f"{variant}:{pattern}"] = summary
            figures[f"synthetic_{syn['fs_type']}_{device}"] = figure

        fsrv = config["fileserver"]
        result = fig11_fileserver.run(
            fsrv["device"], file_count=fsrv["file_count"],
            mean_size=fsrv["mean_size_mib"] * MIB, seed=fsrv["seed"],
        )
        figure = {}
        for variant, cell in result.cells.items():
            summary = {
                "grep_gb_per_s": 1.0 / cell.grep_cost if cell.grep_cost else 0.0,
                "defrag_write_mb": cell.defrag_write_mb,
            }
            if cell.obs is not None:
                summary["split_fanout"] = cell.obs.fanout_summary()
                summary["attribution"] = cell.obs.attribution
            figure[variant] = summary
        figures[f"fileserver_{fsrv['device']}"] = figure

    # obs_trace manages its own instrumentation context (fresh registry),
    # which keeps its whole-run attribution self-contained
    trace_result = obs_trace.run(
        smoke=config["obs_trace"]["smoke"], seed=config["obs_trace"]["seed"]
    )
    figure = {}
    for phase in ("before", "after"):
        fanout = getattr(trace_result, f"fanout_{phase}")
        figure[phase] = {
            "ops_per_sec": trace_result.phase_ops[phase],
            "split_fanout": {
                "count": fanout.count,
                "mean": fanout.mean,
                "p95": fanout.quantile(0.95),
                "max": fanout.max_value,
            },
        }
    figure["overall"] = {
        "attribution": trace_result.attribution().to_dict(),
        "split_fanout": histogram_summary(
            trace_result.obs.registry, "block.split_fanout"
        ),
    }
    figures["obs_trace"] = figure

    document = regression.build_document(label, config, figures)
    return document, trace_result


def evaluate_slos(trace_result, specs=None, window: float = 0.02):
    """Post-hoc SLO evaluation over the traced run's fragmentation
    timeline.

    Replays the sampler's recorded ``(time, value)`` curves into an
    :class:`~repro.obs.slo.SloPlane` and evaluates every window — the
    same engine the fleet controller drives live, applied after the
    fact to a bench run.  Input is virtual time, so the resulting plane
    (and any document built from it) is deterministic per seed.
    """
    from ..obs.slo import SloPlane, SloSpec

    if trace_result.sampler is None:
        raise ValueError("trace result has no fragmentation sampler")
    if specs is None:
        specs = [
            SloSpec(
                name="frag_level", metric="frag.extents_per_file",
                threshold=40.0, objective="le", target=0.50,
                fast_windows=2, slow_windows=6,
                fast_burn=1.5, slow_burn=1.2,
            ),
            SloSpec(
                name="contiguity", metric="frag.contiguity",
                threshold=0.03, objective="ge", target=0.50,
                fast_windows=2, slow_windows=6,
                fast_burn=1.5, slow_burn=1.2,
            ),
        ]
    plane = SloPlane(specs, window=window)
    for name, series in trace_result.sampler.series.items():
        for time, value in series.samples():
            plane.observe(name, time, value)
    plane.evaluate_all()
    return plane
