"""Persistent benchmark documents and component-level regression checks.

``repro bench`` serialises one suite run into a schema-versioned
``BENCH_<label>.json``: per-figure throughput numbers, split-fanout
histogram summaries, and the latency-attribution breakdown per variant,
fingerprinted with the exact suite configuration so two documents are
only ever compared like-for-like.

``compare(baseline, candidate)`` then walks both documents and flags
regressions *per component*, direction-aware:

- throughput / ops-per-second going **down** is a regression,
- attribution component seconds going **up** is a regression,
- split-fanout mean going **up** is a regression.

A tiny absolute floor keeps noise in near-zero components (e.g. a device
penalty of 1e-9 s doubling) from tripping the threshold.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: document schema tag; bump on incompatible layout changes
SCHEMA = "repro.bench/v1"

#: metrics where a *decrease* is the regression direction
HIGHER_IS_BETTER = ("throughput_mbps", "ops_per_sec", "grep_gb_per_s")

#: seconds below which an attribution component is treated as noise
COMPONENT_FLOOR_S = 1e-6

#: relative change below which a fanout/throughput value is ignored
VALUE_FLOOR = 1e-9


def config_fingerprint(config: Dict[str, object]) -> str:
    """Short stable hash of the suite configuration (seeds, sizes, ...)."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def build_document(
    label: str,
    config: Dict[str, object],
    figures: Dict[str, Dict[str, Dict[str, object]]],
) -> Dict[str, object]:
    """Assemble a BENCH document: ``figures[figure][variant] -> summary``.

    Each variant summary is a flat dict that may carry ``throughput_mbps``
    (or other headline numbers), a ``split_fanout`` summary, and an
    ``attribution`` sub-document (``Attribution.to_dict()``).
    """
    return {
        "schema": SCHEMA,
        "label": label,
        "config": dict(config),
        "fingerprint": config_fingerprint(config),
        "figures": figures,
    }


def save(path: str, document: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load(path: str) -> Dict[str, object]:
    with open(path) as fh:
        document = json.load(fh)
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} (want {SCHEMA!r})"
        )
    return document


@dataclass
class Finding:
    """One compared value: where it lives, both readings, the verdict."""

    figure: str
    variant: str
    metric: str
    baseline: float
    candidate: float
    change: float            # signed relative change, candidate vs baseline
    regression: bool

    def describe(self) -> str:
        arrow = "REGRESSION" if self.regression else "ok"
        return (
            f"[{arrow}] {self.figure}/{self.variant} {self.metric}: "
            f"{self.baseline:.6g} -> {self.candidate:.6g} "
            f"({self.change:+.1%})"
        )


@dataclass
class Comparison:
    baseline_label: str
    candidate_label: str
    threshold: float
    findings: List[Finding] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    #: which document family the comparison covers (report header)
    kind: str = "bench"

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def report(self) -> str:
        lines = [
            f"{self.kind} compare: {self.baseline_label} (baseline) vs "
            f"{self.candidate_label} (candidate), threshold {self.threshold:.0%}"
        ]
        lines += [f"  note: {w}" for w in self.warnings]
        for finding in self.regressions:
            lines.append("  " + finding.describe())
        moved = [
            f for f in self.findings
            if not f.regression and abs(f.change) >= self.threshold
        ]
        for finding in moved:
            lines.append("  " + finding.describe())
        lines.append(
            f"  {len(self.findings)} values compared, "
            f"{len(self.regressions)} regression(s)"
        )
        return "\n".join(lines)


def _relative_change(baseline: float, candidate: float) -> Optional[float]:
    if abs(baseline) < VALUE_FLOOR:
        return None if abs(candidate) < VALUE_FLOOR else float("inf")
    return (candidate - baseline) / abs(baseline)


def _compare_value(
    comparison: Comparison,
    figure: str,
    variant: str,
    metric: str,
    baseline: float,
    candidate: float,
    higher_is_better: bool,
    floor: float = VALUE_FLOOR,
) -> None:
    if max(abs(baseline), abs(candidate)) < floor:
        return  # both effectively zero: nothing to compare
    change = _relative_change(baseline, candidate)
    if change is None:
        return
    if higher_is_better:
        regression = change <= -comparison.threshold
    else:
        regression = change >= comparison.threshold
    comparison.findings.append(Finding(
        figure=figure, variant=variant, metric=metric,
        baseline=baseline, candidate=candidate,
        change=change if change != float("inf") else 1.0,
        regression=regression,
    ))


def compare(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    threshold: float = 0.10,
) -> Comparison:
    """Direction-aware comparison of two BENCH documents."""
    comparison = Comparison(
        baseline_label=str(baseline.get("label", "?")),
        candidate_label=str(candidate.get("label", "?")),
        threshold=threshold,
    )
    if baseline.get("fingerprint") != candidate.get("fingerprint"):
        comparison.warnings.append(
            "config fingerprints differ "
            f"({baseline.get('fingerprint')} vs {candidate.get('fingerprint')}): "
            "the documents were produced by different suite configurations"
        )
    base_figures = baseline.get("figures", {})
    cand_figures = candidate.get("figures", {})
    for figure in sorted(base_figures):
        if figure not in cand_figures:
            comparison.warnings.append(f"figure {figure!r} missing from candidate")
            continue
        for variant in sorted(base_figures[figure]):
            if variant not in cand_figures[figure]:
                comparison.warnings.append(
                    f"variant {figure}/{variant} missing from candidate"
                )
                continue
            _compare_variant(
                comparison, figure, variant,
                base_figures[figure][variant], cand_figures[figure][variant],
            )
    return comparison


def _compare_variant(
    comparison: Comparison,
    figure: str,
    variant: str,
    base: Dict[str, object],
    cand: Dict[str, object],
) -> None:
    for metric in HIGHER_IS_BETTER:
        if metric in base and metric in cand:
            _compare_value(
                comparison, figure, variant, metric,
                float(base[metric]), float(cand[metric]),
                higher_is_better=True,
            )
    base_attr = (base.get("attribution") or {}).get("components_s", {})
    cand_attr = (cand.get("attribution") or {}).get("components_s", {})
    for component in sorted(base_attr):
        if component not in cand_attr:
            continue
        _compare_value(
            comparison, figure, variant, f"attribution.{component}",
            float(base_attr[component]), float(cand_attr[component]),
            higher_is_better=False, floor=COMPONENT_FLOOR_S,
        )
    base_fanout = base.get("split_fanout") or {}
    cand_fanout = cand.get("split_fanout") or {}
    if base_fanout.get("mean") is not None and cand_fanout.get("mean") is not None:
        _compare_value(
            comparison, figure, variant, "split_fanout.mean",
            float(base_fanout["mean"]), float(cand_fanout["mean"]),
            higher_is_better=False,
        )
