"""SATA flash SSD model (Samsung 850 PRO flavoured).

- The controller handles command processing serially (in-storage CPU cost,
  which request splitting multiplies).
- Flash work proceeds in parallel across channels, each with its own busy
  timeline: a command batch that concentrates on few channels (channel
  conflict) loses parallelism, and co-running submitters overlap through
  NCQ.
- The SATA link caps transfer throughput (a serial per-byte resource).

Reads hit the channel the FTL wrote each page to; writes stripe round-robin
(out-of-place), which is why fragmented *updates* hurt less than fragmented
reads on flash (Section 3.3).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..block.request import IoCommand, IoOp
from ..constants import BLOCK_SIZE, GIB
from .base import CommandPlan, StorageDevice, extend_sums as _extend_sums
from .ftl import PageMappingFtl

#: bound on the read-plan memo (cleared wholesale on FTL mutation)
READ_PLAN_CACHE_ENTRIES = 4096


@dataclass(frozen=True)
class FlashParams:
    channels: int = 8
    page_read: float = 0.000060      #: per 4 KiB page
    page_program: float = 0.000120   #: per 4 KiB page
    command_overhead: float = 0.000006  #: in-storage CPU, serial per command
    interface_rate: float = 520e6    #: SATA 6 Gb/s effective bytes/sec
    discard_per_command: float = 0.00003
    pages_per_block: int = 256
    overprovision: float = 0.07
    #: Cost of one GC page relocation (read + program, partially pipelined).
    gc_page_cost: float = 0.000150


class FlashSsd(StorageDevice):
    """Channel-parallel flash SSD with a page-mapping FTL."""

    supports_queuing = True

    #: injected latency spike: a foreground GC stall on the write path
    fault_latency_spike = 0.010

    #: provenance records label parallel units as flash channels
    provenance_unit = "channel"

    def __init__(self, capacity: int = 32 * GIB, params: Optional[FlashParams] = None, name: str = "flash") -> None:
        super().__init__(name, capacity)
        self.params = params = params if params is not None else FlashParams()
        self.link_rate = params.interface_rate
        self.ftl = PageMappingFtl(
            logical_pages=capacity // BLOCK_SIZE,
            channels=params.channels,
            pages_per_block=params.pages_per_block,
            overprovision=params.overprovision,
        )
        # Read plans are pure *given the current mapping*: cache them
        # keyed by (offset, length) and drop everything when the FTL
        # generation moves (any write/discard can re-home pages).
        self._read_plan_cache: "OrderedDict[Tuple[int, int], CommandPlan]" = OrderedDict()
        self._read_plan_gen = self.ftl.generation
        # repeated-addition prefix table (see base.extend_sums): keeps
        # batch-counted channel totals bit-identical to the old
        # accumulation loop
        self._read_sums = [0.0]
        self._discard_overhead_plan = CommandPlan(
            controller_time=params.command_overhead + params.discard_per_command
        )

    def _pages_of(self, command: IoCommand) -> range:
        first = command.offset // BLOCK_SIZE
        last = (command.end - 1) // BLOCK_SIZE
        return range(first, last + 1)

    def _plan_command(self, command: IoCommand) -> CommandPlan:
        if command.op is IoOp.DISCARD:
            self.ftl.invalidate(list(self._pages_of(command)))
            return self._discard_overhead_plan
        per_channel: Dict[int, float] = {}
        if command.op is IoOp.READ:
            cache = self._read_plan_cache
            if self._read_plan_gen != self.ftl.generation:
                cache.clear()
                self._read_plan_gen = self.ftl.generation
            key = (command.offset, command.length)
            plan = cache.get(key)
            if plan is not None:
                cache.move_to_end(key)
                return plan
            # batch mapping lookup in the FTL, then one table lookup per
            # occupied channel (first-occurrence order, like the old loop)
            first = command.offset // BLOCK_SIZE
            last = (command.end - 1) // BLOCK_SIZE
            counts = self.ftl.channel_counts(first, last)
            sums = self._read_sums
            if counts:
                _extend_sums(sums, max(counts.values()), self.params.page_read)
            plan = CommandPlan(
                controller_time=self.params.command_overhead,
                unit_work=tuple(
                    (channel, sums[n]) for channel, n in counts.items()
                ),
                link_bytes=command.length,
            )
            if len(cache) >= READ_PLAN_CACHE_ENTRIES:
                cache.popitem(last=False)
            cache[key] = plan
            return plan
        else:
            result = self.ftl.write(list(self._pages_of(command)))
            for channel, pages in result.pages_per_channel.items():
                per_channel[channel] = per_channel.get(channel, 0.0) + pages * self.params.page_program
            if result.relocated_pages:
                # GC copyback work, spread over the channels it runs on
                share = result.relocated_pages * self.params.gc_page_cost / self.params.channels
                for channel in range(self.params.channels):
                    per_channel[channel] = per_channel.get(channel, 0.0) + share
        return CommandPlan(
            controller_time=self.params.command_overhead,
            unit_work=tuple(per_channel.items()),
            link_bytes=command.length,
        )

    def describe(self):
        info = super().describe()
        info.update(
            kind="flash",
            channels=self.params.channels,
            write_amplification=self.ftl.write_amplification,
            total_erases=self.ftl.total_erases,
        )
        return info
