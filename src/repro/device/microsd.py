"""MicroSD card model.

Two properties drive its fragmentation sensitivity in the paper:

1. **No command queuing** — the card accepts one command at a time, so the
   per-command interface overhead is paid serially.  Request splitting
   multiplies commands, which is why the MicroSD NLRS below 128 KiB is the
   largest of the modern devices (Table 1).
2. **Demand-based mapping cache** — the controller has too little RAM for
   the full logical-to-physical map and caches mapping regions on demand.
   Larger fragments touch fewer mapping regions per byte, which is why the
   card keeps gaining *slightly* even after fragments exceed the request
   size (Section 3.2).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..block.request import IoCommand, IoOp
from ..constants import GIB, MIB
from .base import CommandPlan, StorageDevice


@dataclass(frozen=True)
class MicroSdParams:
    read_rate: float = 90e6          #: bytes/sec media read
    write_rate: float = 30e6         #: bytes/sec media write
    command_overhead: float = 0.00025  #: serialized per-command interface cost
    mapping_region: int = 1 * MIB    #: bytes covered by one mapping entry
    mapping_cache_entries: int = 64  #: LRU capacity
    mapping_miss_penalty: float = 0.00006  #: flash read of a mapping page
    discard_overhead: float = 0.0002


class MicroSdDevice(StorageDevice):
    """Serialized-command card with an LRU mapping-region cache."""

    supports_queuing = False

    #: injected latency spike: the internal housekeeping pause removable
    #: flash is notorious for (block reclaim behind a tiny mapping cache)
    fault_latency_spike = 0.100

    #: provenance records label work by the mapping segment it touches
    provenance_unit = "segment"

    def __init__(self, capacity: int = 32 * GIB, params: Optional[MicroSdParams] = None, name: str = "microsd") -> None:
        super().__init__(name, capacity)
        self.params = params = params if params is not None else MicroSdParams()
        self._mapping_cache: "OrderedDict[int, None]" = OrderedDict()
        self.mapping_hits = 0
        self.mapping_misses = 0
        # NOT memoizable beyond this: the mapping-cache lookup below is
        # the model's state (LRU recency decides the penalty), so plans
        # must be rebuilt per command; only the constant discard plan and
        # hoisted parameters are precomputed.
        self._discard_plan = CommandPlan(
            controller_time=params.command_overhead + params.discard_overhead
        )

    def _mapping_lookup(self, command: IoCommand) -> float:
        """Charge mapping-cache misses for every region the command spans."""
        penalty = 0.0
        params = self.params
        cache = self._mapping_cache
        first = command.offset // params.mapping_region
        last = (command.end - 1) // params.mapping_region
        for region in range(first, last + 1):
            if region in cache:
                cache.move_to_end(region)
                self.mapping_hits += 1
            else:
                self.mapping_misses += 1
                penalty += params.mapping_miss_penalty
                cache[region] = None
                if len(cache) > params.mapping_cache_entries:
                    cache.popitem(last=False)
        return penalty

    def _plan_command(self, command: IoCommand) -> CommandPlan:
        if command.op is IoOp.DISCARD:
            return self._discard_plan
        penalty = self._mapping_lookup(command)
        rate = self.params.read_rate if command.op is IoOp.READ else self.params.write_rate
        media = penalty + command.length / rate
        return CommandPlan(
            controller_time=self.params.command_overhead,
            unit_work=((0, media),),
            penalty_time=penalty,
        )

    def describe(self):
        info = super().describe()
        info.update(
            kind="microsd",
            mapping_hits=self.mapping_hits,
            mapping_misses=self.mapping_misses,
        )
        return info
