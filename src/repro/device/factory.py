"""Paper-calibrated device presets (Table 2 of the paper).

``make_device("flash")`` etc. return fresh instances with capacities scaled
down from the paper's hardware so simulations stay fast; the relative cost
structure (latency ratios, parallelism, queuing behaviour) is what matters
for reproducing the result shapes.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..constants import GIB
from ..errors import InvalidArgument
from .base import StorageDevice
from .flash import FlashSsd
from .hdd import HddDevice
from .microsd import MicroSdDevice
from .optane import OptaneSsd

DEVICE_PRESETS: Dict[str, Callable[..., StorageDevice]] = {
    "hdd": HddDevice,        # Samsung 7200RPM 1TB
    "microsd": MicroSdDevice,  # Samsung EVO A1 128GB
    "flash": FlashSsd,       # Samsung 850 PRO 256GB (SATA)
    "optane": OptaneSsd,     # Intel Optane 905P 960GB (NVMe)
}

_DEFAULT_CAPACITY = {
    "hdd": 64 * GIB,
    "microsd": 32 * GIB,
    "flash": 32 * GIB,
    "optane": 64 * GIB,
}


def make_device(kind: str, capacity: int = None, **kwargs) -> StorageDevice:
    """Create one of the paper's four devices by name."""
    try:
        cls = DEVICE_PRESETS[kind]
    except KeyError:
        raise InvalidArgument(
            f"unknown device {kind!r}; choose from {sorted(DEVICE_PRESETS)}"
        ) from None
    if capacity is None:
        capacity = _DEFAULT_CAPACITY[kind]
    return cls(capacity=capacity, **kwargs)
