"""Analytic models of the four storage devices from the paper's Table 2.

Each model exposes the internal mechanism the paper's Section 3 identifies
as the device's fragmentation sensitivity:

- :class:`~repro.device.hdd.HddDevice` — seek time (distance-sensitive).
- :class:`~repro.device.microsd.MicroSdDevice` — no command queuing +
  demand-based mapping cache.
- :class:`~repro.device.flash.FlashSsd` — channel parallelism with an
  out-of-place page-mapping FTL (updates stripe over channels, reads go to
  wherever the FTL put the page).
- :class:`~repro.device.optane.OptaneSsd` — in-place updates over
  address-interleaved banks, latency low enough that host per-request
  overheads dominate.
"""

from .base import BatchResult, DeviceStats, StorageDevice
from .hdd import HddDevice
from .microsd import MicroSdDevice
from .flash import FlashSsd
from .ftl import PageMappingFtl
from .optane import OptaneSsd
from .factory import make_device, DEVICE_PRESETS

__all__ = [
    "BatchResult",
    "DeviceStats",
    "StorageDevice",
    "HddDevice",
    "MicroSdDevice",
    "FlashSsd",
    "PageMappingFtl",
    "OptaneSsd",
    "make_device",
    "DEVICE_PRESETS",
]
