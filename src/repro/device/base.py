"""Storage device base class.

A device receives a *batch* of commands — all the commands one system call
was split into, submitted together — and returns when the batch completes.
Synchronous syscall semantics (the caller resumes only when every split
request finishes, Section 2.2 of the paper) fall out of batch completion.

Timing model (three resource classes):

- **controller** — command processing is serial (the in-storage CPU the
  paper says request splitting overloads).  Every command pays a dispatch
  cost on a single controller timeline.
- **internal units** — banks/channels execute media work in parallel; each
  unit has its own busy timeline.  Queuing devices (NCQ/NVMe) therefore
  overlap commands from *different* submitters too — a co-running
  defragmenter and a foreground workload share the device realistically.
  Non-queuing devices (MicroSD, HDD) expose a single unit, so everything
  serializes, which is exactly their fragmentation pathology.
- **link** — host interface transfer is serial per byte (SATA/PCIe cap).

Subclasses describe each command via :meth:`_plan_command`; the base class
does the timeline bookkeeping.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..block.request import IoCommand, IoOp
from ..errors import DeviceError, DeviceIOError, InjectedCrash, TornWriteError
from ..faults import hooks as fault_hooks
from ..obs import hooks as obs_hooks


@dataclass
class DeviceStats:
    """Cumulative device-side counters (the blktrace/iotop view)."""

    read_bytes: int = 0
    write_bytes: int = 0
    discard_bytes: int = 0
    read_commands: int = 0
    write_commands: int = 0
    discard_commands: int = 0
    busy_time: float = 0.0   # summed media work (can exceed wall time)

    def account(self, command: IoCommand) -> None:
        if command.op is IoOp.READ:
            self.read_bytes += command.length
            self.read_commands += 1
        elif command.op is IoOp.WRITE:
            self.write_bytes += command.length
            self.write_commands += 1
        else:
            self.discard_bytes += command.length
            self.discard_commands += 1

    @property
    def total_commands(self) -> int:
        return self.read_commands + self.write_commands + self.discard_commands

    def snapshot(self) -> "DeviceStats":
        return DeviceStats(
            self.read_bytes,
            self.write_bytes,
            self.discard_bytes,
            self.read_commands,
            self.write_commands,
            self.discard_commands,
            self.busy_time,
        )

    def delta(self, earlier: "DeviceStats") -> "DeviceStats":
        return DeviceStats(
            self.read_bytes - earlier.read_bytes,
            self.write_bytes - earlier.write_bytes,
            self.discard_bytes - earlier.discard_bytes,
            self.read_commands - earlier.read_commands,
            self.write_commands - earlier.write_commands,
            self.discard_commands - earlier.discard_commands,
            self.busy_time - earlier.busy_time,
        )


@dataclass(frozen=True)
class CommandPlan:
    """How one command uses the device's resources.

    Attributes:
        controller_time: serial dispatch cost.
        unit_work: (unit id, media time) pairs; units run in parallel
            with each other, serially within themselves.
        link_bytes: bytes crossing the host interface.
        penalty_time: the slice of the media work charged purely for
            discontiguity (HDD seek + rotation, MicroSD mapping-cache
            misses) — reported separately for latency attribution.
    """

    controller_time: float
    unit_work: Tuple[Tuple[int, float], ...] = ()
    link_bytes: int = 0
    penalty_time: float = 0.0


def extend_sums(sums: list, n: int, step: float) -> None:
    """Grow a repeated-addition prefix table so ``sums[n]`` is valid.

    ``sums[k]`` is the float produced by ``k`` successive ``+= step``
    additions starting from 0.0 — bit-identical to the accumulation
    loops the batch planners replaced (``k * step`` rounds differently),
    which the pinned virtual-time baselines require.
    """
    while len(sums) <= n:
        sums.append(sums[-1] + step)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of submitting one command batch."""

    start_time: float
    finish_time: float
    service_time: float   # summed media work of the batch
    commands: int

    @property
    def latency(self) -> float:
        return self.finish_time - self.start_time


class StorageDevice(abc.ABC):
    """Abstract analytic storage device."""

    #: Whether the device accepts multiple outstanding commands (NCQ/NVMe
    #: queues).  MicroSD/eMMC-class devices do not (Section 2.2).
    supports_queuing: bool = True

    #: Host interface rate, bytes/sec (None = never the bottleneck).
    link_rate: float = None

    #: Characteristic duration of an injected latency spike (an internal
    #: retry / housekeeping pause), used when a fault rule names none.
    #: Models override this with their own pathology.
    fault_latency_spike: float = 0.010

    #: What this model's parallel internal units are called in provenance
    #: records (flash channels, Optane banks, ...); purely descriptive.
    provenance_unit: str = "unit"

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise DeviceError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.stats = DeviceStats()
        self.obs = obs_hooks.current()
        #: fault plane (captured at construction; a null object unless a
        #: FaultPlan is installed — see repro.faults)
        self.faults = fault_hooks.current()
        # pre-resolved sentinels: with null planes the hot loop never
        # touches the facades at all
        self._observing = self.obs.enabled
        self._faulting = self.faults.enabled
        # causal tracing armed; only consulted inside observing branches
        self._tracing = self._observing and self.obs.provenance is not None
        self._controller_free = 0.0
        self._link_free = 0.0
        self._unit_free: Dict[int, float] = {}
        self._listeners: List = []

    # -- timeline queries --------------------------------------------------

    @property
    def busy_until(self) -> float:
        """Latest time any resource is committed (informational)."""
        unit_max = max(self._unit_free.values(), default=0.0)
        return max(self._controller_free, self._link_free, unit_max)

    # -- submission ------------------------------------------------------

    def submit(self, commands: Sequence[IoCommand], start_time: float = 0.0) -> BatchResult:
        """Process a batch of commands issued together at ``start_time``."""
        if not commands:
            return BatchResult(start_time, start_time, 0.0, 0)
        for command in commands:
            if command.end > self.capacity:
                raise DeviceError(
                    f"{self.name}: command [{command.offset}, {command.end}) "
                    f"beyond capacity {self.capacity}"
                )
        if not self.supports_queuing:
            # one command at a time: the whole batch serializes behind
            # whatever the device is already doing
            controller = max(start_time, self.busy_until)
        else:
            controller = max(start_time, self._controller_free)
        pickup = controller
        batch_finish = start_time
        batch_work = 0.0
        batch_penalty = 0.0
        observing = self._observing
        faulting = self._faulting
        tracing = self._tracing
        # hot loop: every split request of every syscall lands here, so
        # resolve attribute lookups once per batch
        plan_command = self._plan_command
        unit_free = self._unit_free
        unit_get = unit_free.get
        account = self.stats.account
        link_rate = self.link_rate
        torn_lost: Optional[int] = None  # bytes a torn write dropped
        done_bytes = 0
        for command in commands:
            stall = 0.0
            if faulting:
                command, stall, torn_lost = self._apply_fault(command, start_time)
                if command is None:  # torn down to nothing
                    break
            plan = plan_command(command)
            command_begin = controller
            dispatched = controller + plan.controller_time + stall
            controller = dispatched
            command_finish = dispatched
            for unit, media_time in plan.unit_work:
                unit_start = unit_get(unit, 0.0)
                if unit_start < dispatched:
                    unit_start = dispatched
                unit_end = unit_start + media_time
                unit_free[unit] = unit_end
                batch_work += media_time
                if unit_end > command_finish:
                    command_finish = unit_end
            if plan.link_bytes and link_rate:
                link_time = plan.link_bytes / link_rate
                link_start = max(dispatched, self._link_free)
                link_end = link_start + link_time
                self._link_free = link_end
                if link_end > command_finish:
                    command_finish = link_end
            if command_finish > batch_finish:
                batch_finish = command_finish
            account(command)
            done_bytes += command.length
            batch_work += plan.controller_time + stall
            batch_penalty += plan.penalty_time
            if observing:
                # service time: controller pickup to media/link completion
                self.obs.device_command(
                    self.name, command.op.value, command_finish - command_begin
                )
                if tracing and command.pid:
                    # causal edge: syscall -> this command's completion,
                    # with the queue-wait/service split and the model's
                    # parallelism + discontiguity penalty
                    self.obs.provenance.command(
                        command.pid, self.name, self.provenance_unit,
                        command.op.value, command.offset, command.length,
                        start_time, command_begin, command_finish,
                        len(plan.unit_work), plan.penalty_time,
                    )
            if torn_lost is not None:
                break  # the batch tears here: later commands never ran
        self._controller_free = controller
        if not self.supports_queuing:
            # hold every resource until the batch drains
            self._controller_free = batch_finish
        self.stats.busy_time += batch_work
        if torn_lost is not None:
            raise TornWriteError(
                f"{self.name}: torn write — only {done_bytes} bytes of the "
                "batch reached the media",
                bytes_written=done_bytes,
            )
        if observing:
            # wall-clock partition of this batch's latency for attribution:
            # wait behind earlier traffic, then service from pickup to drain
            self.obs.device_batch(
                self.name, len(commands), self.busy_until,
                queue_wait=pickup - start_time,
                service_time=batch_finish - pickup,
                penalty_time=batch_penalty,
            )
        if self._listeners:
            for listener in self._listeners:
                listener(commands, start_time, batch_finish)
        return BatchResult(start_time, batch_finish, batch_work, len(commands))

    def _apply_fault(
        self, command: IoCommand, now: float
    ) -> Tuple[Optional[IoCommand], float, Optional[int]]:
        """Consult the fault plane for one command.

        Returns ``(command, stall, torn_lost)``: the (possibly truncated)
        command to execute, extra serial latency, and — for a torn write —
        how many of its bytes will never reach the media (``command`` is
        ``None`` when nothing at all survives).
        """
        fire = self.faults.check(
            "device.submit",
            op=command.op.value,
            offset=command.offset,
            length=command.length,
            now=now,
        )
        if fire is None:
            return command, 0.0, None
        if fire.kind == "io_error":
            raise DeviceIOError(
                f"{self.name}: injected I/O error on {command.op.value} "
                f"at [{command.offset}, {command.end})"
            )
        if fire.kind == "crash":
            raise InjectedCrash(
                f"{self.name}: injected power-off during {command.op.value}"
            )
        if fire.kind == "latency":
            stall = fire.latency if fire.latency is not None else self.fault_latency_spike
            return command, stall, None
        # torn: only a block-aligned prefix of a write completes
        if command.op is not IoOp.WRITE or fire.torn_length >= command.length:
            return command, 0.0, None
        lost = command.length - fire.torn_length
        if fire.torn_length <= 0:
            return None, 0.0, command.length
        return command._replace(length=fire.torn_length), 0.0, lost

    def add_listener(self, listener) -> None:
        """Register ``fn(commands, start, finish)`` (used by tracing)."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Unregister a listener added with :meth:`add_listener`."""
        self._listeners.remove(listener)

    # -- hooks -----------------------------------------------------------

    @abc.abstractmethod
    def _plan_command(self, command: IoCommand) -> CommandPlan:
        """Describe how one command uses controller/units/link."""

    def describe(self) -> Dict[str, object]:
        """Human-readable parameter summary (for reports)."""
        return {"name": self.name, "capacity": self.capacity}
