"""Optane SSD model (Intel 905P flavoured).

3D-XPoint characteristics the paper relies on:

- **In-place updates**: both reads *and* writes go to the bank determined
  by the address, so fragmentation degrades update performance too
  (unlike flash, Section 2.2 / 3.3).
- **Moderate internal parallelism**: fewer independent banks than a flash
  SSD's channel array (each bank has its own busy timeline).
- **Very low media latency**: per-request host/kernel overheads are a large
  relative cost, which is why the paper's NLRS on Optane exceeds the flash
  SSD's despite the faster medium.

Endurance is tracked as total bytes written against a DWPD budget
(the 905P is rated 10 DWPD over 5 years).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..block.request import IoCommand, IoOp
from ..constants import BLOCK_SIZE, GIB
from .base import CommandPlan, StorageDevice, extend_sums as _extend_sums

#: bound on the per-device plan memo (op x bank phase x page count keys)
PLAN_CACHE_ENTRIES = 4096


@dataclass(frozen=True)
class OptaneParams:
    banks: int = 4
    page_read: float = 0.0000100    #: per 4 KiB page
    page_write: float = 0.0000120   #: per 4 KiB page, in place
    command_overhead: float = 0.0000020  #: controller, serial per command
    interface_rate: float = 2600e6  #: PCIe 3.0 x4 effective
    discard_per_command: float = 0.000008
    dwpd: float = 10.0
    warranty_years: float = 5.0


class OptaneSsd(StorageDevice):
    """Address-interleaved in-place storage with few, fast banks."""

    supports_queuing = True

    #: injected latency spike: 3D XPoint has no GC; spikes are short
    #: controller hiccups (thermal throttle, internal ECC retry)
    fault_latency_spike = 0.0005

    #: provenance records label parallel units as XPoint banks
    provenance_unit = "bank"

    def __init__(self, capacity: int = 64 * GIB, params: Optional[OptaneParams] = None, name: str = "optane") -> None:
        super().__init__(name, capacity)
        self.params = params = params if params is not None else OptaneParams()
        self.link_rate = params.interface_rate
        # Plan memo: bank layout depends only on (op, first bank phase,
        # page count, length) and the model is stateless, so plans are
        # pure and cacheable without invalidation.  LRU-bounded.
        self._plan_cache: "OrderedDict[Tuple[IoOp, int, int, int], CommandPlan]" = OrderedDict()
        self._discard_plan = CommandPlan(
            controller_time=params.command_overhead + params.discard_per_command
        )
        # Repeated-addition prefix tables: _sums[step][n] is exactly the
        # float the old per-page loop produced after n additions of
        # `step` — bank totals must stay bit-identical to that loop
        # (bench-guard pins virtual-time figures to the last ulp), so
        # closed-form `n * step` is off the table.
        self._read_sums: List[float] = [0.0]
        self._write_sums: List[float] = [0.0]

    def bank_of(self, lpn: int) -> int:
        """Banks interleave at page granularity by address (in-place)."""
        return lpn % self.params.banks

    def _plan_command(self, command: IoCommand) -> CommandPlan:
        if command.op is IoOp.DISCARD:
            return self._discard_plan
        params = self.params
        first = command.offset // BLOCK_SIZE
        last = (command.end - 1) // BLOCK_SIZE
        cache = self._plan_cache
        key = (command.op, first % params.banks, last - first, command.length)
        plan = cache.get(key)
        if plan is not None:
            cache.move_to_end(key)
            return plan
        # Closed-form bank layout: pages interleave round-robin from the
        # first page's bank, so bank (phase+k)%banks serves base+1 pages
        # for k < rem and base pages otherwise — no per-page loop.  Tuple
        # order matches the old loop's first-occurrence order.
        if command.op is IoOp.READ:
            page_time, sums = params.page_read, self._read_sums
        else:
            page_time, sums = params.page_write, self._write_sums
        banks = params.banks
        pages = last - first + 1
        base, rem = divmod(pages, banks)
        phase = first % banks
        occupied = min(banks, pages)
        _extend_sums(sums, base + 1, page_time)
        high, low = sums[base + 1], sums[base]
        plan = CommandPlan(
            controller_time=params.command_overhead,
            unit_work=tuple(
                ((phase + k) % banks, high if k < rem else low)
                for k in range(occupied)
            ),
            link_bytes=command.length,
        )
        if len(cache) >= PLAN_CACHE_ENTRIES:
            cache.popitem(last=False)
        cache[key] = plan
        return plan

    # -- endurance -------------------------------------------------------

    @property
    def lifetime_write_budget(self) -> float:
        """Total bytes the warranty covers (capacity * DWPD * days)."""
        return self.capacity * self.params.dwpd * self.params.warranty_years * 365.0

    @property
    def endurance_consumed(self) -> float:
        """Fraction of the warranty write budget consumed so far."""
        return self.stats.write_bytes / self.lifetime_write_budget

    def describe(self):
        info = super().describe()
        info.update(kind="optane", banks=self.params.banks,
                    endurance_consumed=self.endurance_consumed)
        return info
