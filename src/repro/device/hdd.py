"""Hard disk drive model.

The only device in the paper whose performance depends on *where* data is:
every discontiguous access pays a seek (distance-dependent head movement)
plus average rotational latency.  Fragment distance therefore hurts, and
fragment size keeps helping even beyond the request size because fewer
fragments mean fewer seeks per byte (Section 3.1).

The disk is a single mechanical unit with no command queuing: all work
serializes on one timeline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional
from ..block.request import IoCommand, IoOp
from ..constants import GIB
from .base import CommandPlan, StorageDevice

#: bound on the seek-curve memo (distance -> seek time is pure)
SEEK_CACHE_ENTRIES = 4096


@dataclass(frozen=True)
class HddParams:
    """7200 RPM SATA-disk flavoured parameters."""

    #: Minimum (track-to-track) seek time.
    seek_min: float = 0.0003
    #: Full-stroke seek time.
    seek_max: float = 0.012
    #: Seek-vs-distance profile exponent.  Short and medium seeks dominate
    #: fragmented access; a quarter-power profile keeps the curve steep in
    #: that regime (classic disk models use sqrt for long seeks only).
    seek_exponent: float = 0.25
    #: Average rotational latency (half a revolution at 7200 RPM).
    rotational_latency: float = 0.00416
    #: Media transfer rate, bytes/sec.
    transfer_rate: float = 180e6
    #: Per-command controller overhead.
    command_overhead: float = 0.00005


class HddDevice(StorageDevice):
    """Serial-command disk with a moving head."""

    supports_queuing = False

    #: injected latency spike: a bad-sector retry — several re-reads plus
    #: a recalibration pass, tens of milliseconds on a 7200 RPM disk
    fault_latency_spike = 0.050

    #: provenance records label the single serial unit as the head
    provenance_unit = "head"

    def __init__(self, capacity: int = 64 * GIB, params: Optional[HddParams] = None, name: str = "hdd") -> None:
        super().__init__(name, capacity)
        self.params = params = params if params is not None else HddParams()
        self.head_position = 0
        # The seek curve is a pure function of distance (the head
        # *position* is live state, but the power-law evaluation is not);
        # memoize it — fragmented workloads revisit the same strides.
        self._seek_cache: "OrderedDict[int, float]" = OrderedDict()
        self._discard_plan = CommandPlan(controller_time=params.command_overhead)

    def seek_time(self, distance: int) -> float:
        """Head movement time for a byte distance (power-law profile)."""
        if distance <= 0:
            return 0.0
        cache = self._seek_cache
        cached = cache.get(distance)
        if cached is not None:
            cache.move_to_end(distance)
            return cached
        frac = min(1.0, distance / self.capacity)
        span = self.params.seek_max - self.params.seek_min
        result = self.params.seek_min + span * frac ** self.params.seek_exponent
        if len(cache) >= SEEK_CACHE_ENTRIES:
            cache.popitem(last=False)
        cache[distance] = result
        return result

    def _plan_command(self, command: IoCommand) -> CommandPlan:
        if command.op is IoOp.DISCARD:
            # TRIM is a metadata operation; negligible mechanical work.
            return self._discard_plan
        penalty = 0.0
        distance = abs(command.offset - self.head_position)
        if distance > 0:
            penalty = self.seek_time(distance) + self.params.rotational_latency
        mechanical = penalty + command.length / self.params.transfer_rate
        self.head_position = command.end
        return CommandPlan(
            controller_time=self.params.command_overhead,
            unit_work=((0, mechanical),),
            penalty_time=penalty,
        )

    def describe(self):
        info = super().describe()
        info.update(kind="hdd", transfer_rate=self.params.transfer_rate)
        return info
