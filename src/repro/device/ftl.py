"""Page-mapping flash translation layer.

Implements the flash behaviour the paper leans on in Sections 2.2/3.3:

- **Out-of-place updates**: every host write allocates fresh flash pages,
  striped round-robin across channels in arrival order, and invalidates the
  old mapping.  This is why *update* workloads on flash are less sensitive
  to fragmentation than reads — new pages spread over channels regardless
  of LBA contiguity.
- **Read channel affinity**: a read goes to whichever channel the page was
  written on, so a file whose pages were written interleaved with other
  traffic can concentrate on few channels (channel conflicts).
- **Garbage collection & wear**: greedy victim selection, valid-page
  relocation, per-block erase counting.  Defragmentation write traffic
  consumes program/erase cycles — the lifetime argument of Section 1 — and
  the wear counters make that measurable (benchmark E14).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import DeviceError


@dataclass
class EraseBlock:
    """One flash erase block: an append-only list of page slots."""

    channel: int
    pages: List[Optional[int]] = field(default_factory=list)
    valid_count: int = 0
    erase_count: int = 0

    def is_full(self, pages_per_block: int) -> bool:
        return len(self.pages) >= pages_per_block


@dataclass
class FtlWriteResult:
    """Channel load and GC work produced by one logical write."""

    pages_per_channel: Dict[int, int]
    relocated_pages: int
    erased_blocks: int


class PageMappingFtl:
    """Page-level logical-to-physical mapping with greedy GC."""

    def __init__(
        self,
        logical_pages: int,
        channels: int = 8,
        pages_per_block: int = 256,
        overprovision: float = 0.07,
        gc_free_block_threshold: int = 2,
    ) -> None:
        if channels <= 0 or pages_per_block <= 0:
            raise DeviceError("channels and pages_per_block must be positive")
        self.logical_pages = logical_pages
        self.channels = channels
        self.pages_per_block = pages_per_block
        physical_pages = int(logical_pages * (1.0 + overprovision))
        per_channel_blocks = max(
            gc_free_block_threshold + 2,
            -(-physical_pages // (pages_per_block * channels)),
        )
        self.blocks_per_channel = per_channel_blocks
        self.gc_free_block_threshold = gc_free_block_threshold
        #: lpn -> (EraseBlock, slot index)
        self.mapping: Dict[int, Tuple[EraseBlock, int]] = {}
        self._active: List[Optional[EraseBlock]] = [None] * channels
        self._sealed: List[List[EraseBlock]] = [[] for _ in range(channels)]
        self._free_pool: List[List[EraseBlock]] = [[] for _ in range(channels)]
        self._created_blocks = [0] * channels
        self._next_channel = 0
        self.total_erases = 0
        self.host_pages_written = 0
        self.relocated_pages_total = 0
        #: bumped on every mapping mutation (write/invalidate, including
        #: GC relocations inside write); read-plan memoization keys on it
        self.generation = 0

    # -- mapping queries -------------------------------------------------

    def channel_of(self, lpn: int) -> int:
        """Channel a read of ``lpn`` lands on.

        Unwritten logical pages behave as if the drive were pre-filled
        sequentially (address-striped).
        """
        entry = self.mapping.get(lpn)
        if entry is None:
            return lpn % self.channels
        return entry[0].channel

    def channel_counts(self, first: int, last: int) -> "Counter":
        """Pages-per-channel for a read of lpns ``first..last`` inclusive.

        Batch form of :meth:`channel_of`: one C-level ``Counter.update``
        over a generator instead of a per-page dict-accumulation loop in
        the device model.  Counter is a dict subclass, so iteration
        order is first-occurrence order — the same order the old loop's
        accumulator dict had, which the plan's ``unit_work`` tuple (and
        every fingerprinted document hashing it) depends on.
        """
        mapping_get = self.mapping.get
        channels = self.channels
        counts: Counter = Counter()
        counts.update(
            entry[0].channel if (entry := mapping_get(lpn)) is not None
            else lpn % channels
            for lpn in range(first, last + 1)
        )
        return counts

    @property
    def write_amplification(self) -> float:
        if self.host_pages_written == 0:
            return 1.0
        return (self.host_pages_written + self.relocated_pages_total) / self.host_pages_written

    # -- block lifecycle -------------------------------------------------

    def _take_free_block(self, channel: int) -> Optional[EraseBlock]:
        if self._free_pool[channel]:
            return self._free_pool[channel].pop()
        if self._created_blocks[channel] < self.blocks_per_channel:
            self._created_blocks[channel] += 1
            return EraseBlock(channel)
        return None

    def _free_blocks_available(self, channel: int) -> int:
        return len(self._free_pool[channel]) + (
            self.blocks_per_channel - self._created_blocks[channel]
        )

    def _activate(self, channel: int) -> EraseBlock:
        block = self._take_free_block(channel)
        if block is None:
            raise DeviceError(f"flash channel {channel} out of space (GC failed)")
        self._active[channel] = block
        return block

    # -- program path ----------------------------------------------------

    def _program(self, channel: int, lpn: int) -> None:
        """Append one page on ``channel`` and update the mapping."""
        old = self.mapping.get(lpn)
        if old is not None:
            old_block, slot = old
            old_block.pages[slot] = None
            old_block.valid_count -= 1
        block = self._active[channel]
        if block is None or block.is_full(self.pages_per_block):
            if block is not None:
                self._sealed[channel].append(block)
            block = self._activate(channel)
        block.pages.append(lpn)
        block.valid_count += 1
        self.mapping[lpn] = (block, len(block.pages) - 1)

    def write(self, lpns: List[int]) -> FtlWriteResult:
        """Host write of the given logical pages (out-of-place, striped)."""
        self.generation += 1
        per_channel: Dict[int, int] = {}
        relocated = 0
        erased = 0
        for lpn in lpns:
            if lpn >= self.logical_pages:
                raise DeviceError(f"lpn {lpn} beyond logical capacity")
            channel = self._next_channel
            self._next_channel = (self._next_channel + 1) % self.channels
            r, e = self._maybe_gc(channel)
            relocated += r
            erased += e
            self._program(channel, lpn)
            per_channel[channel] = per_channel.get(channel, 0) + 1
            self.host_pages_written += 1
        return FtlWriteResult(per_channel, relocated, erased)

    def invalidate(self, lpns: List[int]) -> int:
        """Discard: drop mappings, freeing the pages for GC.  Returns count."""
        self.generation += 1
        dropped = 0
        for lpn in lpns:
            entry = self.mapping.pop(lpn, None)
            if entry is not None:
                block, slot = entry
                block.pages[slot] = None
                block.valid_count -= 1
                dropped += 1
        return dropped

    # -- garbage collection ----------------------------------------------

    def _maybe_gc(self, channel: int) -> Tuple[int, int]:
        relocated = 0
        erased = 0
        while self._free_blocks_available(channel) < self.gc_free_block_threshold:
            victim = self._pick_victim(channel)
            if victim is None:
                break
            relocated += self._collect(victim)
            erased += 1
        return relocated, erased

    def _pick_victim(self, channel: int) -> Optional[EraseBlock]:
        sealed = self._sealed[channel]
        if not sealed:
            return None
        best_idx = min(range(len(sealed)), key=lambda i: sealed[i].valid_count)
        if sealed[best_idx].valid_count >= self.pages_per_block:
            return None  # nothing reclaimable
        return sealed.pop(best_idx)

    def _collect(self, victim: EraseBlock) -> int:
        """Relocate valid pages out of ``victim`` and erase it."""
        moved = 0
        for slot, lpn in enumerate(victim.pages):
            if lpn is None:
                continue
            victim.pages[slot] = None
            victim.valid_count -= 1
            # Relocations stay on the victim's channel (intra-channel copyback).
            self._program_relocation(victim.channel, lpn)
            moved += 1
        victim.pages = []
        victim.erase_count += 1
        self.total_erases += 1
        self.relocated_pages_total += moved
        self._free_pool[victim.channel].append(victim)
        return moved

    def _program_relocation(self, channel: int, lpn: int) -> None:
        block = self._active[channel]
        if block is None or block.is_full(self.pages_per_block):
            if block is not None:
                self._sealed[channel].append(block)
            block = self._take_free_block(channel)
            if block is None:
                raise DeviceError(f"flash channel {channel} wedged during GC")
            self._active[channel] = block
        block.pages.append(lpn)
        block.valid_count += 1
        self.mapping[lpn] = (block, len(block.pages) - 1)
