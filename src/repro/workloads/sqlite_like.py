"""A SQLite-like paged database with a rollback journal.

Synchronous sequential insertion writes, per committed page: the old page
image to the rollback journal (plus journal header traffic), an fsync, the
page itself into the main database file, and another fsync.  On a CoW
filesystem the interleaved journal/database writes shred the database file
into small extents — the paper observes this workload produces "a severe
degree of fragmentation on Btrfs even without aging" (Section 5.3.2).

``select_fraction`` scans the leading fraction of the table with buffered
sequential reads, like the paper's SELECT returning 30% of the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..constants import BLOCK_SIZE, KIB
from ..errors import InvalidArgument
from ..fs.base import Filesystem


@dataclass(frozen=True)
class SqliteConfig:
    db_path: str = "/db.sqlite"
    page_size: int = 4 * KIB
    synchronous: bool = True   # fsync journal + db on every page commit
    app: str = "sqlite"


class SqliteLike:
    """Append-mostly table in a single paged file."""

    def __init__(self, fs: Filesystem, config: Optional[SqliteConfig] = None) -> None:
        config = config if config is not None else SqliteConfig()
        if config.page_size % BLOCK_SIZE:
            raise InvalidArgument("page size must be block aligned")
        self.fs = fs
        self.config = config
        self.db = fs.open(config.db_path, o_direct=False, app=config.app, create=True)
        self.journal = fs.open(config.db_path + "-journal", o_direct=False, app=config.app, create=True)
        self._page_fill: int = 0          # bytes used in the current leaf page
        self._page_count: int = 0
        self._row_pages: Dict[bytes, int] = {}
        self.rows = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def insert(self, key: bytes, value_size: int, now: float = 0.0) -> float:
        """Insert one row; commits a page whenever the leaf fills.

        Rows larger than the space left spill onto fresh pages; rows
        larger than a whole page use overflow pages (SQLite-style), each
        committed through the journal like any other page.
        """
        row_bytes = len(key) + value_size + 8  # header-ish overhead
        if self._page_fill + row_bytes > self.config.page_size:
            now = self._commit_page(now)
        self._row_pages[key] = self._page_count
        remaining = row_bytes
        while remaining > self.config.page_size:
            # overflow page: filled completely by this row
            self._page_fill = self.config.page_size
            now = self._commit_page(now)
            remaining -= self.config.page_size
        self._page_fill += remaining
        self.rows += 1
        return now

    def _commit_page(self, now: float) -> float:
        """Journal the page, then write it to the database file."""
        page_offset = self._page_count * self.config.page_size
        journal_offset = self._page_count * self.config.page_size
        now = self.fs.write(self.journal, journal_offset, self.config.page_size, now=now).finish_time
        if self.config.synchronous:
            now = self.fs.fsync(self.journal, now=now).finish_time
        now = self.fs.write(self.db, page_offset, self.config.page_size, now=now).finish_time
        if self.config.synchronous:
            now = self.fs.fsync(self.db, now=now).finish_time
        self._page_count += 1
        self._page_fill = 0
        return now

    def finish_load(self, now: float = 0.0) -> float:
        """Commit the trailing partial page and reset the journal."""
        if self._page_fill:
            now = self._commit_page(now)
        now = self.fs.truncate(self.journal, 0, now=now).finish_time
        return now

    def load_sequential(self, rows: int, value_size: int, now: float = 0.0) -> float:
        """The paper's setup: synchronous sequential insertion."""
        for i in range(rows):
            now = self.insert(b"row%010d" % i, value_size, now=now)
        return self.finish_load(now)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def select_fraction(self, fraction: float, now: float = 0.0, request_size: int = 32 * KIB) -> Tuple[float, float]:
        """Scan the leading ``fraction`` of pages with buffered sequential
        reads; returns (finish, elapsed)."""
        if not 0.0 < fraction <= 1.0:
            raise InvalidArgument("fraction must be in (0, 1]")
        pages = int(self._page_count * fraction)
        length = pages * self.config.page_size
        handle = self.fs.open(self.config.db_path, o_direct=False, app=self.config.app)
        start = now
        offset = 0
        while offset < length:
            take = min(request_size, length - offset)
            now = self.fs.read(handle, offset, take, now=now).finish_time
            offset += take
        return now, now - start

    @property
    def db_size(self) -> int:
        return self.fs.inode_of(self.config.db_path).size
