"""A RocksDB-like LSM key-value store built on the simulated filesystem.

Real enough to exercise the storage stack the way the paper's RocksDB
setup does: a write-ahead log, an in-memory memtable flushed into
sorted-string-table files with configurable (128 KiB in the paper) data
blocks, L0 -> L1 compaction, and point lookups that read exactly one
aligned data block with O_DIRECT.

Values round-trip for real — ``get`` reads the block through the
filesystem and slices the value out of the returned bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..constants import BLOCK_SIZE, KIB, MIB, block_align_up
from ..errors import InvalidArgument
from ..fs.base import FileHandle, Filesystem

_LEN = struct.Struct("<II")  # key length, value length


def _parse_blocks(data: bytes, block_size: int) -> List[Tuple[bytes, bytes]]:
    """Decode the length-prefixed records out of padded data blocks."""
    items: List[Tuple[bytes, bytes]] = []
    for block_start in range(0, len(data), block_size):
        pos = block_start
        block_end = min(block_start + block_size, len(data))
        while pos + _LEN.size <= block_end:
            klen, vlen = _LEN.unpack_from(data, pos)
            if klen == 0:  # padding: rest of block is empty
                break
            pos += _LEN.size
            key = data[pos : pos + klen]
            value = data[pos + klen : pos + klen + vlen]
            items.append((key, value))
            pos += klen + vlen
    return items


@dataclass(frozen=True)
class LsmConfig:
    directory: str = "/rocksdb"
    block_size: int = 128 * KIB          # the paper configures 128 KiB
    memtable_bytes: int = 4 * MIB
    sst_target_bytes: int = 16 * MIB
    l0_compaction_trigger: int = 4
    wal_sync_every: int = 64
    o_direct: bool = True                # the paper sets O_DIRECT
    app: str = "rocksdb"


@dataclass
class SsTable:
    """One on-disk sorted table plus its in-memory index."""

    path: str
    min_key: bytes
    max_key: bytes
    size: int
    #: key -> (file offset of the record's block, offset in block, value len)
    index: Dict[bytes, Tuple[int, int, int]] = field(default_factory=dict)

    def may_contain(self, key: bytes) -> bool:
        return self.min_key <= key <= self.max_key


@dataclass
class LsmStats:
    puts: int = 0
    gets: int = 0
    hits: int = 0
    flushes: int = 0
    compactions: int = 0


class LsmStore:
    """Two-level LSM tree."""

    def __init__(self, fs: Filesystem, config: Optional[LsmConfig] = None) -> None:
        config = config if config is not None else LsmConfig()
        if config.block_size % BLOCK_SIZE:
            raise InvalidArgument("LSM block size must be fs-block aligned")
        self.fs = fs
        self.config = config
        self.memtable: Dict[bytes, bytes] = {}
        self.memtable_bytes = 0
        self.level0: List[SsTable] = []   # newest first
        self.level1: List[SsTable] = []   # sorted by min_key
        self.stats = LsmStats()
        self._sst_counter = 0
        self._wal_ops = 0
        self._wal_offset = 0
        self._wal = self._open_wal()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes, now: float = 0.0) -> float:
        """Insert/update; may trigger a flush and compaction."""
        record = _LEN.pack(len(key), len(value)) + key + value
        now = self.fs.write(self._wal, self._wal_offset, data=record, now=now).finish_time
        self._wal_offset += len(record)
        self._wal_ops += 1
        if self._wal_ops % self.config.wal_sync_every == 0:
            now = self.fs.fsync(self._wal, now=now).finish_time
        if key not in self.memtable:
            self.memtable_bytes += len(key) + len(value)
        else:
            self.memtable_bytes += len(value) - len(self.memtable[key])
        self.memtable[key] = value
        self.stats.puts += 1
        if self.memtable_bytes >= self.config.memtable_bytes:
            now = self.flush(now)
        return now

    def get(self, key: bytes, now: float = 0.0) -> Tuple[float, Optional[bytes]]:
        """Point lookup: memtable, then L0 newest-first, then L1."""
        self.stats.gets += 1
        if key in self.memtable:
            self.stats.hits += 1
            return now, self.memtable[key]
        for sst in self.level0:
            if sst.may_contain(key) and key in sst.index:
                return self._read_value(sst, key, now)
        for sst in self.level1:
            if sst.may_contain(key) and key in sst.index:
                return self._read_value(sst, key, now)
        return now, None

    def flush(self, now: float = 0.0) -> float:
        """Write the memtable out as a new L0 table."""
        if not self.memtable:
            return now
        now = self._write_sst(sorted(self.memtable.items()), self.level0, now, prepend=True)
        self.memtable.clear()
        self.memtable_bytes = 0
        self.stats.flushes += 1
        now = self._reset_wal(now)
        if len(self.level0) >= self.config.l0_compaction_trigger:
            now = self.compact(now)
        return now

    def compact(self, now: float = 0.0) -> float:
        """Merge all of L0 and L1 into fresh L1 tables.

        Every victim table is read back through the filesystem (sequential
        1 MiB reads), so compaction I/O is fully accounted.
        """
        merged: Dict[bytes, bytes] = {}
        victims = list(reversed(self.level1)) + list(reversed(self.level0))
        for sst in victims:  # oldest first so newer entries win
            now, items = self._read_table(sst, now)
            merged.update(items)
        old_paths = [sst.path for sst in self.level0 + self.level1]
        self.level0 = []
        self.level1 = []
        items = sorted(merged.items())
        pos = 0
        while pos < len(items):
            chunk: List[Tuple[bytes, bytes]] = []
            chunk_bytes = 0
            while pos < len(items) and chunk_bytes < self.config.sst_target_bytes:
                chunk.append(items[pos])
                chunk_bytes += len(items[pos][0]) + len(items[pos][1])
                pos += 1
            now = self._write_sst(chunk, self.level1, now, prepend=False)
        for path in old_paths:
            now = self.fs.unlink(path, now=now).finish_time
        self.level1.sort(key=lambda sst: sst.min_key)
        self.stats.compactions += 1
        return now

    def files(self) -> List[str]:
        """Paths of all live SSTs (defragmentation targets)."""
        return [sst.path for sst in self.level0 + self.level1]

    @property
    def wal_path(self) -> str:
        return f"{self.config.directory}/wal.log"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _open_wal(self) -> FileHandle:
        # The WAL is buffered + fsynced (RocksDB's default path).
        return self.fs.open(self.wal_path, o_direct=False, app=self.config.app, create=True)

    def _reset_wal(self, now: float) -> float:
        now = self.fs.truncate(self._wal, 0, now=now).finish_time
        self._wal_offset = 0
        return now

    def _write_sst(
        self,
        items: List[Tuple[bytes, bytes]],
        level: List[SsTable],
        now: float,
        prepend: bool,
    ) -> float:
        if not items:
            return now
        path = f"{self.config.directory}/sst{self._sst_counter:06d}.sst"
        self._sst_counter += 1
        handle = self.fs.open(path, o_direct=self.config.o_direct, app=self.config.app, create=True)
        index: Dict[bytes, Tuple[int, int, int]] = {}
        block = bytearray()
        blocks: List[bytes] = []
        block_offset = 0
        for key, value in items:
            record = _LEN.pack(len(key), len(value)) + key + value
            if len(block) + len(record) > self.config.block_size and block:
                blocks.append(self._pad(block))
                block = bytearray()
                block_offset += self.config.block_size
            index[key] = (block_offset, len(block) + _LEN.size + len(key), len(value))
            block.extend(record)
        if block:
            blocks.append(self._pad(block))
        data = b"".join(blocks)
        # stream out in 1 MiB writes, like a real table builder
        pos = 0
        while pos < len(data):
            chunk = data[pos : pos + MIB]
            now = self.fs.write(handle, pos, data=chunk, now=now).finish_time
            pos += len(chunk)
        now = self.fs.fsync(handle, now=now).finish_time
        sst = SsTable(path=path, min_key=items[0][0], max_key=items[-1][0], size=len(data), index=index)
        if prepend:
            level.insert(0, sst)
        else:
            level.append(sst)
        return now

    def _pad(self, block: bytearray) -> bytes:
        pad = self.config.block_size - len(block)
        return bytes(block) + b"\x00" * pad

    def _read_value(self, sst: SsTable, key: bytes, now: float) -> Tuple[float, bytes]:
        block_off, in_block, vlen = sst.index[key]
        handle = self.fs.open(sst.path, o_direct=self.config.o_direct, app=self.config.app)
        length = min(self.config.block_size, block_align_up(sst.size) - block_off)
        result = self.fs.read(handle, block_off, length, now=now, want_data=True)
        self.stats.hits += 1
        value = result.data[in_block : in_block + vlen]
        return result.finish_time, value

    def _read_table(self, sst: SsTable, now: float) -> Tuple[float, List[Tuple[bytes, bytes]]]:
        """Sequentially read and parse a whole table (compaction input)."""
        handle = self.fs.open(sst.path, o_direct=self.config.o_direct, app=self.config.app)
        size = block_align_up(sst.size)
        chunks: List[bytes] = []
        pos = 0
        while pos < size:
            length = min(MIB, size - pos)
            result = self.fs.read(handle, pos, length, now=now, want_data=True)
            chunks.append(result.data)
            now = result.finish_time
            pos += length
        return now, _parse_blocks(b"".join(chunks), self.config.block_size)
