"""Filebench-fileserver-style file set and the recursive-grep measurement.

The file set is created with appends interleaved round-robin across many
files (plus optional delete/recreate churn), which is how a busy file
server ends up with every file shredded into small extents.  The paper's
measurement is the *grep cost*: recursively read every file under the
directory with buffered 32 KiB sequential reads (readahead turns those
into 128 KiB requests) and divide elapsed time by the data size
(seconds per GiB).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..constants import BLOCK_SIZE, GIB, KIB, MIB, block_align_up
from ..errors import InvalidArgument
from ..fs.base import Filesystem
from ..types import IoOp


@dataclass(frozen=True)
class FileServerConfig:
    directory: str = "/fileserver"
    file_count: int = 100
    mean_file_size: int = 1 * MIB      # scaled from the paper's 8.4 MB
    append_chunk: int = 8 * KIB        # per-append size during churn
    churn_rounds: int = 2              # delete/recreate passes
    #: leading fraction of each file written in one go (contiguous base);
    #: the rest arrives as interleaved appends over time, so files end up
    #: with a clean head and a shredded tail — the layout mix that lets a
    #: selective defragmenter skip work a full-file tool cannot
    contiguous_fraction: float = 0.5
    o_direct: bool = True              # the paper configures O_DIRECT
    seed: int = 11
    app: str = "fileserver"


@dataclass(frozen=True)
class GrepResult:
    elapsed: float
    bytes_read: int
    files: int

    @property
    def cost_per_gb(self) -> float:
        """The paper's grep cost: seconds per GiB of data."""
        if self.bytes_read == 0:
            return 0.0
        return self.elapsed / (self.bytes_read / GIB)


class FileServer:
    """Builds and churns the file set."""

    def __init__(self, fs: Filesystem, config: Optional[FileServerConfig] = None) -> None:
        self.fs = fs
        self.config = config = config if config is not None else FileServerConfig()
        self._rng = random.Random(config.seed)
        self.paths: List[str] = []

    def populate(self, now: float = 0.0) -> float:
        """Create the file set, then churn it.

        Each file gets a contiguous base (one streaming write) followed by
        interleaved appends shared with the other files.
        """
        sizes = [self._file_size() for _ in range(self.config.file_count)]
        self.paths = [
            f"{self.config.directory}/file{i:05d}" for i in range(self.config.file_count)
        ]
        now = self._two_phase_fill(self.paths, sizes, now)
        for round_idx in range(self.config.churn_rounds):
            now = self._churn(round_idx, now)
        return now

    def _two_phase_fill(self, paths: List[str], sizes: List[int], now: float) -> float:
        bases = [
            block_align_up(int(size * self.config.contiguous_fraction)) for size in sizes
        ]
        for path, base in zip(paths, bases):
            handle = self.fs.open(path, o_direct=self.config.o_direct, app=self.config.app, create=True)
            if base > 0:
                now = self.fs.write(handle, 0, base, now=now).finish_time
        tails = [size - base for size, base in zip(sizes, bases)]
        now = self._interleaved_append(paths, bases, tails, now)
        return now

    def _file_size(self) -> int:
        """Roughly gamma-distributed sizes around the configured mean."""
        size = int(self._rng.gammavariate(2.0, self.config.mean_file_size / 2.0))
        return max(BLOCK_SIZE, block_align_up(size))

    def _interleaved_append(self, paths: List[str], offsets: List[int], amounts: List[int], now: float) -> float:
        """Round-robin small appends across the files (the shredder)."""
        handles = [
            self.fs.open(path, o_direct=self.config.o_direct, app=self.config.app, create=True)
            for path in paths
        ]
        offsets = list(offsets)
        targets = [off + amt for off, amt in zip(offsets, amounts)]
        live = [i for i in range(len(paths)) if offsets[i] < targets[i]]
        while live:
            next_live = []
            for idx in live:
                chunk = min(self.config.append_chunk, targets[idx] - offsets[idx])
                if chunk <= 0:
                    continue
                now = self.fs.write(handles[idx], offsets[idx], chunk, now=now).finish_time
                offsets[idx] += chunk
                if offsets[idx] < targets[idx]:
                    next_live.append(idx)
            live = next_live
        return now

    def _churn(self, round_idx: int, now: float) -> float:
        """Delete a random subset and rewrite them (two-phase again)."""
        victims = self._rng.sample(self.paths, max(1, len(self.paths) // 4))
        for path in victims:
            now = self.fs.unlink(path, now=now).finish_time
        sizes = [self._file_size() for _ in victims]
        now = self._two_phase_fill(victims, sizes, now)
        return now

    def total_bytes(self) -> int:
        return sum(self.fs.inode_of(p).size for p in self.paths if self.fs.exists(p))

    def average_fragments(self) -> float:
        counts = [
            self.fs.inode_of(p).fragment_count() for p in self.paths if self.fs.exists(p)
        ]
        return sum(counts) / len(counts) if counts else 0.0


def grep_ops(file_size: int, request_size: int, file_id: int = 0) -> Iterator[IoOp]:
    """One file's share of the grep scan: buffered sequential reads, as
    unified :class:`~repro.types.IoOp` records."""
    offset = 0
    while offset < file_size:
        take = min(request_size, file_size - offset)
        yield IoOp("read", file_id, offset, take, o_direct=False)
        offset += take


def grep_directory(
    fs: Filesystem,
    directory: str,
    now: float = 0.0,
    request_size: int = 32 * KIB,
    app: str = "grep",
) -> Tuple[float, GrepResult]:
    """Recursive grep: buffered sequential reads of every file.

    Returns (finish_time, result).  Callers should ``fs.drop_caches()``
    first if the files were just written.
    """
    paths = fs.listdir(directory)
    if not paths:
        raise InvalidArgument(f"no files under {directory}")
    start = now
    total = 0
    for file_id, path in enumerate(paths):
        handle = fs.open(path, o_direct=False, app=app)
        size = fs.inode_of(path).size
        for record in grep_ops(size, request_size, file_id):
            now = fs.read(handle, record.offset, record.size, now=now).finish_time
        total += size
    return now, GrepResult(elapsed=now - start, bytes_read=total, files=len(paths))
