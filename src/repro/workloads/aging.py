"""Filesystem aging: the Dabre-profile substitute.

The paper ages its Ext4 filesystem with dummy files from the Dabre profile
(captured from a one-year-old root partition by Geriatrix) and then deletes
a subset to open fragmented free space.  We reproduce the effect: fill a
fraction of the disk with many small-to-medium files, then delete a random
subset, leaving free space shredded into small runs so subsequent
allocations fragment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..constants import BLOCK_SIZE, KIB
from ..fs.base import Filesystem


@dataclass(frozen=True)
class AgingReport:
    files_created: int
    files_deleted: int
    free_bytes: int
    free_runs: int
    largest_free_run: int


def age_filesystem(
    fs: Filesystem,
    fill_fraction: float = 0.6,
    delete_fraction: float = 0.4,
    min_file: int = 16 * KIB,
    max_file: int = 512 * KIB,
    seed: int = 7,
    now: float = 0.0,
    prefix: str = "/aging",
) -> AgingReport:
    """Churn the filesystem until free space is fragmented.

    ``fill_fraction`` of current free space is consumed by dummy files of
    uniformly random (block-aligned) sizes; ``delete_fraction`` of them are
    then deleted in random order.
    """
    rng = random.Random(seed)
    target = int(fs.free_space.free_bytes * fill_fraction)
    created: List[str] = []
    consumed = 0
    index = 0
    while consumed < target:
        size = rng.randrange(min_file, max_file + BLOCK_SIZE, BLOCK_SIZE)
        size = min(size, target - consumed + BLOCK_SIZE)
        size = max(BLOCK_SIZE, (size // BLOCK_SIZE) * BLOCK_SIZE)
        path = f"{prefix}/f{index:07d}"
        handle = fs.open(path, o_direct=True, app="aging", create=True)
        now = fs.write(handle, 0, size, now=now).finish_time
        created.append(path)
        consumed += size
        index += 1
    doomed = rng.sample(created, int(len(created) * delete_fraction))
    for path in doomed:
        now = fs.unlink(path, now=now).finish_time
    stats = fs.free_space.stats()
    return AgingReport(
        files_created=len(created),
        files_deleted=len(doomed),
        free_bytes=stats.free_bytes,
        free_runs=stats.run_count,
        largest_free_run=stats.largest_run,
    )
