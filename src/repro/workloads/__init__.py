"""Workloads and application substrates used by the paper's evaluation.

- :mod:`synthetic` — the Section 5.2 fragmented-file factory and
  sequential/stride readers/updaters.
- :mod:`kvstore` + :mod:`ycsb` — a RocksDB-like LSM store driven by
  YCSB-style operation streams (Figures 2 and 10).
- :mod:`sqlite_like` — a journaled paged database (Section 5.3.2).
- :mod:`fileserver` — Filebench-fileserver-like file set plus the
  recursive-grep measurement (Figure 11).
- :mod:`fio` — a simple sequential writer (co-running interference).
- :mod:`aging` — free-space aging (the Dabre-profile substitute).
"""

from .distributions import UniformKeys, ZipfianKeys
from .synthetic import (
    FragmentSpec,
    make_fragmented_file,
    make_paper_synthetic_file,
    pattern_ops,
    sequential_read,
    sequential_update,
    stride_read,
    stride_update,
)
from .aging import age_filesystem
from .kvstore import LsmStore, LsmConfig
from .ycsb import YcsbConfig, YcsbWorkload, WORKLOAD_A, WORKLOAD_C
from .sqlite_like import SqliteLike, SqliteConfig
from .fileserver import FileServer, FileServerConfig, grep_directory, grep_ops
from .fio import fio_ops, fio_sequential_writer

__all__ = [
    "UniformKeys",
    "ZipfianKeys",
    "FragmentSpec",
    "make_fragmented_file",
    "make_paper_synthetic_file",
    "pattern_ops",
    "sequential_read",
    "sequential_update",
    "stride_read",
    "stride_update",
    "age_filesystem",
    "LsmStore",
    "LsmConfig",
    "YcsbConfig",
    "YcsbWorkload",
    "WORKLOAD_A",
    "WORKLOAD_C",
    "SqliteLike",
    "SqliteConfig",
    "FileServer",
    "FileServerConfig",
    "grep_directory",
    "grep_ops",
    "fio_ops",
    "fio_sequential_writer",
]
