"""Key-popularity distributions for YCSB-style workloads.

Zipfian uses the Gray et al. "quick zipf" sampler YCSB itself uses, with
the usual hash-scramble so hot keys are spread over the keyspace instead
of clustered at low key ids.
"""

from __future__ import annotations

import random

from ..errors import InvalidArgument


class UniformKeys:
    """Uniform key sampler over ``[0, n)``."""

    def __init__(self, n: int, seed: int = 42) -> None:
        if n <= 0:
            raise InvalidArgument("need at least one key")
        self.n = n
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.n)


class ZipfianKeys:
    """Zipfian sampler (theta defaults to YCSB's 0.99), scrambled."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 42, scramble: bool = True) -> None:
        if n <= 0:
            raise InvalidArgument("need at least one key")
        if not 0.0 < theta < 1.0:
            raise InvalidArgument("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.scramble = scramble
        self._rng = random.Random(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self.theta:
            rank = 1
        else:
            rank = int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)
        rank = min(rank, self.n - 1)
        if self.scramble:
            return self._fnv(rank) % self.n
        return rank

    @staticmethod
    def _fnv(value: int) -> int:
        """64-bit FNV-1a over the integer's 8 bytes (YCSB's scramble)."""
        h = 0xCBF29CE484222325
        for _ in range(8):
            h ^= value & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            value >>= 8
        return h
