"""Synthetic fragmented files and the Section 5.2 access patterns.

Two factories:

- :func:`make_fragmented_file` — parametric (frag_size, frag_distance)
  layouts for the Section 3 / Figure 4 sweeps, produced the way the paper
  does it: writing the target file interleaved with a dummy file so the
  allocator separates the fragments.
- :func:`make_paper_synthetic_file` — the Section 5.2 layout: repeating
  units of thirty-two 4 KiB blocks followed by one 128 KiB block, dummy
  writes interleaved.

Plus the four measured patterns: sequential/stride x read/update, all
O_DIRECT with 128 KiB requests (stride 288 KiB), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from typing import Iterator

from ..constants import BLOCK_SIZE, KIB, READAHEAD_SIZE, STRIDE_SIZE
from ..errors import InvalidArgument
from ..fs.base import FallocMode, Filesystem
from ..types import IoOp


@dataclass(frozen=True)
class FragmentSpec:
    """Layout parameters (Figure 3): fragment size and gap between
    consecutive fragments, both in bytes."""

    frag_size: int
    frag_distance: int

    def __post_init__(self) -> None:
        if self.frag_size <= 0 or self.frag_size % BLOCK_SIZE:
            raise InvalidArgument(f"bad frag_size {self.frag_size}")
        if self.frag_distance < 0 or self.frag_distance % BLOCK_SIZE:
            raise InvalidArgument(f"bad frag_distance {self.frag_distance}")


def make_fragmented_file(
    fs: Filesystem,
    path: str,
    size: int,
    spec: FragmentSpec,
    now: float = 0.0,
    dummy_path: str = None,
    app: str = "setup",
    fallocate_dummy: bool = False,
) -> float:
    """Create ``path`` of ``size`` bytes fragmented per ``spec``.

    Writes ``frag_size`` of the target, then ``frag_distance`` of a dummy
    file, repeatedly, with O_DIRECT — so on every personality the target's
    fragments end up separated by ``frag_distance`` of foreign data.
    ``fallocate_dummy`` claims the dummy's blocks via ``fallocate`` instead
    of writing them — same resulting layout, far cheaper to build, which
    matters for large frag-distance sweeps (the Ext4 variant of the
    paper's Section 5.2 recipe).  Returns the virtual completion time.
    """
    if size % BLOCK_SIZE:
        raise InvalidArgument("size must be block aligned")
    handle = fs.open(path, o_direct=True, app=app, create=True)
    dummy = None
    if spec.frag_distance > 0:
        dummy = fs.open(dummy_path or path + ".dummy", o_direct=True, app=app, create=True)
    offset = 0
    dummy_offset = 0
    while offset < size:
        chunk = min(spec.frag_size, size - offset)
        now = fs.write(handle, offset, chunk, now=now).finish_time
        offset += chunk
        if dummy is not None and offset < size:
            if fallocate_dummy:
                now = fs.fallocate(
                    dummy, FallocMode.ALLOCATE, dummy_offset, spec.frag_distance, now=now
                ).finish_time
            else:
                now = fs.write(dummy, dummy_offset, spec.frag_distance, now=now).finish_time
            dummy_offset += spec.frag_distance
    now = fs.fsync(handle, now=now).finish_time
    return now


def make_paper_synthetic_file(
    fs: Filesystem,
    path: str,
    size: int,
    now: float = 0.0,
    small_block: int = 4 * KIB,
    small_count: int = 32,
    big_block: int = 128 * KIB,
    dummy_block: int = 8 * KIB,
    app: str = "setup",
) -> float:
    """The Section 5.2 layout: a series of 32 x 4 KiB blocks and one
    128 KiB block per unit, interleaved with dummy-file writes."""
    if size % (small_block * small_count + big_block):
        raise InvalidArgument("size must be a multiple of the unit size")
    handle = fs.open(path, o_direct=True, app=app, create=True)
    dummy = fs.open(path + ".dummy", o_direct=True, app=app, create=True)
    offset = 0
    dummy_offset = 0
    while offset < size:
        for _ in range(small_count):
            now = fs.write(handle, offset, small_block, now=now).finish_time
            offset += small_block
            now = fs.write(dummy, dummy_offset, dummy_block, now=now).finish_time
            dummy_offset += dummy_block
        now = fs.write(handle, offset, big_block, now=now).finish_time
        offset += big_block
        now = fs.write(dummy, dummy_offset, dummy_block, now=now).finish_time
        dummy_offset += dummy_block
    now = fs.fsync(handle, now=now).finish_time
    return now


# ----------------------------------------------------------------------
# measured access patterns
# ----------------------------------------------------------------------

def pattern_ops(
    op: str,
    file_size: int,
    stride: int,
    request_size: int,
    o_direct: bool = True,
    file_id: int = 0,
) -> Iterator[IoOp]:
    """The op stream of one sequential/stride pattern, as unified
    :class:`~repro.types.IoOp` records (closed-loop: ``time`` stays 0)."""
    offset = 0
    while offset + request_size <= file_size:
        yield IoOp(op, file_id, offset, request_size, o_direct=o_direct)
        offset += stride


def _run_pattern(
    fs: Filesystem,
    path: str,
    op: str,
    stride: int,
    request_size: int,
    now: float,
    app: str,
    o_direct: bool,
) -> Tuple[float, float]:
    """Run a pattern over the whole file; returns (finish, MB/s)."""
    handle = fs.open(path, o_direct=o_direct, app=app)
    size = fs.inode_of(path).size
    start = now
    moved = 0
    for record in pattern_ops(op, size, stride, request_size, o_direct):
        if record.op == "read":
            now = fs.read(handle, record.offset, record.size, now=now).finish_time
        else:
            now = fs.write(handle, record.offset, record.size, now=now).finish_time
        moved += record.size
    if moved == 0:
        raise InvalidArgument(f"file {path} smaller than one request")
    throughput = moved / (now - start) / 1e6
    return now, throughput


def sequential_read(fs, path, now=0.0, request_size=READAHEAD_SIZE, app="bench", o_direct=True):
    """Sequential reads across the file; returns (finish_time, MB/s)."""
    return _run_pattern(fs, path, "read", request_size, request_size, now, app, o_direct)


def stride_read(fs, path, now=0.0, request_size=READAHEAD_SIZE, stride=STRIDE_SIZE, app="bench", o_direct=True):
    """Stride reads (128 KiB every 288 KiB by default)."""
    return _run_pattern(fs, path, "read", stride, request_size, now, app, o_direct)


def sequential_update(fs, path, now=0.0, request_size=READAHEAD_SIZE, app="bench", o_direct=True):
    """Sequential overwrites of existing data."""
    return _run_pattern(fs, path, "write", request_size, request_size, now, app, o_direct)


def stride_update(fs, path, now=0.0, request_size=READAHEAD_SIZE, stride=STRIDE_SIZE, app="bench", o_direct=True):
    """Stride overwrites."""
    return _run_pattern(fs, path, "write", stride, request_size, now, app, o_direct)
