"""YCSB-style workloads over the LSM store.

Workload A (50% read / 50% update, zipfian) and workload C (100% read,
zipfian) — the two mixes the paper uses (Figures 2 and 10).  Provides both
a synchronous runner and a co-running actor that records an
operations-per-second timeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import InvalidArgument
from .distributions import UniformKeys, ZipfianKeys
from .kvstore import LsmStore


@dataclass(frozen=True)
class YcsbConfig:
    record_count: int = 100_000
    value_size: int = 1024
    read_proportion: float = 1.0
    update_proportion: float = 0.0
    distribution: str = "zipfian"  # "zipfian" | "uniform"
    zipf_theta: float = 0.99
    seed: int = 42
    #: application CPU per operation (request parsing, memtable work, ...)
    op_cpu: float = 0.00003

    def __post_init__(self) -> None:
        if abs(self.read_proportion + self.update_proportion - 1.0) > 1e-9:
            raise InvalidArgument("proportions must sum to 1")


WORKLOAD_A = YcsbConfig(read_proportion=0.5, update_proportion=0.5)
WORKLOAD_C = YcsbConfig(read_proportion=1.0, update_proportion=0.0)


def _key(i: int) -> bytes:
    return b"user%012d" % i


class YcsbWorkload:
    """Load + run YCSB operations against an :class:`LsmStore`."""

    def __init__(self, store: LsmStore, config: YcsbConfig = WORKLOAD_C) -> None:
        self.store = store
        self.config = config
        self._op_rng = random.Random(config.seed ^ 0x5EED)
        self._value_rng = random.Random(config.seed ^ 0xDA7A)
        if config.distribution == "zipfian":
            self._keys = ZipfianKeys(config.record_count, config.zipf_theta, config.seed)
        elif config.distribution == "uniform":
            self._keys = UniformKeys(config.record_count, config.seed)
        else:
            raise InvalidArgument(f"unknown distribution {config.distribution!r}")

    # -- load phase ----------------------------------------------------------

    def load(self, now: float = 0.0) -> float:
        """Insert every record, then flush (the YCSB load phase)."""
        for i in range(self.config.record_count):
            now = self.store.put(_key(i), self._value(), now=now)
        return self.store.flush(now)

    def _value(self) -> bytes:
        return self._value_rng.randbytes(self.config.value_size)

    # -- run phase -------------------------------------------------------------

    def one_op(self, now: float) -> Tuple[float, bool]:
        """Execute one operation; returns (finish, was_read)."""
        now += self.config.op_cpu
        key = _key(self._keys.next())
        if self._op_rng.random() < self.config.read_proportion:
            now, value = self.store.get(key, now=now)
            return now, True
        return self.store.put(key, self._value(), now=now), False

    def run_ops(self, ops: int, now: float = 0.0) -> Tuple[float, float]:
        """Run ``ops`` operations; returns (finish, ops/sec)."""
        start = now
        for _ in range(ops):
            now, _ = self.one_op(now)
        return now, ops / (now - start) if now > start else 0.0

    def actor(self, duration: Optional[float] = None, max_ops: Optional[int] = None):
        """Co-running actor: one yield per op, completions on the timeline."""
        if duration is None and max_ops is None:
            raise InvalidArgument("actor needs a duration or an op budget")

        def _run(ctx):
            done = 0
            end = None if duration is None else ctx.now + duration
            while (end is None or ctx.now < end) and (max_ops is None or done < max_ops):
                ctx.now, _ = self.one_op(ctx.now)
                ctx.record()
                done += 1
                yield
        return _run
