"""FIO-like sequential writer, used as a co-running foreground workload
in the SQLite/MicroSD experiment (Section 5.3.2)."""

from __future__ import annotations

from ..constants import KIB
from ..fs.base import Filesystem


def fio_sequential_writer(
    fs: Filesystem,
    path: str = "/fio.dat",
    request_size: int = 128 * KIB,
    duration: float = None,
    max_bytes: int = None,
    app: str = "fio",
):
    """Actor: 128 KiB sequential O_DIRECT writes; completions -> timeline.

    Each timeline event carries the bytes written, so
    ``ctx.timeline.total() / elapsed`` is the FIO throughput.
    """
    if duration is None and max_bytes is None:
        raise ValueError("fio needs a duration or byte budget")

    def _run(ctx):
        handle = fs.open(path, o_direct=True, app=app, create=True)
        offset = 0
        end = None if duration is None else ctx.now + duration
        while (end is None or ctx.now < end) and (max_bytes is None or offset < max_bytes):
            result = fs.write(handle, offset, request_size, now=ctx.now)
            ctx.now = result.finish_time
            ctx.record(request_size)
            offset += request_size
            yield
    return _run
