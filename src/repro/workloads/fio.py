"""FIO-like sequential writer, used as a co-running foreground workload
in the SQLite/MicroSD experiment (Section 5.3.2)."""

from __future__ import annotations

from typing import Iterator

from ..constants import KIB
from ..fs.base import Filesystem
from ..types import IoOp


def fio_ops(request_size: int, file_id: int = 0) -> Iterator[IoOp]:
    """The endless sequential-write op stream, as unified
    :class:`~repro.types.IoOp` records (the caller bounds it by duration
    or byte budget)."""
    offset = 0
    while True:
        yield IoOp("write", file_id, offset, request_size)
        offset += request_size


def fio_sequential_writer(
    fs: Filesystem,
    path: str = "/fio.dat",
    request_size: int = 128 * KIB,
    duration: float = None,
    max_bytes: int = None,
    app: str = "fio",
):
    """Actor: 128 KiB sequential O_DIRECT writes; completions -> timeline.

    Each timeline event carries the bytes written, so
    ``ctx.timeline.total() / elapsed`` is the FIO throughput.
    """
    if duration is None and max_bytes is None:
        raise ValueError("fio needs a duration or byte budget")

    def _run(ctx):
        handle = fs.open(path, o_direct=True, app=app, create=True)
        end = None if duration is None else ctx.now + duration
        for record in fio_ops(request_size):
            if end is not None and ctx.now >= end:
                break
            if max_bytes is not None and record.offset >= max_bytes:
                break
            result = fs.write(handle, record.offset, record.size, now=ctx.now)
            ctx.now = result.finish_time
            ctx.record(record.size)
            yield
    return _run
