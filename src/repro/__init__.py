"""FragPicker (SOSP 2021) reproduction.

A complete, simulated modern-storage stack — device models with the
internal mechanisms the paper analyses, a block layer with request
splitting, Ext4/F2FS/Btrfs-flavoured filesystems — plus FragPicker itself,
the conventional defragmenters it is compared against, and the paper's
workloads and experiments.

Quickstart::

    from repro import make_device, make_filesystem, FragPicker
    from repro.workloads import make_paper_synthetic_file, sequential_read

    fs = make_filesystem("ext4", make_device("optane"))
    now = make_paper_synthetic_file(fs, "/data", size=33 * 1024 * 1024)
    picker = FragPicker(fs)
    with picker.monitor(apps={"bench"}) as mon:
        now, before = sequential_read(fs, "/data", now=now)
    report = picker.defragment(mon.records, paths=["/data"], now=now)
    now, after = sequential_read(fs, "/data", now=report.finished_at)
"""

from .constants import BLOCK_SIZE, GIB, KIB, MIB, READAHEAD_SIZE, STRIDE_SIZE
from .device import make_device
from .fs import make_filesystem, fiemap, fragment_count
from .core import DefragReport, FragPicker, FragPickerConfig
from .tools import btrfs_defragment, e4defrag, f2fs_defrag, make_conventional, Fstrim
from .trace import SyscallMonitor
from .sim import Session, run_concurrently

__version__ = "1.0.0"

__all__ = [
    "BLOCK_SIZE",
    "KIB",
    "MIB",
    "GIB",
    "READAHEAD_SIZE",
    "STRIDE_SIZE",
    "make_device",
    "make_filesystem",
    "fiemap",
    "fragment_count",
    "FragPicker",
    "FragPickerConfig",
    "DefragReport",
    "e4defrag",
    "btrfs_defragment",
    "f2fs_defrag",
    "make_conventional",
    "Fstrim",
    "SyscallMonitor",
    "Session",
    "run_concurrently",
    "__version__",
]
