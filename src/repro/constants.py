"""Global constants shared across the simulated storage stack.

All sizes are in bytes, all times in (virtual) seconds unless a name says
otherwise.  The values mirror the defaults of the Linux I/O stack that the
FragPicker paper builds on: 4 KiB filesystem blocks and a 128 KiB readahead
window, which is also the request size used throughout the paper's
evaluation.
"""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Filesystem / device logical block size.  Every extent, allocation, and
#: LBA in the stack is aligned to this.
BLOCK_SIZE = 4 * KIB

#: Default Linux readahead window; also the I/O request size used by the
#: paper ("we defined the size of read requests as 128KB because it is the
#: default readahead size in the Linux kernel").
READAHEAD_SIZE = 128 * KIB

#: Upper bound on a single block-layer request (a bio can only describe a
#: contiguous LBA range; the splitter additionally caps length here, the
#: Linux equivalent of ``max_sectors_kb``).
MAX_REQUEST_SIZE = 512 * KIB

#: Stride used by the paper's stride read/update synthetic workloads.
STRIDE_SIZE = 288 * KIB


def blocks(nbytes: int) -> int:
    """Number of whole blocks covering ``nbytes`` (ceiling division)."""
    return -(-nbytes // BLOCK_SIZE)


def block_align_down(offset: int) -> int:
    """Largest block-aligned offset <= ``offset``."""
    return (offset // BLOCK_SIZE) * BLOCK_SIZE


def block_align_up(offset: int) -> int:
    """Smallest block-aligned offset >= ``offset``."""
    return blocks(offset) * BLOCK_SIZE
