"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class DeviceError(ReproError):
    """A storage-device model was used incorrectly (bad LBA, overflow...)."""


class FilesystemError(ReproError):
    """Generic filesystem failure."""


class NoSpaceError(FilesystemError):
    """Allocation failed: no free space (or no suitable contiguous run)."""


class FileNotFound(FilesystemError):
    """Path or inode does not exist."""


class FileExists(FilesystemError):
    """Attempt to create a path that already exists."""


class InvalidArgument(ReproError):
    """A caller passed an out-of-range or misaligned argument."""


class FileLocked(FilesystemError):
    """The file is locked by another holder (FragPicker migration lock)."""


class DefragError(ReproError):
    """A defragmentation tool could not complete."""


class FaultError(ReproError):
    """Base class for failures injected by :mod:`repro.faults`.

    Retry logic catches this (and only this) family: injected faults are
    transient by construction, unlike the usage errors above.
    """


class DeviceIOError(FaultError):
    """An injected I/O failure (the EIO a dying device would return)."""


class TornWriteError(FaultError):
    """An injected torn write: only a prefix of the data reached storage.

    ``bytes_written`` says how much survived; everything past it is lost.
    """

    def __init__(self, message: str, bytes_written: int = 0) -> None:
        super().__init__(message)
        self.bytes_written = bytes_written


class InjectedCrash(FaultError):
    """An injected whole-system crash (sudden power-off).

    Unlike other faults this is *not* retryable — nothing survives except
    what the :class:`~repro.core.recovery.MigrationJournal` retained.
    """
