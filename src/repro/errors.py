"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class DeviceError(ReproError):
    """A storage-device model was used incorrectly (bad LBA, overflow...)."""


class FilesystemError(ReproError):
    """Generic filesystem failure."""


class NoSpaceError(FilesystemError):
    """Allocation failed: no free space (or no suitable contiguous run)."""


class FileNotFound(FilesystemError):
    """Path or inode does not exist."""


class FileExists(FilesystemError):
    """Attempt to create a path that already exists."""


class InvalidArgument(ReproError):
    """A caller passed an out-of-range or misaligned argument."""


class FileLocked(FilesystemError):
    """The file is locked by another holder (FragPicker migration lock)."""


class DefragError(ReproError):
    """A defragmentation tool could not complete."""
