"""Ext4-flavoured filesystem: in-place updates, extent-based allocation.

Updates to already-mapped blocks reuse them (in-place), which is why
FragPicker must punch + fallocate before rewriting on Ext4 (Section 4.2.2).
New data gets multi-block, goal-directed allocation — Ext4's mballoc
behaviour — and buffered writes benefit from delayed allocation because the
base class only calls :meth:`_allocate_write` at writeback time.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Filesystem
from .extent_map import Extent
from .inode import Inode


class Ext4(Filesystem):
    """In-place-update, extent-based personality."""

    fs_type = "ext4"
    in_place_updates = True

    def _allocate_write(self, inode: Inode, offset: int, length: int) -> List[Tuple[int, int]]:
        ranges: List[Tuple[int, int]] = []
        pos = offset
        for disk, piece_len in inode.extent_map.map_range(offset, length):
            if disk is not None:
                # in-place: reuse the existing blocks
                ranges.append((disk, piece_len))
            else:
                goal = self._goal_for(inode, pos)
                runs = self.free_space.alloc(piece_len, goal=goal)
                run_pos = pos
                for run_start, run_len in runs:
                    inode.extent_map.insert(Extent(run_pos, run_start, run_len))
                    ranges.append((run_start, run_len))
                    run_pos += run_len
            pos += piece_len
        return ranges
