"""FIEMAP / filefrag equivalents.

``fiemap`` reports the physical extents backing a file range, merged the
way ``filefrag -v`` merges them; ``fragment_count`` is ``filefrag``'s
headline number.  FragPicker's fragmentation-checking step is built on
this interface only — no filesystem internals — which is what makes it
filesystem-agnostic (Section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..constants import block_align_up
from ..errors import DeviceIOError, InjectedCrash
from .base import Filesystem
from .inode import Inode


@dataclass(frozen=True)
class FiemapExtent:
    """One physical extent as FIEMAP reports it."""

    logical: int   # file offset
    physical: int  # device offset
    length: int
    is_last: bool


def _resolve(fs: Filesystem, target: Union[str, Inode]) -> Inode:
    if isinstance(target, Inode):
        return target
    return fs.inode_of(target)


def _fault_check(fs: Filesystem, inode: Inode, offset: int, length: int) -> None:
    """Site ``fs.fiemap``: the ioctl itself can fail mid-migration."""
    fire = fs.faults.check("fs.fiemap", op="fiemap", offset=offset, length=length)
    if fire is None:
        return
    if fire.kind == "crash":
        raise InjectedCrash(f"injected power-off during FIEMAP of {inode.path}")
    if fire.kind == "io_error":
        raise DeviceIOError(f"injected FIEMAP failure for {inode.path}")
    # latency/torn have no host-side meaning for an ioctl; ignore them


def fiemap(
    fs: Filesystem,
    target: Union[str, Inode],
    offset: int = 0,
    length: Optional[int] = None,
) -> List[FiemapExtent]:
    """Physical extents backing ``[offset, offset+length)`` of the file."""
    inode = _resolve(fs, target)
    if length is None:
        length = max(0, block_align_up(inode.size) - offset)
    if fs.faults.enabled:
        _fault_check(fs, inode, offset, length)
    pieces = []
    pos = offset
    for disk, piece_len in inode.extent_map.map_range(offset, length):
        if disk is not None:
            # merge with previous when physically contiguous
            if pieces and pieces[-1][0] + pieces[-1][2] == pos and pieces[-1][1] + pieces[-1][2] == disk:
                logical, physical, plen = pieces[-1]
                pieces[-1] = (logical, physical, plen + piece_len)
            else:
                pieces.append((pos, disk, piece_len))
        pos += piece_len
    return [
        FiemapExtent(logical, physical, plen, idx == len(pieces) - 1)
        for idx, (logical, physical, plen) in enumerate(pieces)
    ]


def fragment_count(fs: Filesystem, target: Union[str, Inode]) -> int:
    """``filefrag <file>``: number of physically discontiguous extents."""
    return _resolve(fs, target).extent_map.fragment_count()


def is_fragmented(fs: Filesystem, target: Union[str, Inode], offset: int, length: int) -> bool:
    """True when the file range maps to more than one physical run.

    This is FragPicker's per-range fragmentation check: it asks whether a
    single contiguous-LBA request could cover the range (holes are ignored
    — nothing to read there).
    """
    inode = _resolve(fs, target)
    if fs.faults.enabled:
        _fault_check(fs, inode, offset, length)
    ranges = inode.extent_map.disk_ranges(offset, length)
    if len(ranges) <= 1:
        return False
    merged_end = ranges[0][0] + ranges[0][1]
    for start, run_len in ranges[1:]:
        if start != merged_end:
            return True
        merged_end = start + run_len
    return False
