"""Device free-space management.

A sorted run list with first-fit / goal / best-effort-contiguous
allocation.  Free-space fragmentation — the reason aged filesystems give
new files discontiguous blocks — emerges naturally from churn, and the
aging workload relies on it.

Indexing: alongside the address-sorted ``(start, length)`` arrays the
manager maintains a *size-bucketed* index — one address-sorted bucket per
``length.bit_length()`` class — so ``alloc_contiguous`` resolves its
first-fit-at-or-after-goal search with a handful of bisects instead of a
linear scan over every run.  ``free_bytes`` is a running counter and
``stats()``/``runs()`` are cached until the next mutation.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..constants import BLOCK_SIZE
from ..errors import InvalidArgument, NoSpaceError

Run = Tuple[int, int]  # (start, length), byte units, block aligned


@dataclass(frozen=True)
class FreeSpaceStats:
    free_bytes: int
    run_count: int
    largest_run: int


class FreeSpaceManager:
    """Sorted list of free runs over ``[region_start, region_end)``."""

    __slots__ = (
        "region_start", "region_end", "_starts", "_lengths",
        "_free_bytes", "_buckets", "_runs_cache", "_stats_cache",
    )

    def __init__(self, region_start: int, region_end: int) -> None:
        if region_start % BLOCK_SIZE or region_end % BLOCK_SIZE:
            raise InvalidArgument("region bounds must be block aligned")
        if region_end <= region_start:
            raise InvalidArgument("empty free-space region")
        self.region_start = region_start
        self.region_end = region_end
        self._starts: List[int] = [region_start]
        self._lengths: List[int] = [region_end - region_start]
        self._free_bytes = region_end - region_start
        #: size index: length.bit_length() -> address-sorted (start, length)
        self._buckets: Dict[int, List[Run]] = {}
        self._runs_cache: Optional[Tuple[Run, ...]] = None
        self._stats_cache: Optional[FreeSpaceStats] = None
        self._bucket_add(region_start, region_end - region_start)

    # -- queries ---------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return self._free_bytes

    def runs(self) -> Tuple[Run, ...]:
        """All free runs in address order (cached; immutable tuple)."""
        cached = self._runs_cache
        if cached is None:
            cached = self._runs_cache = tuple(zip(self._starts, self._lengths))
        return cached

    def stats(self) -> FreeSpaceStats:
        cached = self._stats_cache
        if cached is None:
            cached = self._stats_cache = FreeSpaceStats(
                free_bytes=self._free_bytes,
                run_count=len(self._starts),
                largest_run=self.largest_run(),
            )
        return cached

    def largest_run(self) -> int:
        buckets = self._buckets
        if not buckets:
            return 0
        return max(length for _, length in buckets[max(buckets)])

    # -- allocation ------------------------------------------------------

    def alloc_contiguous(self, length: int, goal: Optional[int] = None) -> int:
        """Allocate one contiguous run of ``length`` bytes; returns start.

        Tries first-fit *at or after* ``goal`` (allocating mid-run when the
        goal falls inside a free run), then wraps around.  Raises
        :class:`NoSpaceError` when no single run is large enough.
        """
        self._check(length)
        return self._alloc_contiguous(length, goal)

    def _alloc_contiguous(self, length: int, goal: Optional[int]) -> int:
        starts = self._starts
        count = len(starts)
        if goal is not None and count:
            lengths = self._lengths
            pivot = bisect_left(starts, goal)
            if pivot > 0 and starts[pivot - 1] + lengths[pivot - 1] > goal:
                pivot -= 1  # goal falls inside the previous run
            if pivot < count:
                pivot_start = starts[pivot]
                pivot_len = lengths[pivot]
                if pivot_start < goal < pivot_start + pivot_len:
                    # the goal sits inside this run: honour it exactly
                    if pivot_start + pivot_len - goal >= length:
                        self._alloc_at(goal, length)
                        return goal
                    # tail too small; the run stays eligible from its
                    # start when the search wraps back around
                    if pivot_len >= length and count == 1:
                        return self._take(pivot, length)
                    found = self._first_fit(length, pivot_start + 1, self.region_end)
                    if found < 0:
                        found = self._first_fit(length, 0, pivot_start)
                    if found >= 0:
                        return self._take(bisect_left(starts, found), length)
                    # wrap-around retry for the pivot run we skipped above
                    if pivot_len >= length:
                        return self._take(pivot, length)
                else:
                    found = self._first_fit(length, pivot_start, self.region_end)
                    if found < 0:
                        found = self._first_fit(length, 0, pivot_start)
                    if found >= 0:
                        return self._take(bisect_left(starts, found), length)
                raise NoSpaceError(
                    f"no contiguous run of {length} bytes "
                    f"(largest {self.largest_run()})"
                )
        found = self._first_fit(length, 0, self.region_end)
        if found >= 0:
            return self._take(bisect_left(starts, found), length)
        raise NoSpaceError(
            f"no contiguous run of {length} bytes (largest {self.largest_run()})"
        )

    def alloc(self, length: int, goal: Optional[int] = None) -> List[Run]:
        """Allocate ``length`` bytes, contiguous if possible.

        Falls back to stitching together multiple runs in *address order*
        from the goal (the way ext4 scans block groups) when no single run
        fits — this is how writing into fragmented free space yields a
        fragmented file whose pieces are hole-sized.
        """
        self._check(length)
        if self._free_bytes < length:
            raise NoSpaceError(f"only {self._free_bytes} bytes free, need {length}")
        try:
            start = self._alloc_contiguous(length, goal)
            return [(start, length)]
        except NoSpaceError:
            pass
        pieces: List[Run] = []
        remaining = length
        pivot = goal if goal is not None else self.region_start
        starts = self._starts
        while remaining > 0:
            idx = bisect_left(starts, pivot)
            if idx >= len(starts):
                idx = 0  # wrap around
            take = min(self._lengths[idx], remaining)
            start = self._take(idx, take)
            pieces.append((start, take))
            pivot = start + take
            remaining -= take
        pieces.sort()
        return pieces

    def alloc_at(self, start: int, length: int) -> None:
        """Claim an exact range (used to replay known layouts).

        Raises :class:`NoSpaceError` if any part is already allocated.
        """
        self._check(length)
        self._alloc_at(start, length)

    def _alloc_at(self, start: int, length: int) -> None:
        starts = self._starts
        lengths = self._lengths
        idx = bisect_right(starts, start) - 1
        if idx < 0:
            raise NoSpaceError(f"range at {start} not free")
        run_start, run_len = starts[idx], lengths[idx]
        if start < run_start or start + length > run_start + run_len:
            raise NoSpaceError(f"range [{start}, {start + length}) not free")
        # split the run around the claimed range
        self._bucket_remove(run_start, run_len)
        head = start - run_start
        tail = (run_start + run_len) - (start + length)
        if head > 0 and tail > 0:
            lengths[idx] = head
            starts.insert(idx + 1, start + length)
            lengths.insert(idx + 1, tail)
            self._bucket_add(run_start, head)
            self._bucket_add(start + length, tail)
        elif head > 0:
            lengths[idx] = head
            self._bucket_add(run_start, head)
        elif tail > 0:
            starts[idx] = start + length
            lengths[idx] = tail
            self._bucket_add(start + length, tail)
        else:
            del starts[idx]
            del lengths[idx]
        self._free_bytes -= length
        self._runs_cache = self._stats_cache = None

    # -- release ---------------------------------------------------------

    def free(self, start: int, length: int) -> None:
        """Return a range to the pool, coalescing with neighbours."""
        self._check(length)
        if start < self.region_start or start + length > self.region_end:
            raise InvalidArgument(f"free outside region: [{start}, {start + length})")
        starts = self._starts
        lengths = self._lengths
        idx = bisect_left(starts, start)
        # guard against double free / overlap (always on: a state
        # corruption check, not argument validation)
        if idx > 0:
            prev_end = starts[idx - 1] + lengths[idx - 1]
            if prev_end > start:
                raise InvalidArgument(f"double free at {start}")
        if idx < len(starts) and start + length > starts[idx]:
            raise InvalidArgument(f"double free at {start}")
        new_start, new_len = start, length
        # coalesce with next
        if idx < len(starts) and start + length == starts[idx]:
            self._bucket_remove(starts[idx], lengths[idx])
            new_len += lengths[idx]
            del starts[idx]
            del lengths[idx]
        # coalesce with previous
        if idx > 0 and starts[idx - 1] + lengths[idx - 1] == start:
            idx -= 1
            self._bucket_remove(starts[idx], lengths[idx])
            new_start = starts[idx]
            new_len += lengths[idx]
            starts[idx] = new_start
            lengths[idx] = new_len
        else:
            starts.insert(idx, new_start)
            lengths.insert(idx, new_len)
        self._bucket_add(new_start, new_len)
        self._free_bytes += length
        self._runs_cache = self._stats_cache = None

    # -- internals -------------------------------------------------------

    def _take(self, idx: int, length: int) -> int:
        start = self._starts[idx]
        run_len = self._lengths[idx]
        self._bucket_remove(start, run_len)
        if run_len == length:
            del self._starts[idx]
            del self._lengths[idx]
        else:
            self._starts[idx] = start + length
            self._lengths[idx] = run_len - length
            self._bucket_add(start + length, run_len - length)
        self._free_bytes -= length
        self._runs_cache = self._stats_cache = None
        return start

    def _bucket_add(self, start: int, length: int) -> None:
        key = length.bit_length()
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [(start, length)]
        else:
            insort(bucket, (start, length))

    def _bucket_remove(self, start: int, length: int) -> None:
        key = length.bit_length()
        bucket = self._buckets[key]
        if len(bucket) == 1:
            del self._buckets[key]
        else:
            del bucket[bisect_left(bucket, (start, length))]

    def _first_fit(self, length: int, lo_addr: int, hi_addr: int) -> int:
        """Start of the lowest-addressed free run with ``start`` in
        ``[lo_addr, hi_addr)`` and ``run length >= length``; -1 if none.

        Runs whose ``bit_length`` class exceeds the request's always fit,
        so each such bucket costs one bisect; only the request's own size
        class needs per-entry length filtering.
        """
        want = length.bit_length()
        best = -1
        probe = (lo_addr, 0)
        for key, bucket in self._buckets.items():
            if key < want:
                continue
            i = bisect_left(bucket, probe)
            if key == want:
                while i < len(bucket):
                    run_start, run_len = bucket[i]
                    if run_start >= hi_addr or (best >= 0 and run_start >= best):
                        break
                    if run_len >= length:
                        best = run_start
                        break
                    i += 1
            elif i < len(bucket):
                run_start = bucket[i][0]
                if run_start < hi_addr and (best < 0 or run_start < best):
                    best = run_start
        return best

    @staticmethod
    def _check(length: int) -> None:
        if length <= 0 or length % BLOCK_SIZE:
            raise InvalidArgument(f"bad allocation length {length}")

    def check_invariants(self) -> None:
        """Raise AssertionError on violated internal invariants."""
        prev_end = None
        total = 0
        for start, length in zip(self._starts, self._lengths):
            assert length > 0
            assert start >= self.region_start
            assert start + length <= self.region_end
            if prev_end is not None:
                assert start > prev_end, "runs not coalesced or overlapping"
            prev_end = start + length
            total += length
        assert total == self._free_bytes, "free-byte counter out of sync"
        indexed = sorted(
            run for bucket in self._buckets.values() for run in bucket
        )
        assert indexed == sorted(
            zip(self._starts, self._lengths)
        ), "size buckets out of sync with run list"
        for key, bucket in self._buckets.items():
            assert bucket, "empty bucket left behind"
            assert bucket == sorted(bucket), "bucket not address sorted"
            for _, length in bucket:
                assert length.bit_length() == key, "run in wrong size bucket"
