"""Device free-space management.

A sorted run list with first-fit / goal / best-effort-contiguous
allocation.  Free-space fragmentation — the reason aged filesystems give
new files discontiguous blocks — emerges naturally from churn, and the
aging workload relies on it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..constants import BLOCK_SIZE
from ..errors import InvalidArgument, NoSpaceError

Run = Tuple[int, int]  # (start, length), byte units, block aligned


@dataclass(frozen=True)
class FreeSpaceStats:
    free_bytes: int
    run_count: int
    largest_run: int


class FreeSpaceManager:
    """Sorted list of free runs over ``[region_start, region_end)``."""

    def __init__(self, region_start: int, region_end: int) -> None:
        if region_start % BLOCK_SIZE or region_end % BLOCK_SIZE:
            raise InvalidArgument("region bounds must be block aligned")
        if region_end <= region_start:
            raise InvalidArgument("empty free-space region")
        self.region_start = region_start
        self.region_end = region_end
        self._starts: List[int] = [region_start]
        self._lengths: List[int] = [region_end - region_start]

    # -- queries ---------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return sum(self._lengths)

    def runs(self) -> List[Run]:
        return list(zip(self._starts, self._lengths))

    def stats(self) -> FreeSpaceStats:
        return FreeSpaceStats(
            free_bytes=self.free_bytes,
            run_count=len(self._starts),
            largest_run=max(self._lengths, default=0),
        )

    def largest_run(self) -> int:
        return max(self._lengths, default=0)

    # -- allocation ------------------------------------------------------

    def alloc_contiguous(self, length: int, goal: Optional[int] = None) -> int:
        """Allocate one contiguous run of ``length`` bytes; returns start.

        Tries first-fit *at or after* ``goal`` (allocating mid-run when the
        goal falls inside a free run), then wraps around.  Raises
        :class:`NoSpaceError` when no single run is large enough.
        """
        self._check(length)
        order = self._search_order(goal)
        for position, idx in enumerate(order):
            start, run_len = self._starts[idx], self._lengths[idx]
            if (
                position == 0
                and goal is not None
                and start < goal < start + run_len
            ):
                # the goal sits inside this run: honour it exactly
                if start + run_len - goal >= length:
                    self.alloc_at(goal, length)
                    return goal
                # tail too small; the run stays eligible from its start
                # when the search wraps back around
                if run_len >= length and len(order) == 1:
                    return self._take(idx, length)
                continue
            if run_len >= length:
                return self._take(idx, length)
        # wrap-around retry for the pivot run we skipped above
        if goal is not None and order:
            idx = order[0]
            if idx < len(self._lengths) and self._lengths[idx] >= length:
                return self._take(idx, length)
        raise NoSpaceError(
            f"no contiguous run of {length} bytes (largest {self.largest_run()})"
        )

    def alloc(self, length: int, goal: Optional[int] = None) -> List[Run]:
        """Allocate ``length`` bytes, contiguous if possible.

        Falls back to stitching together multiple runs in *address order*
        from the goal (the way ext4 scans block groups) when no single run
        fits — this is how writing into fragmented free space yields a
        fragmented file whose pieces are hole-sized.
        """
        self._check(length)
        if self.free_bytes < length:
            raise NoSpaceError(f"only {self.free_bytes} bytes free, need {length}")
        try:
            start = self.alloc_contiguous(length, goal)
            return [(start, length)]
        except NoSpaceError:
            pass
        pieces: List[Run] = []
        remaining = length
        pivot = goal if goal is not None else self.region_start
        while remaining > 0:
            idx = bisect.bisect_left(self._starts, pivot)
            if idx >= len(self._starts):
                idx = 0  # wrap around
            take = min(self._lengths[idx], remaining)
            start = self._take(idx, take)
            pieces.append((start, take))
            pivot = start + take
            remaining -= take
        pieces.sort()
        return pieces

    def alloc_at(self, start: int, length: int) -> None:
        """Claim an exact range (used to replay known layouts).

        Raises :class:`NoSpaceError` if any part is already allocated.
        """
        self._check(length)
        idx = bisect.bisect_right(self._starts, start) - 1
        if idx < 0:
            raise NoSpaceError(f"range at {start} not free")
        run_start, run_len = self._starts[idx], self._lengths[idx]
        if start < run_start or start + length > run_start + run_len:
            raise NoSpaceError(f"range [{start}, {start + length}) not free")
        # split the run around the claimed range
        del self._starts[idx]
        del self._lengths[idx]
        if start > run_start:
            self._insert_run(run_start, start - run_start)
        tail = (run_start + run_len) - (start + length)
        if tail > 0:
            self._insert_run(start + length, tail)

    # -- release ---------------------------------------------------------

    def free(self, start: int, length: int) -> None:
        """Return a range to the pool, coalescing with neighbours."""
        self._check(length)
        if start < self.region_start or start + length > self.region_end:
            raise InvalidArgument(f"free outside region: [{start}, {start + length})")
        idx = bisect.bisect_left(self._starts, start)
        # guard against double free / overlap
        if idx > 0:
            prev_end = self._starts[idx - 1] + self._lengths[idx - 1]
            if prev_end > start:
                raise InvalidArgument(f"double free at {start}")
        if idx < len(self._starts) and start + length > self._starts[idx]:
            raise InvalidArgument(f"double free at {start}")
        self._starts.insert(idx, start)
        self._lengths.insert(idx, length)
        # coalesce with next
        if idx + 1 < len(self._starts) and start + length == self._starts[idx + 1]:
            self._lengths[idx] += self._lengths[idx + 1]
            del self._starts[idx + 1]
            del self._lengths[idx + 1]
        # coalesce with previous
        if idx > 0 and self._starts[idx - 1] + self._lengths[idx - 1] == start:
            self._lengths[idx - 1] += self._lengths[idx]
            del self._starts[idx]
            del self._lengths[idx]

    # -- internals -------------------------------------------------------

    def _take(self, idx: int, length: int) -> int:
        start = self._starts[idx]
        if self._lengths[idx] == length:
            del self._starts[idx]
            del self._lengths[idx]
        else:
            self._starts[idx] += length
            self._lengths[idx] -= length
        return start

    def _insert_run(self, start: int, length: int) -> None:
        idx = bisect.bisect_left(self._starts, start)
        self._starts.insert(idx, start)
        self._lengths.insert(idx, length)

    def _search_order(self, goal: Optional[int]) -> List[int]:
        if goal is None:
            return list(range(len(self._starts)))
        pivot = bisect.bisect_left(self._starts, goal)
        if pivot > 0 and self._starts[pivot - 1] + self._lengths[pivot - 1] > goal:
            pivot -= 1  # goal falls inside the previous run
        return list(range(pivot, len(self._starts))) + list(range(pivot))

    @staticmethod
    def _check(length: int) -> None:
        if length <= 0 or length % BLOCK_SIZE:
            raise InvalidArgument(f"bad allocation length {length}")

    def check_invariants(self) -> None:
        """Raise AssertionError on violated internal invariants."""
        prev_end = None
        for start, length in zip(self._starts, self._lengths):
            assert length > 0
            assert start >= self.region_start
            assert start + length <= self.region_end
            if prev_end is not None:
                assert start > prev_end, "runs not coalesced or overlapping"
            prev_end = start + length
