"""Per-inode extent maps: file offset -> device offset.

The extent map is the source of truth both for request splitting (a
syscall's byte range maps to as many disk ranges as it crosses extent
pieces) and for FIEMAP-based fragmentation checking.  All offsets and
lengths are byte values aligned to ``BLOCK_SIZE``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..constants import BLOCK_SIZE
from ..errors import InvalidArgument


@dataclass(frozen=True)
class Extent:
    """One contiguous mapping: ``length`` bytes of file data at
    ``file_offset`` living at device offset ``disk_offset``."""

    file_offset: int
    disk_offset: int
    length: int

    def __post_init__(self) -> None:
        for value, name in (
            (self.file_offset, "file_offset"),
            (self.disk_offset, "disk_offset"),
            (self.length, "length"),
        ):
            if value % BLOCK_SIZE != 0:
                raise InvalidArgument(f"extent {name}={value} not block aligned")
        if self.length <= 0:
            raise InvalidArgument("extent length must be positive")
        if self.file_offset < 0 or self.disk_offset < 0:
            raise InvalidArgument("extent offsets must be non-negative")

    @property
    def file_end(self) -> int:
        return self.file_offset + self.length

    @property
    def disk_end(self) -> int:
        return self.disk_offset + self.length

    def disk_at(self, file_offset: int) -> int:
        """Device offset backing ``file_offset`` (must lie inside)."""
        if not (self.file_offset <= file_offset < self.file_end):
            raise InvalidArgument(f"{file_offset} outside {self}")
        return self.disk_offset + (file_offset - self.file_offset)


#: One piece of a mapped range: (disk_offset or None for a hole, length).
MappedPiece = Tuple[Optional[int], int]


class ExtentMap:
    """Sorted, non-overlapping extents with hole support."""

    def __init__(self) -> None:
        self._extents: List[Extent] = []
        self._starts: List[int] = []

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    def extents(self) -> List[Extent]:
        return list(self._extents)

    @property
    def mapped_bytes(self) -> int:
        return sum(e.length for e in self._extents)

    def fragment_count(self) -> int:
        """Number of physically discontiguous pieces (filefrag's count).

        Adjacent extents that are also adjacent on disk count as one
        fragment, mirroring how filefrag reports merged extents.
        """
        count = 0
        prev: Optional[Extent] = None
        for extent in self._extents:
            contiguous = (
                prev is not None
                and prev.file_end == extent.file_offset
                and prev.disk_end == extent.disk_offset
            )
            if not contiguous:
                count += 1
            prev = extent
        return count

    def _index_for(self, file_offset: int) -> int:
        """Index of the first extent whose end is after ``file_offset``."""
        idx = bisect.bisect_right(self._starts, file_offset) - 1
        if idx >= 0 and self._extents[idx].file_end > file_offset:
            return idx
        return idx + 1

    def map_range(self, offset: int, length: int) -> List[MappedPiece]:
        """Resolve ``[offset, offset+length)`` to disk pieces and holes."""
        if length <= 0:
            return []
        pieces: List[MappedPiece] = []
        pos = offset
        end = offset + length
        idx = self._index_for(offset)
        while pos < end:
            if idx >= len(self._extents):
                pieces.append((None, end - pos))
                break
            extent = self._extents[idx]
            if extent.file_offset > pos:
                gap = min(extent.file_offset, end) - pos
                pieces.append((None, gap))
                pos += gap
                continue
            take = min(extent.file_end, end) - pos
            pieces.append((extent.disk_at(pos), take))
            pos += take
            idx += 1
        return pieces

    def disk_ranges(self, offset: int, length: int) -> List[Tuple[int, int]]:
        """Like :meth:`map_range` but holes removed."""
        return [(d, l) for d, l in self.map_range(offset, length) if d is not None]

    def is_fully_mapped(self, offset: int, length: int) -> bool:
        return all(d is not None for d, _ in self.map_range(offset, length))

    def holes(self, offset: int, length: int) -> List[Tuple[int, int]]:
        """Unmapped (file_offset, length) sub-ranges of the given range."""
        out = []
        pos = offset
        for disk, piece_len in self.map_range(offset, length):
            if disk is None:
                out.append((pos, piece_len))
            pos += piece_len
        return out

    # -- mutation --------------------------------------------------------

    def punch(self, offset: int, length: int) -> List[Extent]:
        """Remove mappings over ``[offset, offset+length)``.

        Returns the removed disk pieces so the caller can free the blocks.
        Extents straddling the boundary are split.  O(log n + k) for k
        affected extents.
        """
        self._check_aligned(offset, length)
        if length <= 0:
            return []
        end = offset + length
        first = self._index_for(offset)
        removed: List[Extent] = []
        kept_edges: List[Extent] = []
        last = first
        while last < len(self._extents) and self._extents[last].file_offset < end:
            extent = self._extents[last]
            cut_start = max(extent.file_offset, offset)
            cut_end = min(extent.file_end, end)
            if extent.file_offset < cut_start:
                kept_edges.append(
                    Extent(extent.file_offset, extent.disk_offset, cut_start - extent.file_offset)
                )
            removed.append(Extent(cut_start, extent.disk_at(cut_start), cut_end - cut_start))
            if cut_end < extent.file_end:
                kept_edges.append(
                    Extent(cut_end, extent.disk_at(cut_end), extent.file_end - cut_end)
                )
            last += 1
        if removed:
            self._extents[first:last] = kept_edges
            self._starts[first:last] = [e.file_offset for e in kept_edges]
        return removed

    def insert(self, extent: Extent) -> List[Extent]:
        """Map a new extent, replacing anything it overlaps.

        Returns the displaced disk pieces (the caller frees those blocks —
        this is how out-of-place filesystems retire old copies).  Merges
        with physically contiguous neighbours.
        """
        displaced = self.punch(extent.file_offset, extent.length)
        idx = bisect.bisect_left(self._starts, extent.file_offset)
        # coalesce with the previous neighbour
        if idx > 0:
            prev = self._extents[idx - 1]
            if prev.file_end == extent.file_offset and prev.disk_end == extent.disk_offset:
                extent = Extent(prev.file_offset, prev.disk_offset, prev.length + extent.length)
                idx -= 1
                del self._extents[idx]
                del self._starts[idx]
        # coalesce with the next neighbour
        if idx < len(self._extents):
            nxt = self._extents[idx]
            if extent.file_end == nxt.file_offset and extent.disk_end == nxt.disk_offset:
                extent = Extent(extent.file_offset, extent.disk_offset, extent.length + nxt.length)
                del self._extents[idx]
                del self._starts[idx]
        self._extents.insert(idx, extent)
        self._starts.insert(idx, extent.file_offset)
        return displaced

    def preceding(self, file_offset: int) -> Optional[Extent]:
        """The last extent ending at or before ``file_offset`` (O(log n))."""
        idx = bisect.bisect_right(self._starts, file_offset) - 1
        if idx >= 0 and self._extents[idx].file_end <= file_offset:
            return self._extents[idx]
        idx -= 1
        return self._extents[idx] if idx >= 0 else None

    @staticmethod
    def _check_aligned(offset: int, length: int) -> None:
        if offset % BLOCK_SIZE or length % BLOCK_SIZE:
            raise InvalidArgument(
                f"unaligned extent operation offset={offset} length={length}"
            )

    # -- invariants (used by property tests) ------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when internal invariants are violated."""
        prev_end = -1
        for extent in self._extents:
            assert extent.file_offset >= prev_end, "extents overlap or unsorted"
            prev_end = extent.file_end
        assert self._starts == [e.file_offset for e in self._extents]
