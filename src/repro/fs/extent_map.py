"""Per-inode extent maps: file offset -> device offset.

The extent map is the source of truth both for request splitting (a
syscall's byte range maps to as many disk ranges as it crosses extent
pieces) and for FIEMAP-based fragmentation checking.  All offsets and
lengths are byte values aligned to ``BLOCK_SIZE``.

Hot-path layout: :class:`Extent` is a ``NamedTuple`` (constructed per
split piece on every punch/insert) and interior alignment validation is
gated behind the module-level :data:`DEBUG_CHECKS` flag — offsets and
lengths are validated once at the syscall boundary, and the deep
``check_invariants()`` pass backs the property tests.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, NamedTuple, Optional, Tuple

from ..constants import BLOCK_SIZE
from ..errors import InvalidArgument

#: Enable interior argument validation on every punch/insert.  Off by
#: default: callers validate at the syscall boundary.  Property tests and
#: debugging sessions flip this on.
DEBUG_CHECKS = False


class Extent(NamedTuple):
    """One contiguous mapping: ``length`` bytes of file data at
    ``file_offset`` living at device offset ``disk_offset``.

    A ``NamedTuple`` rather than a dataclass: extents are re-created for
    every split piece on the punch/insert hot path and the tuple
    constructor is about twice as fast.  Use :meth:`validate` to check
    alignment invariants explicitly.
    """

    file_offset: int
    disk_offset: int
    length: int

    def validate(self) -> "Extent":
        for value, name in (
            (self.file_offset, "file_offset"),
            (self.disk_offset, "disk_offset"),
            (self.length, "length"),
        ):
            if value % BLOCK_SIZE != 0:
                raise InvalidArgument(f"extent {name}={value} not block aligned")
        if self.length <= 0:
            raise InvalidArgument("extent length must be positive")
        if self.file_offset < 0 or self.disk_offset < 0:
            raise InvalidArgument("extent offsets must be non-negative")
        return self

    @property
    def file_end(self) -> int:
        return self.file_offset + self.length

    @property
    def disk_end(self) -> int:
        return self.disk_offset + self.length

    def disk_at(self, file_offset: int) -> int:
        """Device offset backing ``file_offset`` (must lie inside)."""
        if not (self.file_offset <= file_offset < self.file_offset + self.length):
            raise InvalidArgument(f"{file_offset} outside {self}")
        return self.disk_offset + (file_offset - self.file_offset)


#: One piece of a mapped range: (disk_offset or None for a hole, length).
MappedPiece = Tuple[Optional[int], int]


class ExtentMap:
    """Sorted, non-overlapping extents with hole support."""

    __slots__ = ("_extents", "_starts", "_joints")

    def __init__(self) -> None:
        self._extents: List[Extent] = []
        self._starts: List[int] = []
        #: count of consecutive extent pairs that are contiguous in both
        #: file and disk space ("joints"); fragment_count is then O(1) as
        #: ``len(extents) - joints``.  Only :meth:`punch` moves it —
        #: :meth:`insert` cannot change it: a non-merged insertion has no
        #: joints to its neighbours (they would have been merged), and a
        #: merge absorbs exactly the joint it consumed.
        self._joints = 0

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    def extents(self) -> List[Extent]:
        return list(self._extents)

    @property
    def mapped_bytes(self) -> int:
        return sum(e.length for e in self._extents)

    def fragment_count(self) -> int:
        """Number of physically discontiguous pieces (filefrag's count).

        Adjacent extents that are also adjacent on disk count as one
        fragment, mirroring how filefrag reports merged extents.  O(1):
        the joint count is maintained incrementally by the mutators.
        """
        count = len(self._extents)
        return count - self._joints if count else 0

    def _index_for(self, file_offset: int) -> int:
        """Index of the first extent whose end is after ``file_offset``."""
        idx = bisect_right(self._starts, file_offset) - 1
        if idx >= 0 and self._extents[idx].file_end > file_offset:
            return idx
        return idx + 1

    def map_range(self, offset: int, length: int) -> List[MappedPiece]:
        """Resolve ``[offset, offset+length)`` to disk pieces and holes."""
        if length <= 0:
            return []
        pieces: List[MappedPiece] = []
        append = pieces.append
        pos = offset
        end = offset + length
        extents = self._extents
        count = len(extents)
        idx = self._index_for(offset)
        while pos < end:
            if idx >= count:
                append((None, end - pos))
                break
            file_offset, disk_offset, ext_len = extents[idx]
            if file_offset > pos:
                gap_end = file_offset if file_offset < end else end
                append((None, gap_end - pos))
                pos = gap_end
                continue
            file_end = file_offset + ext_len
            take_end = file_end if file_end < end else end
            append((disk_offset + (pos - file_offset), take_end - pos))
            pos = take_end
            idx += 1
        return pieces

    def disk_ranges(self, offset: int, length: int) -> List[Tuple[int, int]]:
        """Like :meth:`map_range` but holes removed."""
        return [(d, l) for d, l in self.map_range(offset, length) if d is not None]

    def is_fully_mapped(self, offset: int, length: int) -> bool:
        return all(d is not None for d, _ in self.map_range(offset, length))

    def holes(self, offset: int, length: int) -> List[Tuple[int, int]]:
        """Unmapped (file_offset, length) sub-ranges of the given range."""
        out = []
        pos = offset
        for disk, piece_len in self.map_range(offset, length):
            if disk is None:
                out.append((pos, piece_len))
            pos += piece_len
        return out

    # -- mutation --------------------------------------------------------

    def punch(self, offset: int, length: int) -> List[Extent]:
        """Remove mappings over ``[offset, offset+length)``.

        Returns the removed disk pieces so the caller can free the blocks.
        Extents straddling the boundary are split.  O(log n + k) for k
        affected extents.
        """
        if DEBUG_CHECKS:
            self._check_aligned(offset, length)
        if length <= 0:
            return []
        end = offset + length
        extents = self._extents
        count = len(extents)
        first = self._index_for(offset)
        removed: List[Extent] = []
        kept_edges: List[Extent] = []
        last = first
        while last < count and extents[last].file_offset < end:
            file_offset, disk_offset, ext_len = extents[last]
            file_end = file_offset + ext_len
            cut_start = file_offset if file_offset > offset else offset
            cut_end = file_end if file_end < end else end
            if file_offset < cut_start:
                kept_edges.append(
                    Extent(file_offset, disk_offset, cut_start - file_offset)
                )
            removed.append(
                Extent(cut_start, disk_offset + (cut_start - file_offset),
                       cut_end - cut_start)
            )
            if cut_end < file_end:
                kept_edges.append(
                    Extent(cut_end, disk_offset + (cut_end - file_offset),
                           file_end - cut_end)
                )
            last += 1
        if removed:
            # Joint accounting: only pairs touching the replaced slice
            # [first, last) can change.  Count them before and after.
            old_joints = 0
            for i in range(first if first > 0 else 1, last + 1 if last < count else last):
                af, ad, al = extents[i - 1]
                bf, bd, _ = extents[i]
                if af + al == bf and ad + al == bd:
                    old_joints += 1
            prev_extent = extents[first - 1] if first > 0 else None
            next_extent = extents[last] if last < count else None
            new_joints = 0
            if kept_edges:
                # kept edges are separated by the punched hole, so only
                # the two outer boundary pairs can possibly be joints
                if prev_extent is not None:
                    af, ad, al = prev_extent
                    bf, bd, _ = kept_edges[0]
                    if af + al == bf and ad + al == bd:
                        new_joints += 1
                if next_extent is not None:
                    af, ad, al = kept_edges[-1]
                    bf, bd, _ = next_extent
                    if af + al == bf and ad + al == bd:
                        new_joints += 1
            elif prev_extent is not None and next_extent is not None:
                af, ad, al = prev_extent
                bf, bd, _ = next_extent
                if af + al == bf and ad + al == bd:
                    new_joints += 1
            self._joints += new_joints - old_joints
            self._extents[first:last] = kept_edges
            self._starts[first:last] = [e.file_offset for e in kept_edges]
        return removed

    def insert(self, extent: Extent) -> List[Extent]:
        """Map a new extent, replacing anything it overlaps.

        Returns the displaced disk pieces (the caller frees those blocks —
        this is how out-of-place filesystems retire old copies).  Merges
        with physically contiguous neighbours.
        """
        if DEBUG_CHECKS:
            extent.validate()
        displaced = self.punch(extent.file_offset, extent.length)
        extents = self._extents
        starts = self._starts
        file_offset, disk_offset, length = extent
        idx = bisect_left(starts, file_offset)
        # coalesce with the previous neighbour
        if idx > 0:
            prev_file, prev_disk, prev_len = extents[idx - 1]
            if (prev_file + prev_len == file_offset
                    and prev_disk + prev_len == disk_offset):
                file_offset, disk_offset = prev_file, prev_disk
                length += prev_len
                idx -= 1
                del extents[idx]
                del starts[idx]
        # coalesce with the next neighbour
        if idx < len(extents):
            next_file, next_disk, next_len = extents[idx]
            if (file_offset + length == next_file
                    and disk_offset + length == next_disk):
                length += next_len
                del extents[idx]
                del starts[idx]
        extents.insert(idx, Extent(file_offset, disk_offset, length))
        starts.insert(idx, file_offset)
        return displaced

    def preceding(self, file_offset: int) -> Optional[Extent]:
        """The last extent ending at or before ``file_offset`` (O(log n))."""
        idx = bisect_right(self._starts, file_offset) - 1
        if idx >= 0 and self._extents[idx].file_end <= file_offset:
            return self._extents[idx]
        idx -= 1
        return self._extents[idx] if idx >= 0 else None

    @staticmethod
    def _check_aligned(offset: int, length: int) -> None:
        if offset % BLOCK_SIZE or length % BLOCK_SIZE:
            raise InvalidArgument(
                f"unaligned extent operation offset={offset} length={length}"
            )

    # -- invariants (used by property tests) ------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when internal invariants are violated."""
        prev_end = -1
        joints = 0
        prev_extent = None
        for extent in self._extents:
            extent.validate()
            assert extent.file_offset >= prev_end, "extents overlap or unsorted"
            if (prev_extent is not None
                    and prev_extent.file_end == extent.file_offset
                    and prev_extent.disk_end == extent.disk_offset):
                joints += 1
            prev_end = extent.file_end
            prev_extent = extent
        assert self._starts == [e.file_offset for e in self._extents]
        assert joints == self._joints, "incremental joint count out of sync"
