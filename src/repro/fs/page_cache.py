"""LRU page cache.

Buffered reads fill it, buffered writes dirty it, fsync/writeback cleans
it.  O_DIRECT bypasses it entirely (as in Linux).  Capacity is configurable
so experiments can model memory pressure; eviction of a dirty page reports
it to the caller for writeback.

Residency and dirtiness are indexed per inode so ``dirty_pages`` and
``invalidate_inode`` touch only that inode's pages instead of scanning
the whole cache; the LRU itself is an ``OrderedDict`` (O(1) hit/refresh).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

PageKey = Tuple[int, int]  # (ino, page index)


@dataclass
class PageCacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """LRU over (inode, page) keys with a per-inode dirty index."""

    def __init__(self, capacity_pages: int = 1 << 20) -> None:
        self.capacity_pages = capacity_pages
        self._lru: "OrderedDict[PageKey, None]" = OrderedDict()
        #: resident page indices per inode (invalidate without a full scan)
        self._by_ino: Dict[int, Set[int]] = {}
        #: dirty page indices per inode (dirty pages are always resident)
        self._dirty_by_ino: Dict[int, Set[int]] = {}
        self._dirty_total = 0
        self.stats = PageCacheStats()

    def __contains__(self, key: PageKey) -> bool:
        return key in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    # -- lookup ----------------------------------------------------------

    def probe(self, key: PageKey) -> bool:
        """Check residency and update LRU + hit/miss stats."""
        if key in self._lru:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    # -- population ------------------------------------------------------

    def fill(self, keys: Iterable[PageKey]) -> List[PageKey]:
        """Insert clean pages; returns dirty pages evicted to make room."""
        lru = self._lru
        by_ino = self._by_ino
        writeback: List[PageKey] = []
        for key in keys:
            if key in lru:
                lru.move_to_end(key)
            else:
                lru[key] = None
                ino, page = key
                resident = by_ino.get(ino)
                if resident is None:
                    resident = by_ino[ino] = set()
                resident.add(page)
        capacity = self.capacity_pages
        while len(lru) > capacity:
            victim, _ = lru.popitem(last=False)
            ino, page = victim
            self._forget_resident(ino, page)
            dirty = self._dirty_by_ino.get(ino)
            if dirty is not None and page in dirty:
                dirty.discard(page)
                if not dirty:
                    del self._dirty_by_ino[ino]
                self._dirty_total -= 1
                writeback.append(victim)
        return writeback

    def mark_dirty(self, keys: Iterable[PageKey]) -> List[PageKey]:
        """Insert/refresh pages as dirty; returns evicted dirty pages."""
        keys = list(keys)
        dirty_by_ino = self._dirty_by_ino
        for ino, page in keys:
            dirty = dirty_by_ino.get(ino)
            if dirty is None:
                dirty = dirty_by_ino[ino] = set()
            if page not in dirty:
                dirty.add(page)
                self._dirty_total += 1
        return self.fill(keys)

    # -- writeback -------------------------------------------------------

    def dirty_pages(self, ino: int) -> List[int]:
        """Sorted dirty page indices of one inode."""
        return sorted(self._dirty_by_ino.get(ino, ()))

    def clean(self, ino: int, pages: Iterable[int]) -> None:
        dirty = self._dirty_by_ino.get(ino)
        if dirty is None:
            return
        for page in pages:
            if page in dirty:
                dirty.discard(page)
                self._dirty_total -= 1
        if not dirty:
            del self._dirty_by_ino[ino]

    def invalidate_inode(self, ino: int) -> None:
        """Drop every page of an inode (unlink / O_DIRECT coherence)."""
        resident = self._by_ino.pop(ino, None)
        if resident:
            lru = self._lru
            for page in resident:
                del lru[(ino, page)]
        dirty = self._dirty_by_ino.pop(ino, None)
        if dirty:
            self._dirty_total -= len(dirty)

    def dirty_count(self) -> int:
        return self._dirty_total

    def drop_clean(self) -> int:
        """Evict every clean page (``drop_caches``); returns count dropped."""
        dirty_by_ino = self._dirty_by_ino
        doomed = [
            (ino, page)
            for ino, page in self._lru
            if page not in dirty_by_ino.get(ino, ())
        ]
        lru = self._lru
        for key in doomed:
            del lru[key]
            self._forget_resident(key[0], key[1])
        return len(doomed)

    def _forget_resident(self, ino: int, page: int) -> None:
        resident = self._by_ino.get(ino)
        if resident is not None:
            resident.discard(page)
            if not resident:
                del self._by_ino[ino]
