"""LRU page cache.

Buffered reads fill it, buffered writes dirty it, fsync/writeback cleans
it.  O_DIRECT bypasses it entirely (as in Linux).  Capacity is configurable
so experiments can model memory pressure; eviction of a dirty page reports
it to the caller for writeback.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

PageKey = Tuple[int, int]  # (ino, page index)


@dataclass
class PageCacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """LRU over (inode, page) keys with a dirty set."""

    def __init__(self, capacity_pages: int = 1 << 20) -> None:
        self.capacity_pages = capacity_pages
        self._lru: "OrderedDict[PageKey, None]" = OrderedDict()
        self._dirty: Set[PageKey] = set()
        self.stats = PageCacheStats()

    def __contains__(self, key: PageKey) -> bool:
        return key in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    # -- lookup ----------------------------------------------------------

    def probe(self, key: PageKey) -> bool:
        """Check residency and update LRU + hit/miss stats."""
        if key in self._lru:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    # -- population ------------------------------------------------------

    def fill(self, keys: Iterable[PageKey]) -> List[PageKey]:
        """Insert clean pages; returns dirty pages evicted to make room."""
        writeback: List[PageKey] = []
        for key in keys:
            self._lru[key] = None
            self._lru.move_to_end(key)
        while len(self._lru) > self.capacity_pages:
            victim, _ = self._lru.popitem(last=False)
            if victim in self._dirty:
                self._dirty.discard(victim)
                writeback.append(victim)
        return writeback

    def mark_dirty(self, keys: Iterable[PageKey]) -> List[PageKey]:
        """Insert/refresh pages as dirty; returns evicted dirty pages."""
        keys = list(keys)
        self._dirty.update(keys)
        return self.fill(keys)

    # -- writeback -------------------------------------------------------

    def dirty_pages(self, ino: int) -> List[int]:
        """Sorted dirty page indices of one inode."""
        return sorted(page for (i, page) in self._dirty if i == ino)

    def clean(self, ino: int, pages: Iterable[int]) -> None:
        for page in pages:
            self._dirty.discard((ino, page))

    def invalidate_inode(self, ino: int) -> None:
        """Drop every page of an inode (unlink / O_DIRECT coherence)."""
        doomed = [key for key in self._lru if key[0] == ino]
        for key in doomed:
            del self._lru[key]
            self._dirty.discard(key)

    def dirty_count(self) -> int:
        return len(self._dirty)

    def drop_clean(self) -> int:
        """Evict every clean page (``drop_caches``); returns count dropped."""
        doomed = [key for key in self._lru if key not in self._dirty]
        for key in doomed:
            del self._lru[key]
        return len(doomed)
