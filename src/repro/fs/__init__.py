"""Simulated filesystems: Ext4-, F2FS-, and Btrfs-flavoured personalities.

Everything FragPicker needs from a real filesystem is implemented here with
the same contracts as Linux:

- extent maps queryable via FIEMAP (:mod:`repro.fs.fiemap`),
- ``fallocate`` allocate / punch-hole,
- a page cache with 128 KiB readahead for buffered I/O, bypassed by
  O_DIRECT,
- per-personality update policy: Ext4 updates in place, F2FS appends to a
  log (with an IPU sysfs knob), Btrfs copies on write.
"""

from .extent_map import Extent, ExtentMap
from .free_space import FreeSpaceManager
from .inode import Inode
from .page_cache import PageCache
from .readahead import ReadaheadState
from .base import Filesystem, FileHandle, SyscallResult, FallocMode
from .ext4 import Ext4
from .f2fs import F2fs
from .btrfs import Btrfs
from .fiemap import fiemap, fragment_count, FiemapExtent
from .mount import make_filesystem, FS_TYPES

__all__ = [
    "Extent",
    "ExtentMap",
    "FreeSpaceManager",
    "Inode",
    "PageCache",
    "ReadaheadState",
    "Filesystem",
    "FileHandle",
    "SyscallResult",
    "FallocMode",
    "Ext4",
    "F2fs",
    "Btrfs",
    "fiemap",
    "fragment_count",
    "FiemapExtent",
    "make_filesystem",
    "FS_TYPES",
]
