"""F2FS-flavoured filesystem: log-structured, out-of-place updates.

All writes are appended at the log head, carving 2 MiB segments out of the
free pool.  Overwriting data therefore *moves* it — which is exactly why
FragPicker can defragment F2FS by simply rewriting data at the same file
offset.  The ``ipu`` sysfs knob enables in-place updates (F2FS does this to
limit cleaning cost); FragPicker disables it around migration
(Section 5.1).

A segment cleaner is included (:meth:`F2fs.clean_segments`): it picks the
segment-aligned victim windows with the least live data, relocates their
live extents to the log head, and returns whole free segments to the pool
— the foreground/background GC of a log-structured filesystem, and the
mechanism the paper's related work (AALFS [50]) piggybacks
defragmentation on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..constants import MIB
from ..block.request import IoOp
from ..block.splitter import split_ranges
from ..errors import NoSpaceError
from .base import Filesystem
from .extent_map import Extent
from .inode import Inode

SEGMENT_SIZE = 2 * MIB

#: sysfs knob name, mirroring /sys/fs/f2fs/<dev>/ipu_policy
IPU_KNOB = "ipu_policy"


class F2fs(Filesystem):
    """Log-structured personality with an in-place-update knob."""

    fs_type = "f2fs"
    in_place_updates = False  # default policy; see sysfs knob

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # F2FS ships with an adaptive IPU policy: overwrites of mapped data
        # may go in place to limit segment-cleaning cost (Section 5.1's
        # reason FragPicker must toggle this knob around migration).
        self.sysfs.setdefault(IPU_KNOB, "1")
        self._log_start: Optional[int] = None
        self._log_remaining = 0

    # -- policy ------------------------------------------------------------

    @property
    def ipu_enabled(self) -> bool:
        return self.sysfs.get(IPU_KNOB, "0") != "0"

    def set_ipu(self, enabled: bool) -> None:
        self.sysfs[IPU_KNOB] = "1" if enabled else "0"

    # -- allocation ----------------------------------------------------------

    def _allocate_write(self, inode: Inode, offset: int, length: int) -> List[Tuple[int, int]]:
        if self.ipu_enabled and inode.extent_map.is_fully_mapped(offset, length):
            return inode.extent_map.disk_ranges(offset, length)
        ranges: List[Tuple[int, int]] = []
        pos = offset
        remaining = length
        while remaining > 0:
            run_start, run_len = self._log_take(remaining)
            displaced = inode.extent_map.insert(Extent(pos, run_start, run_len))
            for old in displaced:
                self.free_space.free(old.disk_offset, old.length)
            ranges.append((run_start, run_len))
            pos += run_len
            remaining -= run_len
        return ranges

    def _log_take(self, length: int) -> Tuple[int, int]:
        """Carve the next piece from the active log segment."""
        if self._log_remaining == 0:
            self._open_segment()
        take = min(length, self._log_remaining)
        start = self._log_start
        self._log_start += take
        self._log_remaining -= take
        return start, take

    # -- segment cleaning ----------------------------------------------------

    def clean_segments(self, count: int = 1, now: float = 0.0) -> Tuple[float, int]:
        """Relocate live data out of the emptiest segment windows.

        Greedy victim selection: the segment-aligned windows with the most
        free bytes (least live data) are compacted first.  Live extents
        are read and appended at the log head (real device I/O, tagged
        ``"gc"``); afterwards each victim window is one whole free
        segment.  Returns ``(finish_time, segments_cleaned)``.
        """
        start = now
        cleaned = 0
        for _ in range(count):
            window = self._pick_victim_window()
            if window is None:
                break
            now = self._compact_window(window, now)
            cleaned += 1
        if self.obs.enabled and cleaned:
            # the GC ioctl surface: its elapsed time joins the measured
            # total so the gc traffic's block/device slices stay balanced
            self.obs.syscall("gc", now - start)
        return now, cleaned

    def _segment_free_bytes(self) -> Dict[int, int]:
        """Free bytes per segment-aligned window (partial windows only)."""
        per_segment: Dict[int, int] = {}
        for start, length in self.free_space.runs():
            pos = start
            end = start + length
            while pos < end:
                segment = pos // SEGMENT_SIZE
                take = min((segment + 1) * SEGMENT_SIZE, end) - pos
                per_segment[segment] = per_segment.get(segment, 0) + take
                pos += take
        return per_segment

    def _pick_victim_window(self) -> Optional[int]:
        """The dirtiest (most-free, not fully-free) segment window."""
        active = (
            self._log_start // SEGMENT_SIZE if self._log_remaining else None
        )
        best = None
        best_free = 0
        for segment, free in self._segment_free_bytes().items():
            if free >= SEGMENT_SIZE or segment == active:
                continue  # already clean, or the live log head
            if free > best_free:
                best, best_free = segment, free
        return best

    def _compact_window(self, segment: int, now: float) -> float:
        """Move every live extent out of the window, then free it whole."""
        window_start = segment * SEGMENT_SIZE
        window_end = window_start + SEGMENT_SIZE
        # never relocate *into* the victim: park the log head past it
        log_end = (self._log_start or 0) + self._log_remaining
        overlaps_victim = (
            self._log_remaining > 0
            and self._log_start < window_end
            and log_end > window_start
        )
        if overlaps_victim:
            self.free_space.free(self._log_start, self._log_remaining)
            self._log_remaining = 0
        if self._log_remaining == 0:
            self._log_start = window_end

        for inode in list(self.inodes.values()):
            victims = [
                extent
                for extent in inode.extent_map.extents()
                if extent.disk_offset < window_end and extent.disk_end > window_start
            ]
            for extent in victims:
                lo = max(extent.disk_offset, window_start)
                hi = min(extent.disk_end, window_end)
                file_lo = extent.file_offset + (lo - extent.disk_offset)
                length = hi - lo
                # read the live data, append it at the log head
                read_cmds = split_ranges(IoOp.READ, [(lo, length)], tag="gc")
                now = self.scheduler.submit(read_cmds, now).finish_time
                ranges: List[Tuple[int, int]] = []
                pos = file_lo
                remaining = length
                while remaining > 0:
                    run_start, run_len = self._log_take(remaining)
                    displaced = inode.extent_map.insert(Extent(pos, run_start, run_len))
                    for old in displaced:
                        self.free_space.free(old.disk_offset, old.length)
                    ranges.append((run_start, run_len))
                    pos += run_len
                    remaining -= run_len
                write_cmds = split_ranges(IoOp.WRITE, ranges, tag="gc")
                now = self.scheduler.submit(write_cmds, now).finish_time
        self._meta_dirty = True
        return now

    def _open_segment(self) -> None:
        """Advance the log head to a fresh segment.

        Prefers a clean 2 MiB run after the current head (sequential
        logging); under fragmented free space falls back to the largest
        available run — F2FS's SSR-style degraded logging.
        """
        goal = self._log_start if self._log_start is not None else None
        try:
            start = self.free_space.alloc_contiguous(SEGMENT_SIZE, goal=goal)
            self._log_start, self._log_remaining = start, SEGMENT_SIZE
            return
        except NoSpaceError:
            pass
        runs = self.free_space.alloc(min(SEGMENT_SIZE, self.free_space.largest_run()) or SEGMENT_SIZE, goal=goal)
        # alloc() stitched runs; keep the first as the active segment and
        # return the rest (logging wants one contiguous window).
        start, run_len = runs[0]
        for extra_start, extra_len in runs[1:]:
            self.free_space.free(extra_start, extra_len)
        self._log_start, self._log_remaining = start, run_len
