"""Sequential-read detection and the 128 KiB readahead window.

Mirrors the Linux on-demand readahead behaviour the paper depends on twice:

- buffered sequential reads are fetched in readahead-window chunks, so even
  a 32 KiB-per-call ``grep`` produces 128 KiB device requests — one per
  window, with the intermediate calls served from the page cache
  (Section 5.4), and
- FragPicker's analysis phase *imitates* this logic because it observes
  syscalls above the VFS, where readahead has not happened yet
  (Section 4.1.1/4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import READAHEAD_SIZE, block_align_down, block_align_up


@dataclass(frozen=True)
class ReadPlan:
    """Block-aligned fetch decision for one buffered read.

    The fetch range always covers the requested bytes; pages already
    resident are filtered out by the page-cache probe, so a read inside a
    previously fetched window costs no device I/O.
    """

    fetch_start: int
    fetch_end: int
    sequential: bool

    @property
    def length(self) -> int:
        return self.fetch_end - self.fetch_start


@dataclass
class ReadaheadState:
    """Per-open-file sequential detector and readahead window."""

    window_size: int = READAHEAD_SIZE
    _next_expected: int = -1
    _window_end: int = 0

    def is_sequential(self, offset: int) -> bool:
        return offset == self._next_expected or (self._next_expected < 0 and offset == 0)

    def plan(self, offset: int, length: int, file_size: int) -> ReadPlan:
        """Decide what to fetch for a buffered read of ``[offset, offset+length)``.

        Sequential streams extend the window a full ``window_size`` past the
        point the stream has reached; random reads fetch only the aligned
        requested range and reset the window.
        """
        sequential = self.is_sequential(offset)
        req_start = block_align_down(offset)
        req_end = block_align_up(offset + length)
        if sequential and req_end > self._window_end:
            fetch_end = max(req_end, max(req_start, self._window_end) + self.window_size)
            self._window_end = fetch_end
        elif sequential:
            fetch_end = req_end  # inside the window: page-cache territory
        else:
            fetch_end = req_end
            self._window_end = req_end
        if file_size > 0:
            fetch_end = min(fetch_end, block_align_up(file_size))
        fetch_end = max(fetch_end, req_start)
        self._next_expected = offset + length
        return ReadPlan(req_start, fetch_end, sequential)
