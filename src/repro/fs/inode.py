"""Inodes and the in-memory page store.

The page store keeps *logical* file content keyed by (inode, page index):
content is a property of the file offset, not the disk location, so data
migration only rewrites the extent map while the accounting layers observe
the real read/write traffic.  Pages written without explicit bytes (bulk
workloads) are content-free and read back as zeros.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..constants import BLOCK_SIZE
from .extent_map import ExtentMap


@dataclass
class Inode:
    """One file."""

    ino: int
    path: str
    size: int = 0
    extent_map: ExtentMap = field(default_factory=ExtentMap)
    nlink: int = 1
    #: exclusive lock holder tag (FragPicker migration); None when unlocked
    lock_holder: Optional[str] = None

    def fragment_count(self) -> int:
        return self.extent_map.fragment_count()


class PageStore:
    """Sparse logical content, 4 KiB pages."""

    def __init__(self) -> None:
        self._pages: Dict[int, Dict[int, bytes]] = {}

    def write(self, ino: int, offset: int, data: bytes) -> None:
        """Store real bytes at a file offset (any alignment)."""
        pages = self._pages.setdefault(ino, {})
        pos = 0
        while pos < len(data):
            page = (offset + pos) // BLOCK_SIZE
            page_off = (offset + pos) % BLOCK_SIZE
            take = min(BLOCK_SIZE - page_off, len(data) - pos)
            current = pages.get(page, b"\x00" * BLOCK_SIZE)
            pages[page] = current[:page_off] + data[pos : pos + take] + current[page_off + take :]
            pos += take

    def read(self, ino: int, offset: int, length: int) -> bytes:
        """Read back bytes; unwritten regions are zeros."""
        pages = self._pages.get(ino, {})
        out = bytearray()
        pos = 0
        while pos < length:
            page = (offset + pos) // BLOCK_SIZE
            page_off = (offset + pos) % BLOCK_SIZE
            take = min(BLOCK_SIZE - page_off, length - pos)
            content = pages.get(page)
            if content is None:
                out.extend(b"\x00" * take)
            else:
                out.extend(content[page_off : page_off + take])
            pos += take
        return bytes(out)

    def any_content(self, ino: int, offset: int, length: int) -> bool:
        """True when any page in the range holds stored bytes."""
        pages = self._pages.get(ino)
        if not pages:
            return False
        first = offset // BLOCK_SIZE
        last = (offset + length - 1) // BLOCK_SIZE
        if last - first + 1 < len(pages):
            return any(page in pages for page in range(first, last + 1))
        return any(first <= page <= last for page in pages)

    def zero_range(self, ino: int, offset: int, length: int) -> None:
        """Drop content (punch-hole semantics: reads return zeros)."""
        pages = self._pages.get(ino)
        if not pages:
            return
        first = offset // BLOCK_SIZE
        last = (offset + length - 1) // BLOCK_SIZE
        for page in range(first, last + 1):
            page_start = page * BLOCK_SIZE
            page_end = page_start + BLOCK_SIZE
            if offset <= page_start and page_end <= offset + length:
                pages.pop(page, None)
            elif page in pages:
                lo = max(offset, page_start) - page_start
                hi = min(offset + length, page_end) - page_start
                content = pages[page]
                pages[page] = content[:lo] + b"\x00" * (hi - lo) + content[hi:]

    def drop(self, ino: int) -> None:
        self._pages.pop(ino, None)
