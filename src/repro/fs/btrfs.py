"""Btrfs-flavoured filesystem: copy-on-write updates.

Every write — new data or update — allocates fresh extents (first-fit with
a locality goal) and releases the old copy afterwards.  Consequently
rewriting a file at the same offsets relocates it, and fragmentation does
not affect *update* performance (the new blocks land wherever the
allocator says, regardless of how the old ones were laid out) — the
Section 5.2.1 Btrfs result.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Filesystem
from .inode import Inode


class Btrfs(Filesystem):
    """Copy-on-write personality."""

    fs_type = "btrfs"
    in_place_updates = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._last_alloc_end: int = 0

    def _allocate_write(self, inode: Inode, offset: int, length: int) -> List[Tuple[int, int]]:
        goal = self._last_alloc_end or None
        ranges = self._map_new_blocks(inode, offset, length, goal)
        if ranges:
            self._last_alloc_end = ranges[-1][0] + ranges[-1][1]
        return ranges
