"""mkfs + mount in one call."""

from __future__ import annotations

from typing import Dict, Type

from ..device.base import StorageDevice
from ..errors import InvalidArgument
from .base import Filesystem
from .btrfs import Btrfs
from .ext4 import Ext4
from .f2fs import F2fs

FS_TYPES: Dict[str, Type[Filesystem]] = {
    "ext4": Ext4,
    "f2fs": F2fs,
    "btrfs": Btrfs,
}


def make_filesystem(fs_type: str, device: StorageDevice, **kwargs) -> Filesystem:
    """Create a fresh filesystem of the given personality on ``device``."""
    try:
        cls = FS_TYPES[fs_type]
    except KeyError:
        raise InvalidArgument(
            f"unknown filesystem {fs_type!r}; choose from {sorted(FS_TYPES)}"
        ) from None
    return cls(device, **kwargs)
