"""The filesystem base class and its syscall surface.

This is the VFS + generic-filesystem layer of the stack.  It owns:

- the namespace (paths, inodes) and per-file extent maps,
- the page cache and readahead for buffered I/O, bypassed by O_DIRECT,
- ``fallocate`` (allocate / punch-hole) with Linux's block-alignment
  semantics,
- syscall monitoring hooks — the attachment point for the eBPF-style
  tracer FragPicker uses,
- journaled metadata write accounting.

Subclasses (:class:`~repro.fs.ext4.Ext4`, :class:`~repro.fs.f2fs.F2fs`,
:class:`~repro.fs.btrfs.Btrfs`) only decide *where writes land*: in place,
at the log head, or copy-on-write.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..block.request import IoCommand, IoOp
from ..block.scheduler import BlockScheduler, SubmitResult
from ..block.splitter import split_ranges
from ..block.tracer import BlockTracer
from ..constants import (
    BLOCK_SIZE,
    MIB,
    block_align_down,
    block_align_up,
)
from ..device.base import StorageDevice
from ..faults import hooks as fault_hooks
from ..obs import hooks as obs_hooks
from ..errors import (
    DeviceIOError,
    FileExists,
    FileLocked,
    FileNotFound,
    FilesystemError,
    InjectedCrash,
    InvalidArgument,
    TornWriteError,
)
from .extent_map import Extent
from .free_space import FreeSpaceManager
from .inode import Inode, PageStore
from .page_cache import PageCache
from .readahead import ReadaheadState


class FallocMode(enum.Enum):
    ALLOCATE = "allocate"
    PUNCH_HOLE = "punch_hole"


@dataclass(frozen=True)
class SyscallEvent:
    """What the syscall-layer monitor (eBPF equivalent) observes."""

    op: str            # "read" | "write"
    app: str
    ino: int
    path: str
    offset: int
    size: int
    o_direct: bool
    time: float


@dataclass(frozen=True)
class SyscallResult:
    """Outcome of one syscall."""

    finish_time: float
    latency: float
    requests: int          # block-layer commands this call generated
    bytes_transferred: int
    data: Optional[bytes] = None


class FileHandle:
    """An open file descriptor."""

    def __init__(self, fs: "Filesystem", ino: int, o_direct: bool, app: str) -> None:
        self.fs = fs
        self.ino = ino
        self.o_direct = o_direct
        self.app = app
        self.readahead = ReadaheadState()

    @property
    def path(self) -> str:
        return self.fs.inode(self.ino).path

    @property
    def size(self) -> int:
        return self.fs.inode(self.ino).size


@dataclass(frozen=True)
class FsCosts:
    """Host-side CPU cost knobs."""

    syscall_overhead: float = 0.0000015
    memcpy_rate: float = 6e9          # page-cache copy, bytes/sec
    journal_record_bytes: int = 8192  # one metadata transaction
    #: per-syscall cost of one attached eBPF probe (the paper measured the
    #: analysis phase at <2% overhead on Optane)
    monitor_overhead: float = 0.0000012


class Filesystem(abc.ABC):
    """Abstract filesystem over one device."""

    #: filesystem type name ("ext4" / "f2fs" / "btrfs")
    fs_type: str = "abstract"

    def __init__(
        self,
        device: StorageDevice,
        kernel_overhead_per_request: float = 0.000003,
        page_cache_pages: int = 1 << 20,
        journaling: bool = True,
        metadata_region: int = 64 * MIB,
        costs: Optional[FsCosts] = None,
        tracer: Optional[BlockTracer] = None,
    ) -> None:
        self.device = device
        #: observability facade (captured at mount time; a null object —
        #: one attribute lookup per syscall — unless obs is enabled)
        self.obs = obs_hooks.current()
        #: fault plane (same pattern: null object unless a plan is armed)
        self.faults = fault_hooks.current()
        # pre-resolved sentinels: with null planes the syscall paths skip
        # facade dispatch (and event construction) entirely
        self._observing = self.obs.enabled
        self._faulting = self.faults.enabled
        # causal tracing armed: mint a provenance id per layer-crossing
        # syscall; only consulted inside _observing-guarded paths
        self._tracing = self._observing and self.obs.provenance is not None
        self.scheduler = BlockScheduler(
            device, kernel_overhead_per_request, tracer=tracer
        )
        self.tracer = self.scheduler.tracer
        if metadata_region >= device.capacity:
            raise InvalidArgument("metadata region exceeds device capacity")
        self.metadata_region = metadata_region
        self.free_space = FreeSpaceManager(metadata_region, block_align_down(device.capacity))
        self.page_store = PageStore()
        self.page_cache = PageCache(page_cache_pages)
        self.journaling = journaling
        self.costs = costs if costs is not None else FsCosts()
        self.inodes: Dict[int, Inode] = {}
        self.paths: Dict[str, int] = {}
        self._next_ino = 1
        self._journal_head = 0
        self._meta_dirty = False
        self._monitors: List[Callable[[SyscallEvent], None]] = []
        self._probe_cost = 0.0  # maintained by attach/detach_monitor
        #: sysfs-like tunables (e.g. F2FS's inplace-update policy knob)
        self.sysfs: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------

    def create(self, path: str) -> Inode:
        """Create an empty file."""
        if path in self.paths:
            raise FileExists(path)
        ino = self._next_ino
        self._next_ino += 1
        inode = Inode(ino=ino, path=path)
        self.inodes[ino] = inode
        self.paths[path] = ino
        return inode

    def open(self, path: str, o_direct: bool = False, app: str = "app", create: bool = False) -> FileHandle:
        if path not in self.paths:
            if not create:
                raise FileNotFound(path)
            self.create(path)
        return FileHandle(self, self.paths[path], o_direct, app)

    def exists(self, path: str) -> bool:
        return path in self.paths

    def inode(self, ino: int) -> Inode:
        try:
            return self.inodes[ino]
        except KeyError:
            raise FileNotFound(f"inode {ino}") from None

    def inode_of(self, path: str) -> Inode:
        try:
            return self.inodes[self.paths[path]]
        except KeyError:
            raise FileNotFound(path) from None

    def listdir(self, prefix: str) -> List[str]:
        """All file paths under a directory prefix, sorted."""
        if not prefix.endswith("/"):
            prefix += "/"
        return sorted(p for p in self.paths if p.startswith(prefix))

    def unlink(self, path: str, now: float = 0.0) -> SyscallResult:
        """Delete a file, returning its blocks to the free pool."""
        inode = self.inode_of(path)
        for extent in inode.extent_map.extents():
            self.free_space.free(extent.disk_offset, extent.length)
        self.page_store.drop(inode.ino)
        self.page_cache.invalidate_inode(inode.ino)
        del self.paths[path]
        del self.inodes[inode.ino]
        self._meta_dirty = True
        finish = now + self.costs.syscall_overhead
        if self._observing:
            self.obs.syscall("unlink", finish - now)
            self.obs.fs_cpu(finish - now)
        return SyscallResult(finish, finish - now, 0, 0)

    # ------------------------------------------------------------------
    # monitoring (the eBPF/BCC attachment point)
    # ------------------------------------------------------------------

    def attach_monitor(self, probe: Callable[[SyscallEvent], None]) -> None:
        self._monitors.append(probe)
        # extra syscall latency while eBPF probes are attached
        self._probe_cost = self.costs.monitor_overhead * len(self._monitors)

    def detach_monitor(self, probe: Callable[[SyscallEvent], None]) -> None:
        self._monitors.remove(probe)
        self._probe_cost = self.costs.monitor_overhead * len(self._monitors)

    def _emit(self, event: SyscallEvent) -> None:
        for probe in self._monitors:
            probe(event)

    # ------------------------------------------------------------------
    # fault injection (the repro.faults attachment point)
    # ------------------------------------------------------------------

    def _fault_syscall(self, op: str, inode: Inode, offset: int, length: int, now: float):
        """Consult the fault plane at syscall entry (site ``fs.<op>``).

        Raises for ``io_error``/``crash`` fires, advances ``now`` for
        latency fires, and returns ``(now, fire)`` where ``fire`` is
        non-None only for a torn write the caller must enact.
        """
        fire = self.faults.check(f"fs.{op}", op=op, offset=offset, length=length, now=now)
        if fire is None:
            return now, None
        if fire.kind == "io_error":
            raise DeviceIOError(f"injected EIO during {op} of {inode.path}")
        if fire.kind == "crash":
            raise InjectedCrash(f"injected power-off during {op} of {inode.path}")
        if fire.kind == "latency":
            stall = (
                fire.latency if fire.latency is not None
                else self.device.fault_latency_spike
            )
            return now + stall, None
        return now, fire  # torn: the write path tears the data itself

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def read(
        self,
        handle: FileHandle,
        offset: int,
        length: int,
        now: float = 0.0,
        want_data: bool = False,
    ) -> SyscallResult:
        """``pread(2)``: buffered (with readahead) or O_DIRECT."""
        inode = self.inode(handle.ino)
        length = max(0, min(length, inode.size - offset))
        if self._monitors:
            self._emit(
                SyscallEvent("read", handle.app, inode.ino, inode.path, offset, length, handle.o_direct, now)
            )
        if self._faulting:
            now, _ = self._fault_syscall("read", inode, offset, length, now)
        if length == 0:
            finish = now + self.costs.syscall_overhead
            return SyscallResult(finish, finish - now, 0, 0, b"" if want_data else None)
        entry_time = now
        now += self._probe_cost
        pid = self.obs.provenance.mint() if self._tracing else 0
        if handle.o_direct:
            result = self._read_direct(handle, inode, offset, length, now, pid)
        else:
            result = self._read_buffered(handle, inode, offset, length, now, pid)
        data = self.page_store.read(inode.ino, offset, length) if want_data else None
        if self._observing:
            self.obs.syscall("read", result.finish_time - entry_time)
            self.obs.fs_cpu(self._probe_cost)
            if pid:
                self.obs.provenance.syscall(
                    pid, "read", app=handle.app, path=inode.path,
                    ino=inode.ino, offset=offset, size=length,
                    start=entry_time, end=result.finish_time,
                    requests=result.requests,
                )
        return SyscallResult(
            result.finish_time,
            result.finish_time - entry_time,
            result.requests,
            result.bytes_transferred,
            data,
        )

    def _read_direct(self, handle: FileHandle, inode: Inode, offset: int, length: int, now: float, pid: int = 0) -> SyscallResult:
        if offset % BLOCK_SIZE or length % BLOCK_SIZE:
            # Linux O_DIRECT requires logical-block alignment.
            raise InvalidArgument(f"O_DIRECT read misaligned: offset={offset} length={length}")
        ranges = inode.extent_map.disk_ranges(offset, length)
        commands = split_ranges(IoOp.READ, ranges, tag=handle.app, pid=pid)
        submit = self.scheduler.submit(commands, now)
        finish = max(submit.finish_time, now) + self.costs.syscall_overhead
        if self._observing:
            self.obs.fs_cpu(self.costs.syscall_overhead)
        return SyscallResult(finish, finish - now, submit.commands, length)

    def _read_buffered(self, handle: FileHandle, inode: Inode, offset: int, length: int, now: float, pid: int = 0) -> SyscallResult:
        plan = handle.readahead.plan(offset, length, inode.size)
        first_page = plan.fetch_start // BLOCK_SIZE
        last_page = max(first_page, (plan.fetch_end - 1) // BLOCK_SIZE)
        missing: List[int] = []
        for page in range(first_page, last_page + 1):
            if not self.page_cache.probe((inode.ino, page)):
                missing.append(page)
        requests = 0
        finish = now
        if missing:
            ranges: List[Tuple[int, int]] = []
            for run_start, run_len in _page_runs(missing):
                ranges.extend(
                    inode.extent_map.disk_ranges(run_start * BLOCK_SIZE, run_len * BLOCK_SIZE)
                )
            commands = split_ranges(IoOp.READ, ranges, tag=handle.app, pid=pid)
            submit = self.scheduler.submit(commands, now)
            requests = submit.commands
            finish = max(finish, submit.finish_time)
            evicted = self.page_cache.fill((inode.ino, page) for page in missing)
            if evicted:
                # eviction writeback is causally this read's fault: the
                # flushed commands carry its pid
                finish = self._writeback_pages(evicted, finish, pid=pid).finish_time
        copy_time = length / self.costs.memcpy_rate
        finish += copy_time + self.costs.syscall_overhead
        if self._observing:
            self.obs.fs_cpu(copy_time + self.costs.syscall_overhead)
        return SyscallResult(finish, finish - now, requests, length)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def write(
        self,
        handle: FileHandle,
        offset: int,
        length: int = None,
        data: Optional[bytes] = None,
        now: float = 0.0,
    ) -> SyscallResult:
        """``pwrite(2)``.  Pass ``data`` for content-bearing writes or just
        ``length`` for bulk workloads whose bytes don't matter."""
        if data is not None:
            length = len(data)
        if length is None or length <= 0:
            raise InvalidArgument("write needs data or a positive length")
        inode = self.inode(handle.ino)
        self._check_lock(inode, handle.app)
        if self._monitors:
            self._emit(
                SyscallEvent("write", handle.app, inode.ino, inode.path, offset, length, handle.o_direct, now)
            )
        if self._faulting:
            now, fire = self._fault_syscall("write", inode, offset, length, now)
            if fire is not None:
                # torn page-store write: only a prefix of the data lands
                torn = fire.torn_length
                if data is not None and torn > 0:
                    self.page_store.write(inode.ino, offset, data[:torn])
                inode.size = max(inode.size, offset + torn)
                raise TornWriteError(
                    f"injected torn write of {inode.path}: {torn}/{length} "
                    "bytes persisted",
                    bytes_written=torn,
                )
        if data is not None:
            self.page_store.write(inode.ino, offset, data)
        inode.size = max(inode.size, offset + length)
        entry_time = now
        now += self._probe_cost
        pid = self.obs.provenance.mint() if self._tracing else 0
        if handle.o_direct:
            result = self._write_direct(handle, inode, offset, length, now, pid)
        else:
            result = self._write_buffered(handle, inode, offset, length, now, pid)
        if self._observing:
            self.obs.syscall("write", result.finish_time - entry_time)
            self.obs.fs_cpu(self._probe_cost)
            if pid:
                self.obs.provenance.syscall(
                    pid, "write", app=handle.app, path=inode.path,
                    ino=inode.ino, offset=offset, size=length,
                    start=entry_time, end=result.finish_time,
                    requests=result.requests,
                )
        return SyscallResult(
            result.finish_time,
            result.finish_time - entry_time,
            result.requests,
            result.bytes_transferred,
        )

    def _write_direct(self, handle: FileHandle, inode: Inode, offset: int, length: int, now: float, pid: int = 0) -> SyscallResult:
        if offset % BLOCK_SIZE or length % BLOCK_SIZE:
            raise InvalidArgument(f"O_DIRECT write misaligned: offset={offset} length={length}")
        ranges = self._allocate_write(inode, offset, length)
        self._meta_dirty = True
        commands = split_ranges(IoOp.WRITE, ranges, tag=handle.app, pid=pid)
        submit = self.scheduler.submit(commands, now)
        finish = max(submit.finish_time, now) + self.costs.syscall_overhead
        if self._observing:
            self.obs.fs_cpu(self.costs.syscall_overhead)
        return SyscallResult(finish, finish - now, submit.commands, length)

    def _write_buffered(self, handle: FileHandle, inode: Inode, offset: int, length: int, now: float, pid: int = 0) -> SyscallResult:
        first = offset // BLOCK_SIZE
        last = (offset + length - 1) // BLOCK_SIZE
        evicted = self.page_cache.mark_dirty((inode.ino, page) for page in range(first, last + 1))
        finish = now + length / self.costs.memcpy_rate + self.costs.syscall_overhead
        if self._observing:
            self.obs.fs_cpu(finish - now)
        if evicted:
            finish = self._writeback_pages(evicted, finish, pid=pid).finish_time
        return SyscallResult(finish, finish - now, 0, length)

    def fsync(self, handle: FileHandle, now: float = 0.0) -> SyscallResult:
        """Flush this inode's dirty pages (delayed allocation happens
        here) and commit metadata."""
        inode = self.inode(handle.ino)
        if self._faulting:
            now, _ = self._fault_syscall("fsync", inode, 0, inode.size, now)
        pid = self.obs.provenance.mint() if self._tracing else 0
        dirty = self.page_cache.dirty_pages(inode.ino)
        requests = 0
        finish = now
        if dirty:
            submit = self._writeback_pages(
                [(inode.ino, page) for page in dirty], now,
                tag=handle.app, pid=pid,
            )
            requests += submit.commands
            finish = submit.finish_time
        meta = self._commit_metadata(finish, tag="meta", pid=pid)
        requests += meta.commands
        finish = max(finish, meta.finish_time) + self.costs.syscall_overhead
        if self._observing:
            self.obs.syscall("fsync", finish - now)
            self.obs.fs_cpu(self.costs.syscall_overhead)
            if pid:
                self.obs.provenance.syscall(
                    pid, "fsync", app=handle.app, path=inode.path,
                    ino=inode.ino, offset=0, size=len(dirty) * BLOCK_SIZE,
                    start=now, end=finish, requests=requests,
                )
        return SyscallResult(finish, finish - now, requests, len(dirty) * BLOCK_SIZE)

    def sync(self, now: float = 0.0) -> SyscallResult:
        """Flush everything (sync(2))."""
        pid = self.obs.provenance.mint() if self._tracing else 0
        finish = now
        requests = 0
        for ino in list(self.inodes):
            dirty = self.page_cache.dirty_pages(ino)
            if not dirty:
                continue
            submit = self._writeback_pages([(ino, page) for page in dirty], finish, pid=pid)
            requests += submit.commands
            finish = submit.finish_time
        meta = self._commit_metadata(finish, tag="meta", pid=pid)
        finish = max(finish, meta.finish_time)
        if self._observing:
            self.obs.syscall("sync", finish - now)
            if pid:
                self.obs.provenance.syscall(
                    pid, "sync", app="kernel", path="*", ino=0,
                    offset=0, size=0, start=now, end=finish,
                    requests=requests + meta.commands,
                )
        return SyscallResult(finish, finish - now, requests + meta.commands, 0)

    def _writeback_pages(self, keys: Sequence[Tuple[int, int]], now: float, tag: str = "writeback", pid: int = 0) -> SubmitResult:
        """Write dirty pages out, allocating blocks as needed.

        ``pid`` attributes the flushed commands to the syscall that forced
        the writeback (fsync/sync, or a read/write that evicted dirty
        pages); 0 leaves them causally untracked.
        """
        by_ino: Dict[int, List[int]] = {}
        for ino, page in keys:
            by_ino.setdefault(ino, []).append(page)
        commands: List[IoCommand] = []
        for ino, pages in by_ino.items():
            inode = self.inodes.get(ino)
            if inode is None:
                continue  # unlinked while dirty
            pages.sort()
            for run_start, run_len in _page_runs(pages):
                ranges = self._allocate_write(inode, run_start * BLOCK_SIZE, run_len * BLOCK_SIZE)
                commands.extend(split_ranges(IoOp.WRITE, ranges, tag=tag, pid=pid))
            self._meta_dirty = True
            self.page_cache.clean(ino, pages)
        return self.scheduler.submit(commands, now)

    # ------------------------------------------------------------------
    # fallocate
    # ------------------------------------------------------------------

    def fallocate(
        self,
        handle: FileHandle,
        mode: FallocMode,
        offset: int,
        length: int,
        now: float = 0.0,
    ) -> SyscallResult:
        """``fallocate(2)``: pre-allocate blocks or punch a hole.

        Punching zeroes any non-block-aligned head/tail (Linux semantics —
        the data-loss hazard FragPicker's block alignment avoids) and
        deallocates whole blocks.
        """
        if length <= 0:
            raise InvalidArgument("fallocate length must be positive")
        inode = self.inode(handle.ino)
        self._check_lock(inode, handle.app)
        if self._faulting:
            now, _ = self._fault_syscall("fallocate", inode, offset, length, now)
        if mode is FallocMode.PUNCH_HOLE:
            self._punch_hole(inode, offset, length)
        else:
            self._allocate_range(inode, offset, length)
        self._meta_dirty = True
        finish = now + self.costs.syscall_overhead
        if self._observing:
            self.obs.syscall("fallocate", finish - now)
            self.obs.fs_cpu(finish - now)
        return SyscallResult(finish, finish - now, 0, 0)

    def _punch_hole(self, inode: Inode, offset: int, length: int) -> None:
        end = offset + length
        aligned_start = block_align_up(offset)
        aligned_end = block_align_down(end)
        # zero unaligned edges (content only; blocks stay mapped)
        if offset < aligned_start:
            self.page_store.zero_range(inode.ino, offset, min(aligned_start, end) - offset)
        if aligned_end < end and aligned_end >= aligned_start:
            self.page_store.zero_range(inode.ino, aligned_end, end - aligned_end)
        if aligned_end <= aligned_start:
            return
        removed = inode.extent_map.punch(aligned_start, aligned_end - aligned_start)
        for extent in removed:
            self.free_space.free(extent.disk_offset, extent.length)
        # a hole reads back as zeros
        self.page_store.zero_range(inode.ino, aligned_start, aligned_end - aligned_start)
        # punched pages must not be written back later
        self.page_cache.clean(
            inode.ino, range(aligned_start // BLOCK_SIZE, aligned_end // BLOCK_SIZE)
        )

    def _allocate_range(self, inode: Inode, offset: int, length: int) -> None:
        """Back every hole in the range with blocks, contiguous-best."""
        start = block_align_down(offset)
        end = block_align_up(offset + length)
        holes = inode.extent_map.holes(start, end - start)
        if not holes:
            return
        goal = self._goal_for(inode, start)
        total = sum(h_len for _, h_len in holes)
        if len(holes) == 1 and holes[0] == (start, end - start):
            # Whole range unmapped: honour the contiguity contract as hard
            # as the allocator can (FragPicker relies on this).
            runs = self.free_space.alloc(total, goal=goal)
            pos = start
            for run_start, run_len in runs:
                inode.extent_map.insert(Extent(pos, run_start, run_len))
                pos += run_len
            inode.size = max(inode.size, offset + length)
            return
        for hole_start, hole_len in holes:
            runs = self.free_space.alloc(hole_len, goal=goal)
            pos = hole_start
            for run_start, run_len in runs:
                inode.extent_map.insert(Extent(pos, run_start, run_len))
                pos += run_len
        inode.size = max(inode.size, offset + length)

    def drop_caches(self) -> int:
        """``echo 3 > /proc/sys/vm/drop_caches``: evict clean page cache.

        Benchmarks use this between setup and measurement so buffered reads
        actually hit storage.  Dirty pages survive (sync first).
        """
        return self.page_cache.drop_clean()

    def truncate(self, handle: FileHandle, size: int, now: float = 0.0) -> SyscallResult:
        """``ftruncate(2)``: grow (hole) or shrink (free tail blocks)."""
        if size < 0:
            raise InvalidArgument("negative truncate size")
        inode = self.inode(handle.ino)
        self._check_lock(inode, handle.app)
        if size < inode.size:
            tail_start = block_align_up(size)
            tail_len = block_align_up(inode.size) - tail_start
            if tail_len > 0:
                removed = inode.extent_map.punch(tail_start, tail_len)
                for extent in removed:
                    self.free_space.free(extent.disk_offset, extent.length)
                self.page_cache.clean(
                    inode.ino, range(tail_start // BLOCK_SIZE, (tail_start + tail_len) // BLOCK_SIZE)
                )
            self.page_store.zero_range(inode.ino, size, max(0, inode.size - size))
        inode.size = size
        self._meta_dirty = True
        finish = now + self.costs.syscall_overhead
        if self._observing:
            self.obs.syscall("truncate", finish - now)
            self.obs.fs_cpu(finish - now)
        return SyscallResult(finish, finish - now, 0, 0)

    # ------------------------------------------------------------------
    # locking (FragPicker's migration guard)
    # ------------------------------------------------------------------

    def lock_file(self, path: str, holder: str) -> None:
        inode = self.inode_of(path)
        if inode.lock_holder is not None and inode.lock_holder != holder:
            raise FileLocked(f"{path} locked by {inode.lock_holder}")
        inode.lock_holder = holder

    def unlock_file(self, path: str, holder: str) -> None:
        inode = self.inode_of(path)
        if inode.lock_holder != holder:
            raise FileLocked(f"{path} not locked by {holder}")
        inode.lock_holder = None

    @staticmethod
    def _check_lock(inode: Inode, app: str) -> None:
        if inode.lock_holder is not None and inode.lock_holder != app:
            raise FileLocked(f"{inode.path} locked by {inode.lock_holder}")

    # ------------------------------------------------------------------
    # metadata journal
    # ------------------------------------------------------------------

    def _commit_metadata(self, now: float, tag: str, pid: int = 0) -> SubmitResult:
        """Commit pending metadata (one journal/checkpoint transaction).

        Metadata-dirtying syscalls only *flag* the journal (jbd2 batches
        transactions); the write happens here, at fsync/sync time.  The
        journal write is attributed to the flushing syscall via ``pid``.
        """
        if not self.journaling or not self._meta_dirty:
            return SubmitResult(now, 0.0, 0, 0.0, 0.0)
        self._meta_dirty = False
        record = self.costs.journal_record_bytes
        offset = self._journal_head
        if offset + record > self.metadata_region:
            offset = 0
        self._journal_head = offset + record
        command = IoCommand(IoOp.WRITE, offset, record, tag, pid)
        return self.scheduler.submit([command], now)

    # ------------------------------------------------------------------
    # personality hook
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _allocate_write(self, inode: Inode, offset: int, length: int) -> List[Tuple[int, int]]:
        """Decide where ``[offset, offset+length)`` lands on disk.

        Must update the extent map (and free displaced blocks for
        out-of-place policies) and return the disk ranges to write, in
        file-offset order.  ``offset``/``length`` are block aligned.
        """

    # -- shared allocation helpers for subclasses -------------------------

    def _goal_for(self, inode: Inode, file_offset: int) -> Optional[int]:
        """Allocation goal: right after the extent preceding this offset."""
        best = inode.extent_map.preceding(file_offset)
        return best.disk_end if best is not None else None

    def _map_new_blocks(self, inode: Inode, offset: int, length: int, goal: Optional[int]) -> List[Tuple[int, int]]:
        """Allocate fresh blocks for the range, free displaced ones."""
        runs = self.free_space.alloc(length, goal=goal)
        ranges: List[Tuple[int, int]] = []
        pos = offset
        for run_start, run_len in runs:
            displaced = inode.extent_map.insert(Extent(pos, run_start, run_len))
            for old in displaced:
                self.free_space.free(old.disk_offset, old.length)
            ranges.append((run_start, run_len))
            pos += run_len
        return ranges

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        return {
            "fs_type": self.fs_type,
            "device": self.device.name,
            "files": len(self.inodes),
            "free_bytes": self.free_space.free_bytes,
        }


def _page_runs(pages: Sequence[int]) -> List[Tuple[int, int]]:
    """Group sorted page indices into (start, run_length) runs."""
    runs: List[Tuple[int, int]] = []
    for page in pages:
        if runs and runs[-1][0] + runs[-1][1] == page:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((page, 1))
    return runs
