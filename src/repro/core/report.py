"""Defragmentation run reports.

Every tool (FragPicker and the conventional baselines) produces a
:class:`DefragReport` with the quantities the paper's evaluation tables
track: elapsed (virtual) time, read/write bytes issued by the tool, ranges
examined/migrated/skipped, and fragment counts before/after.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..constants import MIB


@dataclass
class DefragReport:
    """Outcome of one defragmentation run."""

    tool: str
    started_at: float = 0.0
    finished_at: float = 0.0
    read_bytes: int = 0
    write_bytes: int = 0
    ranges_examined: int = 0
    ranges_migrated: int = 0
    ranges_skipped_contiguous: int = 0
    ranges_skipped_cold: int = 0
    #: ranges abandoned after retries were exhausted (skip-and-report —
    #: a failing file never aborts the whole run)
    ranges_failed: int = 0
    #: transient-fault retries across the whole run
    retries: int = 0
    files_examined: int = 0
    fragments_before: Dict[str, int] = field(default_factory=dict)
    fragments_after: Dict[str, int] = field(default_factory=dict)
    #: path -> last error, for every range that degraded to skip
    failures: Dict[str, str] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    @property
    def total_io_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def summary(self) -> str:
        before = sum(self.fragments_before.values())
        after = sum(self.fragments_after.values())
        text = (
            f"{self.tool}: {self.elapsed:.3f}s, "
            f"read {self.read_bytes / MIB:.1f} MiB, write {self.write_bytes / MIB:.1f} MiB, "
            f"migrated {self.ranges_migrated}/{self.ranges_examined} ranges "
            f"({self.ranges_skipped_contiguous} contiguous, {self.ranges_skipped_cold} cold), "
            f"fragments {before} -> {after}"
        )
        if self.retries or self.ranges_failed:
            text += f", {self.retries} retries, {self.ranges_failed} failed"
        return text
