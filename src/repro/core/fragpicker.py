"""FragPicker orchestration: analysis -> hotness -> check -> migrate.

Typical use::

    picker = FragPicker(fs, FragPickerConfig(hotness_criterion=0.5))
    with picker.monitor(apps={"rocksdb"}) as mon:
        run_workload()                       # observation window
    report = picker.defragment(mon.records, paths=db_files, now=clock.now)

or, when the access pattern is known to be sequential::

    report = picker.defragment_bypass(paths=db_files, now=clock.now)

For co-running experiments, :meth:`FragPicker.actor` returns a generator
compatible with :func:`repro.sim.engine.run_concurrently`, yielding after
every migrated range so foreground traffic interleaves realistically.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..constants import MIB, READAHEAD_SIZE
from ..errors import DefragError, FaultError, InjectedCrash, NoSpaceError
from ..fs.base import Filesystem
from ..fs.fiemap import fragment_count
from ..trace.records import IORecord
from ..trace.syscall_monitor import SyscallMonitor
from .analysis import AnalysisPhase
from .bypass import bypass_range_list
from .frag_check import range_is_fragmented
from .hotness import hotness_filter
from .migration import Migrator, RetryPolicy
from .range_list import FileRangeList
from .recovery import MigrationJournal
from .report import DefragReport


@dataclass(frozen=True)
class FragPickerConfig:
    """Tunables (all of the paper's knobs plus ablation switches)."""

    #: fraction of analysed bytes to migrate, hottest first (Section 4.1.3)
    hotness_criterion: float = 1.0
    #: migration I/O chunk size
    io_size: int = 1 * MIB
    #: readahead size imitated for buffered sequential reads
    readahead_size: int = READAHEAD_SIZE
    #: ablation: imitate readahead during analysis
    imitate_readahead: bool = True
    #: ablation: merge overlapped I/Os (Algorithm 1)
    merge_overlaps: bool = True
    #: ablation: FIEMAP fragmentation check before migration
    check_fragmentation: bool = True
    #: tag used for the tool's own I/O (tracing/accounting)
    app: str = "fragpicker"
    #: bounded retry-with-backoff for transient faults (repro.faults);
    #: a range that keeps failing degrades to skip-and-report
    retry: RetryPolicy = RetryPolicy()


class FragPicker:
    """The defragmentation tool of the paper."""

    def __init__(self, fs: Filesystem, config: Optional[FragPickerConfig] = None) -> None:
        self.fs = fs
        self.config = config = config if config is not None else FragPickerConfig()
        #: crash-safety journal for in-place migrations (Section 4.2.2);
        #: after an interrupted run, ``journal.recover(fs)`` replays any
        #: punched-but-not-rewritten chunks
        self.journal = MigrationJournal()
        self._migrator = Migrator(
            fs, app=config.app, io_size=config.io_size, journal=self.journal
        )

    # ------------------------------------------------------------------
    # analysis phase
    # ------------------------------------------------------------------

    def monitor(self, apps: Optional[Iterable[str]] = None) -> SyscallMonitor:
        """A syscall monitor to run around the observation window."""
        return SyscallMonitor(self.fs, apps=apps)

    def analyze(
        self,
        records: Iterable[IORecord],
        paths: Optional[Iterable[str]] = None,
        now: float = 0.0,
    ) -> List[FileRangeList]:
        """Analysis phase: trace -> per-file hot range lists.

        ``now`` only timestamps the observability span — analysis is
        host-side work that consumes no virtual time.
        """
        obs = self.fs.obs
        span = obs.span_start("fragpicker.analyze", now) if obs.enabled else None
        inodes = None
        if paths is not None:
            inodes = [self.fs.inode_of(p).ino for p in paths]
        phase = AnalysisPhase(
            readahead_size=self.config.readahead_size,
            imitate_readahead=self.config.imitate_readahead,
            merge=self.config.merge_overlaps,
        )
        analysed = phase.run(self.fs, records, inodes=inodes)
        plans = [
            hotness_filter(range_list, self.config.hotness_criterion)
            for range_list in analysed.values()
        ]
        if span is not None:
            span.attrs.update(
                files=len(plans), ranges=sum(len(p.ranges) for p in plans)
            )
            obs.span_finish(span, now)
        return plans

    def bypass_plans(self, paths: Iterable[str]) -> List[FileRangeList]:
        """Bypass option: sequential-read plans without any tracing."""
        return [
            bypass_range_list(self.fs, path, self.config.readahead_size)
            for path in paths
        ]

    # ------------------------------------------------------------------
    # migration phase
    # ------------------------------------------------------------------

    def defragment(
        self,
        records: Optional[Iterable[IORecord]] = None,
        paths: Optional[Iterable[str]] = None,
        plans: Optional[Sequence[FileRangeList]] = None,
        now: float = 0.0,
    ) -> DefragReport:
        """Run migration for the given trace (or pre-built plans)."""
        if plans is None:
            if records is None:
                raise DefragError("defragment needs records or plans")
            plans = self.analyze(records, paths=paths, now=now)
        self._warn_if_seek_device()
        obs = self.fs.obs
        outer = (
            obs.span_start("fragpicker.defragment", now, files=len(plans))
            if obs.enabled else None
        )
        report = self._new_report(plans, now)
        for plan, file_range in self._work_items(plans):
            report.ranges_examined += 1
            inner = (
                obs.span_start(
                    "fragpicker.migrate", now,
                    file=plan.path, offset=file_range.start, length=file_range.length,
                )
                if obs.enabled else None
            )
            for now in self._migrate_one(plan, file_range, report, now):
                pass
            if inner is not None:
                obs.span_finish(inner, now)
        result = self._finish_report(report, plans, now)
        if outer is not None:
            obs.span_finish(outer, now)
        return result

    def defragment_bypass(self, paths: Iterable[str], now: float = 0.0) -> DefragReport:
        """The bypass option end-to-end (FragPicker-B in the figures)."""
        return self.defragment(plans=self.bypass_plans(paths), now=now)

    def cursor(
        self,
        plans: Optional[Sequence[FileRangeList]] = None,
        paths: Optional[Iterable[str]] = None,
        now: float = 0.0,
    ) -> "MigrationCursor":
        """Range-at-a-time stepping for external schedulers (repro.fleet).

        Where :meth:`defragment` runs a whole plan to completion, a cursor
        exposes the same per-range migration loop as discrete steps, so a
        scheduler can pause between ranges — to charge an I/O budget, to
        yield the device to foreground traffic, or to resume next tick.
        Retry/skip semantics per range are identical to :meth:`defragment`.
        """
        if plans is None:
            if paths is None:
                raise DefragError("cursor needs plans or paths")
            plans = self.bypass_plans(paths)
        self._warn_if_seek_device()
        return MigrationCursor(self, plans, now)

    def actor(self, plans: Sequence[FileRangeList], report_out: Optional[DefragReport] = None):
        """Generator for :func:`repro.sim.engine.run_concurrently`.

        Yields after each migrated range; fills ``report_out`` (or a fresh
        report retrievable from ``gen_report`` attribute) as it goes.
        """
        def _run(ctx):
            obs = self.fs.obs
            report = report_out if report_out is not None else DefragReport(tool="fragpicker")
            started = False
            outer = None
            for plan, file_range in self._work_items(plans):
                if not started:
                    self._start_report(report, plans, ctx.now)
                    started = True
                    if obs.enabled:
                        outer = obs.span_start(
                            "fragpicker.defragment", ctx.now,
                            track=ctx.name, files=len(plans),
                        )
                report.ranges_examined += 1
                inner = (
                    obs.span_start(
                        "fragpicker.migrate", ctx.now, track=ctx.name,
                        file=plan.path, offset=file_range.start,
                        length=file_range.length,
                    )
                    if obs.enabled else None
                )
                for t in self._migrate_one(plan, file_range, report, ctx.now):
                    ctx.now = t
                    yield
                if inner is not None:
                    obs.span_finish(inner, ctx.now)
            if not started:
                self._start_report(report, plans, ctx.now)
            self._finish_report(report, plans, ctx.now)
            if outer is not None:
                obs.span_finish(outer, ctx.now)
        return _run

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def work_items(self, plans: Sequence[FileRangeList]):
        """Public iteration order of a plan's (plan, range) migrations."""
        return self._work_items(plans)

    def _work_items(self, plans: Sequence[FileRangeList]):
        for plan in plans:
            if plan.path not in self.fs.paths:
                continue
            for file_range in plan.sorted_by_start():
                yield plan, file_range

    def _migrate_one(self, plan: FileRangeList, file_range, report: DefragReport, now: float):
        """Generator: yields running time after each migration syscall.

        Transient injected faults (:mod:`repro.faults`) are retried with
        the config's bounded backoff; a range that keeps failing degrades
        to skip-and-report — one sick file never aborts the whole run.
        Crashes propagate: nothing survives a power-off but the journal.
        """
        retry = self.config.retry
        failures = 0
        obs = self.fs.obs
        while True:
            try:
                for now in self._attempt_one(plan, file_range, report, now):
                    yield now
                return
            except InjectedCrash:
                raise
            except FaultError as exc:
                failures += 1
                now, repaired = self._repair_after_fault(now)
                if obs.enabled:
                    obs.event(
                        "fragpicker.fault", now, file=plan.path,
                        error=type(exc).__name__, attempt=failures,
                    )
                if failures >= retry.attempts or not repaired:
                    # an unrepaired journal must stop retries: a fresh
                    # attempt would re-journal the punched zeros and a
                    # later recovery would replay them over the good data
                    report.ranges_failed += 1
                    report.failures[plan.path] = f"{type(exc).__name__}: {exc}"
                    if obs.enabled:
                        obs.migration_failed()
                        obs.event("fragpicker.migration_failed", now, file=plan.path)
                    yield now
                    return
                report.retries += 1
                if obs.enabled:
                    obs.migration_retry()
                now += retry.delay(failures - 1)
                yield now

    def _attempt_one(self, plan: FileRangeList, file_range, report: DefragReport, now: float):
        """One migration try for a range (the pre-faults _migrate_one)."""
        if self.config.check_fragmentation and not range_is_fragmented(
            self.fs, plan.path, file_range
        ):
            report.ranges_skipped_contiguous += 1
            if self.fs.obs.enabled:
                self.fs.obs.event(
                    "fragpicker.skip_contiguous", now, file=plan.path
                )
            yield now
            return
        before = self.fs.tracer.tag(self.config.app).snapshot()
        ipu_restore = self._disable_f2fs_ipu()
        migrated = True
        try:
            try:
                for now in self._migrator.migrate_range_steps(plan.path, file_range, now=now):
                    yield now
            except NoSpaceError:
                # Fragmented/insufficient free space: skip, like other tools
                # would fail (Section 6 limitations).
                report.ranges_skipped_contiguous += 1
                migrated = False
        finally:
            # account even a faulted attempt's traffic before unwinding
            self._restore_f2fs_ipu(ipu_restore)
            delta = self.fs.tracer.tag(self.config.app).delta(before)
            report.read_bytes += delta.read_bytes
            report.write_bytes += delta.write_bytes
        if migrated:
            report.ranges_migrated += 1
        yield now

    def _repair_after_fault(self, now: float):
        """Replay pending journal entries so a retry starts from intact data."""
        if len(self.journal) == 0:
            return now, True
        try:
            now, _ = self.journal.recover(self.fs, now=now)
            return now, True
        except InjectedCrash:
            raise
        except FaultError:
            # recovery itself faulted: the entries stay pending (the data
            # remains recoverable later), but retrying is no longer safe
            return now, False

    def _warn_if_seek_device(self) -> None:
        """Section 6: FragPicker ignores frag distance, so on devices with
        seek time it can increase tail latency — the paper recommends
        against using it there."""
        from ..device.hdd import HddDevice  # late import: optional concern

        if isinstance(self.fs.device, HddDevice):
            warnings.warn(
                "FragPicker ignores fragment distance; on seek-time devices "
                "(HDDs) it can increase tail latency — the paper recommends "
                "a conventional defragmenter instead",
                RuntimeWarning,
                stacklevel=3,
            )

    def _disable_f2fs_ipu(self) -> Optional[bool]:
        """F2FS sometimes updates in place; turn that off for migration."""
        if self.fs.fs_type == "f2fs":
            previous = self.fs.ipu_enabled
            self.fs.set_ipu(False)
            return previous
        return None

    def _restore_f2fs_ipu(self, previous: Optional[bool]) -> None:
        if previous is not None:
            self.fs.set_ipu(previous)

    def _new_report(self, plans: Sequence[FileRangeList], now: float) -> DefragReport:
        report = DefragReport(tool="fragpicker")
        self._start_report(report, plans, now)
        return report

    def _start_report(self, report: DefragReport, plans: Sequence[FileRangeList], now: float) -> None:
        report.started_at = now
        report.files_examined = len(plans)
        for plan in plans:
            if plan.path in self.fs.paths:
                report.fragments_before[plan.path] = fragment_count(self.fs, plan.path)

    def _finish_report(self, report: DefragReport, plans: Sequence[FileRangeList], now: float) -> DefragReport:
        report.finished_at = now
        for plan in plans:
            if plan.path in self.fs.paths:
                report.fragments_after[plan.path] = fragment_count(self.fs, plan.path)
        return report


class MigrationCursor:
    """One defrag run, steppable range by range (see :meth:`FragPicker.cursor`).

    The cursor owns the run's :class:`DefragReport`; :meth:`peek` exposes
    the next range so a scheduler can budget its length before committing,
    :meth:`migrate_next` performs it (with the picker's retry/skip
    semantics), and :meth:`finish` closes the report — also callable early
    to abandon the remainder, e.g. after a crash recovery.
    """

    def __init__(self, picker: FragPicker, plans: Sequence[FileRangeList], now: float = 0.0) -> None:
        self.picker = picker
        self.plans = plans
        self.report = picker._new_report(plans, now)
        self._items = picker._work_items(plans)
        self._head = None
        self.finished = False

    def peek(self):
        """The next ``(plan, file_range)`` to migrate, or None when done."""
        if self._head is None:
            self._head = next(self._items, None)
        return self._head

    @property
    def exhausted(self) -> bool:
        return self.peek() is None

    def migrate_next(self, now: float) -> float:
        """Migrate the peeked range; returns the virtual completion time."""
        item = self.peek()
        if item is None:
            return now
        self._head = None
        plan, file_range = item
        obs = self.picker.fs.obs
        self.report.ranges_examined += 1
        span = (
            obs.span_start(
                "fragpicker.migrate", now,
                file=plan.path, offset=file_range.start, length=file_range.length,
            )
            if obs.enabled else None
        )
        for now in self.picker._migrate_one(plan, file_range, self.report, now):
            pass
        if span is not None:
            obs.span_finish(span, now)
        return now

    def finish(self, now: float) -> DefragReport:
        """Close (and return) the report; idempotent."""
        if not self.finished:
            self.picker._finish_report(self.report, self.plans, now)
            self.finished = True
        return self.report
