"""FragPicker — the paper's contribution.

Two phases (Figure 5):

- **analysis** (:mod:`repro.core.analysis`): trace I/O syscalls, build
  per-file range lists (readahead imitation + Algorithm 1 overlap merge),
  filter by hotness.
- **migration** (:mod:`repro.core.migration`): FIEMAP fragmentation check,
  then rewrite — directly for out-of-place filesystems, or punch +
  fallocate + rewrite for in-place filesystems — using only generic
  syscalls, which keeps the tool filesystem-agnostic.

:class:`~repro.core.fragpicker.FragPicker` orchestrates both.
"""

from .range_list import FileRange, FileRangeList, merge_overlapped
from .analysis import AnalysisPhase, analyze_records
from .hotness import hotness_filter
from .bypass import bypass_range_list
from .frag_check import range_is_fragmented
from .migration import Migrator, RetryPolicy
from .recovery import MigrationJournal, RecoveryReport
from .fragpicker import FragPicker, FragPickerConfig, MigrationCursor
from .report import DefragReport

__all__ = [
    "FileRange",
    "FileRangeList",
    "merge_overlapped",
    "AnalysisPhase",
    "analyze_records",
    "hotness_filter",
    "bypass_range_list",
    "range_is_fragmented",
    "Migrator",
    "RetryPolicy",
    "MigrationJournal",
    "RecoveryReport",
    "FragPicker",
    "FragPickerConfig",
    "MigrationCursor",
    "DefragReport",
]
