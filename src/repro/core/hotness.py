"""Hotness filtering (Section 4.1.3).

When applications issue skewed I/O, defragmenting cold regions buys no
performance.  FragPicker sorts range entries by I/O count and keeps only
the hottest ones; how much to keep — the *hotness criterion* — is the
administrator's tunable.  The criterion here is the fraction of analysed
bytes to keep, matching Figure 12's "top x% of hot data is migrated" axis.
"""

from __future__ import annotations

from typing import List

from ..errors import InvalidArgument
from .range_list import FileRange, FileRangeList


def hotness_filter(range_list: FileRangeList, criterion: float) -> FileRangeList:
    """Keep the hottest ranges covering ``criterion`` of analysed bytes.

    ``criterion`` in (0, 1]; 1.0 keeps everything.  Ranges are ranked by
    I/O count (ties broken by file offset), and entries are kept until the
    cumulative kept bytes reach the budget — so at least one range is
    always kept for a non-empty list.
    """
    if not 0.0 < criterion <= 1.0:
        raise InvalidArgument(f"hotness criterion {criterion} outside (0, 1]")
    if criterion >= 1.0 or not range_list.ranges:
        return range_list
    budget = range_list.total_bytes * criterion
    kept: List[FileRange] = []
    kept_bytes = 0
    for entry in range_list.sorted_by_hotness():
        if kept and kept_bytes >= budget:
            break
        kept.append(entry)
        kept_bytes += entry.length
    kept.sort(key=lambda r: r.start)
    return FileRangeList(ino=range_list.ino, path=range_list.path, ranges=kept)
