"""FragPicker's analysis phase (Section 4.1).

Pipeline per file:

1. **System call monitoring** — done by :class:`repro.trace.SyscallMonitor`;
   this module consumes its :class:`~repro.trace.records.IORecord` stream.
2. **Readahead imitation** — the monitor sits above the VFS, so buffered
   sequential reads appear at their syscall size (e.g. grep's 32 KiB) even
   though the kernel will fetch 128 KiB windows.  The analysis expands
   detected sequential buffered reads to the readahead size and drops
   subsequent reads that fall inside the expanded window (those are page
   cache hits).
3. **Block alignment** — start/end offsets are aligned to filesystem
   blocks, which is also what makes the later punch-hole deallocation safe
   (no partial-block zeroing, Section 4.2.2).
4. **Algorithm 1 merge** — overlapped/adjacent ranges coalesce with I/O
   counts accumulating into a hotness score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..constants import READAHEAD_SIZE, block_align_down, block_align_up
from ..fs.base import Filesystem
from ..trace.records import IORecord
from .range_list import FileRange, FileRangeList, merge_overlapped


@dataclass
class _SequentialState:
    """Per-file replica of the kernel's readahead state machine."""

    next_expected: int = -1
    window_end: int = -1


@dataclass
class AnalysisPhase:
    """Configuration for turning a trace into file range lists."""

    readahead_size: int = READAHEAD_SIZE
    imitate_readahead: bool = True
    merge: bool = True  # ablation: disable Algorithm 1

    def run(
        self,
        fs: Filesystem,
        records: Iterable[IORecord],
        inodes: Optional[Iterable[int]] = None,
    ) -> Dict[int, FileRangeList]:
        """Build the per-file range lists from a syscall trace.

        ``inodes`` restricts analysis to specific files (FragPicker can
        target particular applications/files); records for inodes that no
        longer exist are dropped.
        """
        wanted = set(inodes) if inodes is not None else None
        per_file: Dict[int, List[FileRange]] = {}
        seq_state: Dict[int, _SequentialState] = {}
        for record in records:
            if wanted is not None and record.ino not in wanted:
                continue
            if record.ino not in fs.inodes:
                continue  # unlinked since tracing
            expanded = self._expand(record, seq_state.setdefault(record.ino, _SequentialState()))
            if expanded is None:
                continue
            start, end = expanded
            file_end = block_align_up(fs.inodes[record.ino].size)
            start = max(0, block_align_down(start))
            end = min(block_align_up(end), file_end)
            if end <= start:
                continue
            per_file.setdefault(record.ino, []).append(FileRange(start, end, 1))
        out: Dict[int, FileRangeList] = {}
        for ino, ranges in per_file.items():
            merged = merge_overlapped(ranges) if self.merge else sorted(
                ranges, key=lambda r: (r.start, r.end)
            )
            out[ino] = FileRangeList(ino=ino, path=fs.inodes[ino].path, ranges=merged)
        return out

    # -- readahead imitation -------------------------------------------------

    def _expand(self, record: IORecord, state: _SequentialState):
        """Apply the paper's buffered-sequential-read handling.

        Returns the (possibly expanded) byte range, or ``None`` when the
        read falls inside the previously expanded window (page cache hit —
        it never reaches storage, so migrating for it is pointless... it is
        already covered by the window entry anyway).
        """
        if not (
            self.imitate_readahead
            and record.io_type == "read"
            and not record.o_direct
        ):
            return record.offset, record.end
        sequential = record.offset == state.next_expected or (
            state.next_expected < 0 and record.offset == 0
        )
        state.next_expected = record.end
        if not sequential:
            state.window_end = record.end
            return record.offset, record.end
        if 0 <= record.end <= state.window_end:
            return None  # served by the page cache
        expanded_end = max(record.end, record.offset + self.readahead_size)
        state.window_end = expanded_end
        return record.offset, expanded_end


def analyze_records(
    fs: Filesystem,
    records: Iterable[IORecord],
    inodes: Optional[Iterable[int]] = None,
    **kwargs,
) -> Dict[int, FileRangeList]:
    """Convenience wrapper: run the analysis phase with default settings."""
    return AnalysisPhase(**kwargs).run(fs, records, inodes=inodes)
