"""The bypass option (Section 4.1.4).

When the administrator already knows the file will be read sequentially
(database full scans, grep over a directory), the analysis phase is
redundant: the readahead mechanism will turn sequential reads into
readahead-sized requests anyway.  The bypass option therefore slices the
file into readahead-sized ranges from offset zero — no tracing required.
"""

from __future__ import annotations

from ..constants import READAHEAD_SIZE, block_align_up
from ..fs.base import Filesystem
from .range_list import FileRange, FileRangeList


def bypass_range_list(
    fs: Filesystem, path: str, readahead_size: int = READAHEAD_SIZE
) -> FileRangeList:
    """Readahead-sized ranges covering the whole file."""
    inode = fs.inode_of(path)
    end = block_align_up(inode.size)
    ranges = [
        FileRange(start, min(start + readahead_size, end), 1)
        for start in range(0, end, readahead_size)
    ]
    return FileRangeList(ino=inode.ino, path=path, ranges=ranges)
