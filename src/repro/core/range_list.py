"""File range lists and Algorithm 1 (merging overlapped I/Os).

A *file range list* is FragPicker's per-file unit of work: byte ranges the
application actually touched, each with an I/O count reflecting hotness.
``merge_overlapped`` is a faithful implementation of the paper's
Algorithm 1: sort by start offset, sweep with an ``overlap_window`` that
absorbs every *overlapping* entry while counting absorptions (the paper's
example merges I/Os over 1-40 and 31-60 into 1-60 with count 2).

Merely *touching* ranges stay separate on purpose: requests aligned to the
observed I/O boundaries never span two entries, so migrating them
independently cannot re-introduce request splitting — and keeping entries
at request granularity is exactly what lets the later fragmentation check
skip already-contiguous pieces (the bypass option likewise emits separate
readahead-sized entries, Section 4.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import InvalidArgument


@dataclass(frozen=True)
class FileRange:
    """Half-open byte range with an I/O (hotness) count."""

    start: int
    end: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise InvalidArgument(f"bad file range [{self.start}, {self.end})")
        if self.count < 1:
            raise InvalidArgument("count must be >= 1")

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class FileRangeList:
    """All analysed ranges for one file."""

    ino: int
    path: str
    ranges: List[FileRange] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(r.length for r in self.ranges)

    def sorted_by_start(self) -> List[FileRange]:
        return sorted(self.ranges, key=lambda r: r.start)

    def sorted_by_hotness(self) -> List[FileRange]:
        return sorted(self.ranges, key=lambda r: (-r.count, r.start))


def merge_overlapped(entries: Sequence[FileRange]) -> List[FileRange]:
    """Algorithm 1: merge overlapped/adjacent I/O ranges, counting hits.

    ``entries`` need not be sorted; counts of merged entries accumulate
    (an entry arriving with count > 1 — e.g. from a previous merge —
    contributes its full count).
    """
    if not entries:
        return []
    ordered = sorted(entries, key=lambda r: (r.start, r.end))
    merged: List[FileRange] = []
    window_start = ordered[0].start
    window_end = ordered[0].end
    count = ordered[0].count
    for entry in ordered[1:]:
        if entry.start < window_end:  # strictly overlapped: absorb
            count += entry.count
            if entry.end > window_end:
                window_end = entry.end
        else:  # store the window, start a new one
            merged.append(FileRange(window_start, window_end, count))
            window_start, window_end, count = entry.start, entry.end, entry.count
    merged.append(FileRange(window_start, window_end, count))
    return merged
