"""Device-level (PBA) fragmentation — the paper's Section 6 future work.

Flash-internal operations (GC, out-of-place updates) can leave data that
is perfectly contiguous in LBA space scattered across few channels in
physical space, causing the same resource conflicts as LBA fragmentation.
``filefrag`` cannot see this; the paper proposes extending FragPicker with
open-channel SSD visibility.

This module implements that extension against the simulated flash FTL:

- :class:`OpenChannelInspector` exposes the logical-to-physical channel
  placement (what an open-channel / zoned interface would report).
- :func:`range_is_pba_conflicted` flags ranges whose pages concentrate on
  few channels (imbalance above a threshold).
- :class:`PbaAwareFragPicker` migrates a range when it is *either*
  LBA-fragmented or PBA-conflicted; rewriting restripes the pages
  round-robin across channels, restoring parallelism.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from ..constants import BLOCK_SIZE
from ..device.flash import FlashSsd
from ..errors import InvalidArgument
from ..fs.base import Filesystem
from .frag_check import range_is_fragmented
from .fragpicker import FragPicker, FragPickerConfig
from .range_list import FileRange


class OpenChannelInspector:
    """Open-channel view of a flash device's physical placement."""

    def __init__(self, device: FlashSsd) -> None:
        if not isinstance(device, FlashSsd):
            raise InvalidArgument("open-channel inspection needs a flash SSD")
        self.device = device

    def channel_histogram(self, fs: Filesystem, path: str, file_range: FileRange) -> Dict[int, int]:
        """Pages per channel for the mapped blocks of a file range."""
        inode = fs.inode_of(path)
        histogram: Counter = Counter()
        for disk, length in inode.extent_map.disk_ranges(
            file_range.start, file_range.end - file_range.start
        ):
            first = disk // BLOCK_SIZE
            last = (disk + length - 1) // BLOCK_SIZE
            for lpn in range(first, last + 1):
                histogram[self.device.ftl.channel_of(lpn)] += 1
        return dict(histogram)

    def imbalance(self, fs: Filesystem, path: str, file_range: FileRange) -> float:
        """Max-channel load divided by the perfectly-striped load.

        1.0 means perfectly balanced; ``channels`` means everything sits
        on one channel.
        """
        histogram = self.channel_histogram(fs, path, file_range)
        total = sum(histogram.values())
        if total == 0:
            return 1.0
        ideal = total / self.device.params.channels
        return max(histogram.values()) / ideal


def range_is_pba_conflicted(
    inspector: OpenChannelInspector,
    fs: Filesystem,
    path: str,
    file_range: FileRange,
    threshold: float = 1.75,
) -> bool:
    """True when the range's physical placement loses ≥ ``threshold``-fold
    parallelism versus perfect striping."""
    return inspector.imbalance(fs, path, file_range) >= threshold


class PbaAwareFragPicker(FragPicker):
    """FragPicker extended with open-channel (PBA) fragmentation checks."""

    def __init__(
        self,
        fs: Filesystem,
        config: FragPickerConfig = FragPickerConfig(),
        imbalance_threshold: float = 1.75,
    ) -> None:
        super().__init__(fs, config)
        self.inspector = OpenChannelInspector(fs.device)
        self.imbalance_threshold = imbalance_threshold

    def _migrate_one(self, plan, file_range, report, now):
        """Migrate when LBA-fragmented *or* physically conflicted."""
        lba_fragmented = range_is_fragmented(self.fs, plan.path, file_range)
        pba_conflicted = range_is_pba_conflicted(
            self.inspector, self.fs, plan.path, file_range, self.imbalance_threshold
        )
        if self.config.check_fragmentation and not (lba_fragmented or pba_conflicted):
            report.ranges_skipped_contiguous += 1
            yield now
            return
        # force migration through the parent by bypassing its LBA check
        original = self.config
        try:
            object.__setattr__(self, "config", _without_check(original))
            for now in super()._migrate_one(plan, file_range, report, now):
                yield now
        finally:
            object.__setattr__(self, "config", original)


def _without_check(config: FragPickerConfig) -> FragPickerConfig:
    return FragPickerConfig(
        hotness_criterion=config.hotness_criterion,
        io_size=config.io_size,
        readahead_size=config.readahead_size,
        imitate_readahead=config.imitate_readahead,
        merge_overlaps=config.merge_overlaps,
        check_fragmentation=False,
        app=config.app,
    )
