"""Crash safety for the in-place migration path (Section 4.2.2).

On Ext4-style filesystems FragPicker deallocates a range before rewriting
it.  The paper argues this is safe: ranges are block-aligned (so
deallocation zeroes nothing), Ext4's journal keeps the deallocated blocks
unreusable until the transaction commits, and FragPicker "does not delete
the file range lists before guaranteeing the success of defragmentation",
so the data can be recovered (with debugfs) even after sudden power-off.

:class:`MigrationJournal` models that contract: before a range is punched
the journal records the range *and the buffered data*; the entry is
retired only after the rewrite succeeds.  After a crash (an abandoned
migration), :meth:`recover` replays every incomplete entry — reallocating
the range and rewriting the buffered data — leaving the file exactly as it
was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..fs.base import FallocMode, FileHandle, Filesystem
from ..obs import hooks as obs_hooks


@dataclass
class JournalEntry:
    """One in-flight migration chunk."""

    path: str
    ino: int
    offset: int
    length: int
    data: Optional[bytes]  # None for content-free (pattern) files


@dataclass
class RecoveryReport:
    """What a recovery pass repaired."""

    entries_replayed: int = 0
    bytes_restored: int = 0
    entries_skipped: int = 0  # file disappeared since


class MigrationJournal:
    """Range lists + buffered data kept until migration success."""

    def __init__(self) -> None:
        self._entries: Dict[int, JournalEntry] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def pending(self) -> List[JournalEntry]:
        return list(self._entries.values())

    # -- the migration-side protocol -------------------------------------

    def record(self, path: str, ino: int, offset: int, length: int, data: Optional[bytes]) -> int:
        """Persist a chunk about to be punched; returns a token."""
        token = self._next_id
        self._next_id += 1
        self._entries[token] = JournalEntry(path, ino, offset, length, data)
        return token

    def commit(self, token: int) -> None:
        """The rewrite completed: the entry is no longer needed."""
        self._entries.pop(token, None)

    # -- the recovery side -------------------------------------------------

    def recover(self, fs: Filesystem, now: float = 0.0, app: str = "recovery") -> Tuple[float, RecoveryReport]:
        """Replay every incomplete migration chunk (the debugfs step).

        Idempotent: replayed entries are retired as they succeed, so a
        second pass over an already-recovered journal is a no-op.
        """
        report = RecoveryReport()
        obs = obs_hooks.current()
        span = (
            obs.span_start("recovery.replay", now, entries=len(self._entries))
            if obs.enabled else None
        )
        for token in sorted(self._entries):
            entry = self._entries[token]
            if entry.path not in fs.paths or fs.inode_of(entry.path).ino != entry.ino:
                report.entries_skipped += 1
                del self._entries[token]
                continue
            handle = FileHandle(fs, entry.ino, o_direct=True, app=app)
            inode = fs.inode_of(entry.path)
            if inode.lock_holder is not None:
                # the crash left the migration lock behind; recovery owns it
                inode.lock_holder = None
            now = fs.fallocate(
                handle, FallocMode.ALLOCATE, entry.offset, entry.length, now=now
            ).finish_time
            now = fs.write(
                handle, entry.offset, length=entry.length, data=entry.data, now=now
            ).finish_time
            now = fs.fsync(handle, now=now).finish_time
            report.entries_replayed += 1
            report.bytes_restored += entry.length
            del self._entries[token]
        if span is not None:
            obs.recovery_replayed(report.entries_replayed, report.bytes_restored)
            span.attrs.update(
                replayed=report.entries_replayed, skipped=report.entries_skipped
            )
            obs.span_finish(span, now)
        return now, report
