"""FragPicker's migration phase (Section 4.2.2 / 4.2.3).

Out-of-place filesystems (F2FS with IPU off, Btrfs): rewriting data at the
same file offset allocates new blocks — migration is just read + rewrite.

In-place filesystems (Ext4): the blocks would be reused, so FragPicker
buffers the data, punches the range (``fallocate`` deallocate), allocates a
fresh contiguous area (``fallocate`` allocate), and rewrites — all under a
file lock, with the range list retained until success so the data is
recoverable after a crash (the paper's debugfs argument).

Only generic syscalls are used: ``read``/``write``/``fallocate``/FIEMAP —
no filesystem-internal functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..constants import MIB, block_align_down
from ..fs.base import FallocMode, FileHandle, Filesystem
from .range_list import FileRange
from .recovery import MigrationJournal


@dataclass
class MigrationOutcome:
    """What migrating one range cost."""

    finish_time: float
    moved_bytes: int


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient migration faults.

    A range whose migration raises a :class:`~repro.errors.FaultError` is
    retried up to ``attempts`` total tries, pausing (in virtual time) an
    exponentially growing backoff between tries.  Crashes
    (:class:`~repro.errors.InjectedCrash`) are never retried — nothing
    survives a power-off except the journal.
    """

    #: total tries per range (1 = no retries)
    attempts: int = 3
    #: virtual-time pause before the first retry
    backoff: float = 0.002
    #: backoff growth factor per further retry
    multiplier: float = 2.0

    def delay(self, retry_index: int) -> float:
        """Pause before retry ``retry_index`` (0-based)."""
        return self.backoff * self.multiplier ** retry_index


class Migrator:
    """Executes data migration for one filesystem.

    When a :class:`MigrationJournal` is supplied, every in-place migration
    chunk is journalled before its range is deallocated, making an
    interrupted migration recoverable (Section 4.2.2's crash-safety
    argument).
    """

    def __init__(
        self,
        fs: Filesystem,
        app: str = "fragpicker",
        io_size: int = 1 * MIB,
        journal: Optional[MigrationJournal] = None,
    ) -> None:
        self.fs = fs
        self.app = app
        self.io_size = io_size
        self.journal = journal

    def _out_of_place(self) -> bool:
        """Does a plain rewrite move data on this filesystem right now?"""
        if self.fs.fs_type == "f2fs":
            # FragPicker disables IPU around migration; honour the knob.
            return not getattr(self.fs, "ipu_enabled", False)
        return not getattr(self.fs, "in_place_updates", False)

    def migrate_range(self, path: str, file_range: FileRange, now: float = 0.0) -> MigrationOutcome:
        """Move one analysed range into a contiguous area (blocking)."""
        for now in self.migrate_range_steps(path, file_range, now):
            pass
        return MigrationOutcome(now, file_range.length)

    def migrate_range_steps(self, path: str, file_range: FileRange, now: float = 0.0):
        """Generator form of :meth:`migrate_range`: yields the running
        virtual time after every syscall, so a co-running engine can
        interleave foreground traffic at request granularity."""
        inode = self.fs.inode_of(path)
        start = file_range.start
        # O_DIRECT requires block alignment; an unaligned tail block (rare:
        # the experiments use block-sized files) is left alone — it is a
        # single block and cannot be internally fragmented.
        end = min(file_range.end, block_align_down(inode.size))
        if end <= start:
            yield now
            return
        original_size = inode.size
        handle = FileHandle(self.fs, inode.ino, o_direct=True, app=self.app)
        self.fs.lock_file(path, self.app)
        try:
            steps = (
                self._rewrite(handle, start, end, now)
                if self._out_of_place()
                else self._punch_and_rewrite(handle, path, start, end, now)
            )
            for now in steps:
                yield now
            now = self.fs.fsync(handle, now=now).finish_time
            yield now
        finally:
            self.fs.unlock_file(path, self.app)
        if inode.size != original_size:
            # the rewrite is block-granular; never let it extend the file
            now = self.fs.truncate(handle, original_size, now=now).finish_time
            yield now

    # -- strategies ----------------------------------------------------------

    def _rewrite(self, handle: FileHandle, start: int, end: int, now: float):
        """Read + rewrite at the same offsets (out-of-place filesystems)."""
        for chunk_start, chunk_len in self._chunks(start, end):
            want_data = self.fs.page_store.any_content(handle.ino, chunk_start, chunk_len)
            read = self.fs.read(handle, chunk_start, chunk_len, now=now, want_data=want_data)
            now = read.finish_time
            yield now
            now = self.fs.write(
                handle, chunk_start, length=chunk_len, data=read.data, now=now
            ).finish_time
            yield now

    def _punch_and_rewrite(self, handle: FileHandle, path: str, start: int, end: int, now: float):
        """Buffer, deallocate, reallocate contiguously, rewrite (Ext4 path)."""
        for chunk_start, chunk_len in self._chunks(start, end):
            # 1. buffer the data (the paper's "internal buffer")
            want_data = self.fs.page_store.any_content(handle.ino, chunk_start, chunk_len)
            read = self.fs.read(handle, chunk_start, chunk_len, now=now, want_data=want_data)
            now = read.finish_time
            yield now
            # journal the chunk before touching the mapping: a crash
            # between punch and rewrite stays recoverable
            token = None
            if self.journal is not None:
                token = self.journal.record(path, handle.ino, chunk_start, chunk_len, read.data)
            # 2. deallocate the old, scattered blocks
            now = self.fs.fallocate(
                handle, FallocMode.PUNCH_HOLE, chunk_start, chunk_len, now=now
            ).finish_time
            # 3. allocate a fresh contiguous area
            now = self.fs.fallocate(
                handle, FallocMode.ALLOCATE, chunk_start, chunk_len, now=now
            ).finish_time
            # 4. rewrite the buffered data into it
            now = self.fs.write(
                handle, chunk_start, length=chunk_len, data=read.data, now=now
            ).finish_time
            if token is not None:
                self.journal.commit(token)
            yield now

    def _chunks(self, start: int, end: int):
        pos = start
        while pos < end:
            take = min(self.io_size, end - pos)
            yield pos, take
            pos += take
