"""Fragmentation checking (Section 4.2.1).

Before migrating a range, FragPicker asks FIEMAP whether the backing LBAs
are already sequential — migrating contiguous data would be pure waste.
This is the filefrag-based check: obtain the LBAs for the file range and
test their sequentiality.
"""

from __future__ import annotations

from ..fs.base import Filesystem
from ..fs.fiemap import is_fragmented
from .range_list import FileRange


def range_is_fragmented(fs: Filesystem, path: str, file_range: FileRange) -> bool:
    """True when the range's mapped blocks span discontiguous LBA runs."""
    return is_fragmented(fs, path, file_range.start, file_range.end - file_range.start)
