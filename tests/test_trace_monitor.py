"""BCC-style syscall monitoring."""

from repro.constants import KIB
from repro.trace import SyscallMonitor


def test_records_reads_and_writes(fs):
    handle = fs.open("/f", o_direct=True, create=True, app="db")
    with SyscallMonitor(fs) as monitor:
        now = fs.write(handle, 0, 8 * KIB).finish_time
        fs.read(handle, 4 * KIB, 4 * KIB, now=now)
    assert len(monitor.records) == 2
    write, read = monitor.records
    assert write.io_type == "write" and write.offset == 0 and write.size == 8 * KIB
    assert read.io_type == "read" and read.offset == 4 * KIB
    assert read.o_direct and read.app == "db"
    assert read.ino == fs.inode_of("/f").ino


def test_app_filter(fs):
    a = fs.open("/f", o_direct=True, create=True, app="a")
    b = fs.open("/f", o_direct=True, app="b")
    with SyscallMonitor(fs, apps={"a"}) as monitor:
        now = fs.write(a, 0, 4 * KIB).finish_time
        fs.read(b, 0, 4 * KIB, now=now)
    assert len(monitor.records) == 1
    assert monitor.records[0].app == "a"


def test_detached_monitor_sees_nothing(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    monitor = SyscallMonitor(fs)
    monitor.attach()
    fs.write(handle, 0, 4 * KIB)
    monitor.detach()
    fs.write(handle, 4 * KIB, 4 * KIB)
    assert len(monitor.records) == 1


def test_by_inode_grouping(fs):
    a = fs.open("/a", o_direct=True, create=True)
    b = fs.open("/b", o_direct=True, create=True)
    with SyscallMonitor(fs) as monitor:
        now = fs.write(a, 0, 4 * KIB).finish_time
        now = fs.write(b, 0, 4 * KIB, now=now).finish_time
        fs.write(a, 4 * KIB, 4 * KIB, now=now)
    grouped = monitor.by_inode()
    assert len(grouped[fs.inode_of("/a").ino]) == 2
    assert len(grouped[fs.inode_of("/b").ino]) == 1


def test_monitoring_costs_latency(fs):
    """The eBPF probe adds per-syscall overhead (paper: <2%)."""
    handle = fs.open("/f", o_direct=True, create=True)
    now = fs.write(handle, 0, 4 * KIB).finish_time
    bare = fs.read(handle, 0, 4 * KIB, now=now)
    with SyscallMonitor(fs):
        probed = fs.read(handle, 0, 4 * KIB, now=bare.finish_time)
    assert probed.latency > bare.latency


def test_zero_size_ios_ignored(fs):
    empty = fs.open("/empty", create=True)
    with SyscallMonitor(fs) as monitor:
        fs.read(empty, 0, 4 * KIB)  # EOF: size clamps to 0
    assert monitor.records == []


def test_probe_emits_into_obs_event_ring(fs):
    """With obs enabled, probe records mirror into the shared event ring."""
    from repro.obs import hooks
    from repro.obs.hooks import Instrumentation

    try:
        with hooks.use(Instrumentation()) as obs:
            handle = fs.open("/f", o_direct=True, create=True, app="db")
            with SyscallMonitor(fs) as monitor:
                now = fs.write(handle, 0, 8 * KIB).finish_time
                fs.read(handle, 0, 4 * KIB, now=now)
            names = [e.name for e in obs.spans.events if e.name.startswith("syscall.")]
        assert "syscall.write" in names and "syscall.read" in names
        ring = [e for e in obs.spans.events if e.name == "syscall.read"]
        assert ring[0].track == "syscall"
        assert ring[0].attrs["app"] == "db"
        assert ring[0].attrs["ino"] == fs.inode_of("/f").ino
        assert len(monitor.records) == 2  # analysis input is untouched
    finally:
        hooks.disable()
