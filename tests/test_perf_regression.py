"""The wall-clock perf-regression pipeline (documents, compare, CLI)."""

import json

import pytest

from repro.cli import main
from repro.perf import regression
from repro.perf.suite import suite_config


def _doc(label, layers, total, config=None):
    return regression.build_document(
        label=label,
        config=config if config is not None else {"pinned": True},
        layers=layers,
        total_wall_s=total,
    )


def test_document_roundtrip(tmp_path):
    doc = _doc("base", {"splitter": {"ops": 10, "wall_s": 1.0, "ops_per_sec": 10.0}}, 1.0)
    path = tmp_path / "PERF_base.json"
    regression.save(str(path), doc)
    loaded = regression.load(str(path))
    assert loaded == doc
    assert loaded["schema"] == regression.SCHEMA
    assert loaded["fingerprint"] == regression.config_fingerprint({"pinned": True})


def test_load_rejects_foreign_schema(tmp_path):
    path = tmp_path / "PERF_bad.json"
    path.write_text(json.dumps({"schema": "repro.bench/v1"}))
    with pytest.raises(ValueError, match="unsupported perf schema"):
        regression.load(str(path))


def test_compare_is_direction_aware():
    base = _doc("base", {
        "splitter": {"ops": 100, "wall_s": 1.0, "ops_per_sec": 100.0},
        "extent_map": {"ops": 100, "wall_s": 1.0, "ops_per_sec": 100.0},
    }, 2.0)
    cand = _doc("cand", {
        # throughput UP: an improvement, never a regression
        "splitter": {"ops": 100, "wall_s": 0.25, "ops_per_sec": 400.0},
        # throughput DOWN past the threshold: a regression
        "extent_map": {"ops": 100, "wall_s": 2.0, "ops_per_sec": 50.0},
    }, 2.25)
    comparison = regression.compare(base, cand, threshold=0.20)
    by_layer = {f.layer: f for f in comparison.findings}
    assert not by_layer["splitter"].regression
    assert by_layer["extent_map"].regression
    # total wall going UP past the threshold is also a regression
    assert by_layer["suite"].metric == "total_wall_s"
    assert not by_layer["suite"].regression  # 2.0 -> 2.25 is +12.5% < 20%
    assert not comparison.ok
    assert "REGRESSION" in comparison.report()


def test_compare_flags_total_wall_increase():
    base = _doc("base", {}, 1.0)
    cand = _doc("cand", {}, 1.5)
    comparison = regression.compare(base, cand, threshold=0.20)
    (finding,) = comparison.findings
    assert finding.metric == "total_wall_s" and finding.regression
    assert comparison.speedup == pytest.approx(1.0 / 1.5)


def test_compare_reports_speedup_and_stays_ok():
    base = _doc("base", {"fs": {"ops": 10, "wall_s": 2.0, "ops_per_sec": 5.0}}, 2.0)
    cand = _doc("cand", {"fs": {"ops": 10, "wall_s": 0.5, "ops_per_sec": 20.0}}, 0.5)
    comparison = regression.compare(base, cand)
    assert comparison.ok
    assert comparison.speedup == pytest.approx(4.0)
    assert "4.00x" in comparison.report()


def test_compare_warns_on_fingerprint_and_python_mismatch():
    base = _doc("base", {}, 1.0, config={"smoke": True})
    cand = _doc("cand", {}, 1.0, config={"smoke": False})
    cand["python"] = "0.0.0"
    comparison = regression.compare(base, cand)
    assert any("fingerprints differ" in w for w in comparison.warnings)
    assert any("python versions differ" in w for w in comparison.warnings)


def test_suite_config_is_pinned_and_fingerprintable():
    # the pinned configs must be stable across calls (deterministic suite)
    assert suite_config(smoke=True) == suite_config(smoke=True)
    assert suite_config(smoke=False) == suite_config(smoke=False)
    assert (regression.config_fingerprint(suite_config(smoke=True))
            != regression.config_fingerprint(suite_config(smoke=False)))


def test_cli_perf_smoke_writes_document(capsys, tmp_path):
    path = tmp_path / "PERF_smoke.json"
    assert main(["perf", "--smoke", "--no-profile",
                 "--label", "smoketest", "--json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "total" in out
    doc = regression.load(str(path))
    assert doc["label"] == "smoketest"
    assert doc["total_wall_s"] > 0
    for layer in ("syscalls", "extent_map", "free_space", "page_cache",
                  "splitter", "device_models", "end_to_end"):
        assert doc["layers"][layer]["ops_per_sec"] > 0


def test_cli_perf_compare_detects_regression(capsys, tmp_path):
    base_path = tmp_path / "PERF_a.json"
    cand_path = tmp_path / "PERF_b.json"
    regression.save(str(base_path), _doc(
        "a", {"fs": {"ops": 10, "wall_s": 1.0, "ops_per_sec": 10.0}}, 1.0))
    regression.save(str(cand_path), _doc(
        "b", {"fs": {"ops": 10, "wall_s": 4.0, "ops_per_sec": 2.5}}, 4.0))
    assert main(["perf", "--compare", str(base_path), str(cand_path)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # --warn-only downgrades the exit code but still prints the findings
    assert main(["perf", "--compare", str(base_path), str(cand_path),
                 "--warn-only"]) == 0


def test_cli_perf_compare_clean_run_exits_zero(capsys, tmp_path):
    base_path = tmp_path / "PERF_a.json"
    cand_path = tmp_path / "PERF_b.json"
    regression.save(str(base_path), _doc(
        "a", {"fs": {"ops": 10, "wall_s": 1.0, "ops_per_sec": 10.0}}, 1.0))
    regression.save(str(cand_path), _doc(
        "b", {"fs": {"ops": 10, "wall_s": 0.5, "ops_per_sec": 20.0}}, 0.5))
    assert main(["perf", "--compare", str(base_path), str(cand_path)]) == 0
    assert "speedup" in capsys.readouterr().out
