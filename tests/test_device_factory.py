"""Device presets."""

import pytest

from repro.device import DEVICE_PRESETS, make_device
from repro.errors import InvalidArgument


@pytest.mark.parametrize("kind", sorted(DEVICE_PRESETS))
def test_presets_construct(kind):
    device = make_device(kind)
    assert device.capacity > 0
    assert device.name == kind


def test_custom_capacity():
    device = make_device("flash", capacity=1 << 30)
    assert device.capacity == 1 << 30


def test_unknown_kind():
    with pytest.raises(InvalidArgument):
        make_device("tape")


def test_queuing_flags_match_paper():
    assert make_device("flash").supports_queuing
    assert make_device("optane").supports_queuing
    assert not make_device("microsd").supports_queuing
    assert not make_device("hdd").supports_queuing
