"""Page-cache pressure: dirty eviction must trigger writeback."""

import pytest

from repro.constants import GIB, KIB
from repro.device import make_device
from repro.fs import make_filesystem


def tight_fs(pages=16):
    device = make_device("optane", capacity=1 * GIB)
    return make_filesystem("ext4", device, page_cache_pages=pages)


def test_dirty_eviction_writes_back():
    fs = tight_fs(pages=16)
    handle = fs.open("/f", create=True)
    now = 0.0
    # dirty far more pages than the cache holds
    for i in range(64):
        now = fs.write(handle, i * 4 * KIB, 4 * KIB, now=now).finish_time
    # most pages had to be written back under pressure
    assert fs.device.stats.write_bytes >= 40 * 4 * KIB
    # whatever remains dirty fits in the cache
    assert fs.page_cache.dirty_count() <= 16


def test_evicted_data_survives():
    fs = tight_fs(pages=8)
    handle = fs.open("/f", create=True)
    now = 0.0
    payload = {}
    for i in range(32):
        data = bytes([i + 1]) * (4 * KIB)
        payload[i] = data
        now = fs.write(handle, i * 4 * KIB, data=data, now=now).finish_time
    now = fs.fsync(handle, now=now).finish_time
    fs.drop_caches()
    for i in (0, 7, 15, 31):
        got = fs.read(handle, i * 4 * KIB, 4 * KIB, now=now, want_data=True).data
        assert got == payload[i], i


def test_read_pressure_evicts_clean_pages_silently():
    fs = tight_fs(pages=8)
    handle = fs.open("/f", o_direct=True, create=True)
    now = fs.write(handle, 0, 256 * KIB).finish_time
    reader = fs.open("/f")
    for i in range(8):
        now = fs.read(reader, i * 32 * KIB, 32 * KIB, now=now).finish_time
    assert len(fs.page_cache) <= 8
    assert fs.page_cache.dirty_count() == 0


def test_hdd_warning():
    fs = make_filesystem("ext4", make_device("hdd"))
    handle = fs.open("/f", o_direct=True, create=True)
    dummy = fs.open("/d", o_direct=True, create=True)
    now = 0.0
    for i in range(4):
        now = fs.write(handle, i * 4 * KIB, 4 * KIB, now=now).finish_time
        now = fs.write(dummy, i * 4 * KIB, 4 * KIB, now=now).finish_time
    from repro.core import FragPicker

    picker = FragPicker(fs)
    with pytest.warns(RuntimeWarning, match="seek-time"):
        picker.defragment_bypass(["/f"], now=now)
