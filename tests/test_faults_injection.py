"""Injector behaviour at every layer the fault plane reaches."""

import pytest

from repro.constants import GIB, KIB
from repro.device import make_device
from repro.errors import DeviceIOError, InjectedCrash, TornWriteError
from repro.faults import FaultPlan, FaultRule, NullFaultPlane, hooks
from repro.fs import make_filesystem
from repro.fs.fiemap import fiemap
from repro.obs import hooks as obs_hooks
from repro.obs.hooks import Instrumentation


@pytest.fixture(autouse=True)
def _disarm_after():
    yield
    hooks.disarm()
    obs_hooks.disable()


def fresh_fs(plan=None, device="optane", active=True):
    """Build a filesystem whose layers captured a live plane."""
    plane = hooks.arm(plan if plan is not None else FaultPlan(), active=False)
    fs = make_filesystem("ext4", make_device(device, capacity=1 * GIB))
    if active:
        plane.activate()
    return fs, plane


def write_file(fs, path="/victim", blocks=4, now=0.0):
    handle = fs.open(path, o_direct=True, create=True)
    for i in range(blocks):
        payload = bytes([i + 1]) * (4 * KIB)
        now = fs.write(handle, i * 4 * KIB, data=payload, now=now).finish_time
    return handle, now


# ----------------------------------------------------------------------
# device layer
# ----------------------------------------------------------------------

def test_device_io_error():
    fs, _ = fresh_fs(FaultPlan().io_error("device.submit", op="write"))
    with pytest.raises(DeviceIOError):
        write_file(fs)


def test_device_crash():
    fs, _ = fresh_fs(FaultPlan().add(FaultRule(site="device.submit", kind="crash")))
    with pytest.raises(InjectedCrash):
        write_file(fs)


def test_device_latency_spike_slows_the_batch():
    fs_clean, _ = fresh_fs(FaultPlan())
    _, clean_finish = write_file(fs_clean)
    fs_slow, plane = fresh_fs(FaultPlan().latency_spike("device.submit", latency=0.5))
    _, slow_finish = write_file(fs_slow)
    assert plane.stats.total == 1
    assert slow_finish == pytest.approx(clean_finish + 0.5)


def test_device_latency_uses_model_characteristic_spike():
    # no explicit duration: the device model's pathology applies
    fs, plane = fresh_fs(FaultPlan().latency_spike("device.submit"), device="hdd")
    assert fs.device.fault_latency_spike == 0.050
    assert plane.stats.total == 0


def test_device_torn_write_truncates_the_batch():
    fs, plane = fresh_fs(FaultPlan().torn_write("device.submit", torn_fraction=0.5))
    with pytest.raises(TornWriteError) as info:
        handle = fs.open("/t", o_direct=True, create=True)
        fs.write(handle, 0, data=b"\xaa" * (16 * KIB))
    assert 0 < info.value.bytes_written < 16 * KIB
    assert plane.stats.by_site_kind == {"device.submit.torn": 1}


# ----------------------------------------------------------------------
# fs layer
# ----------------------------------------------------------------------

def test_fs_write_io_error():
    fs, _ = fresh_fs(FaultPlan().io_error("fs.write"))
    with pytest.raises(DeviceIOError):
        write_file(fs)


def test_fs_torn_write_persists_only_a_prefix():
    fs, _ = fresh_fs(FaultPlan().torn_write("fs.write", torn_fraction=0.5), active=False)
    handle, now = write_file(fs, blocks=1)
    hooks.current().activate()
    with pytest.raises(TornWriteError) as info:
        fs.write(handle, 0, data=b"\xbb" * (8 * KIB), now=now)
    torn = info.value.bytes_written
    assert torn == 4 * KIB  # half of 8 KiB, block-aligned
    stored = fs.page_store.read(handle.ino, 0, 8 * KIB)
    assert stored[:torn] == b"\xbb" * torn
    assert stored[torn:torn + 4 * KIB] != b"\xbb" * (4 * KIB)


def test_fs_fallocate_io_error():
    from repro.fs.base import FallocMode
    fs, _ = fresh_fs(FaultPlan().io_error("fs.fallocate"))
    handle, now = write_file(fs)
    with pytest.raises(DeviceIOError):
        fs.fallocate(handle, FallocMode.PUNCH_HOLE, 0, 4 * KIB, now=now)


def test_fs_fsync_crash():
    fs, _ = fresh_fs(FaultPlan().add(FaultRule(site="fs.fsync", kind="crash")))
    handle, now = write_file(fs)
    with pytest.raises(InjectedCrash):
        fs.fsync(handle, now=now)


def test_fiemap_io_error():
    fs, _ = fresh_fs(FaultPlan().io_error("fs.fiemap"))
    write_file(fs)
    with pytest.raises(DeviceIOError):
        fiemap(fs, "/victim")


# ----------------------------------------------------------------------
# triggers and filters
# ----------------------------------------------------------------------

def test_after_ops_fires_exactly_once_at_the_nth_op():
    fs, plane = fresh_fs(FaultPlan().io_error("fs.write", after_ops=3))
    handle = fs.open("/n", o_direct=True, create=True)
    now = fs.write(handle, 0, data=b"\x01" * (4 * KIB)).finish_time
    now = fs.write(handle, 4 * KIB, data=b"\x02" * (4 * KIB), now=now).finish_time
    with pytest.raises(DeviceIOError):
        fs.write(handle, 8 * KIB, data=b"\x03" * (4 * KIB), now=now)
    # max_fires=1 by default: the 4th write sails through
    now = fs.write(handle, 8 * KIB, data=b"\x03" * (4 * KIB), now=now).finish_time
    assert plane.stats.total == 1


def test_lba_filter_targets_a_range():
    plan = FaultPlan().io_error("fs.write", lba=(8 * KIB, 12 * KIB))
    fs, plane = fresh_fs(plan)
    handle = fs.open("/lba", o_direct=True, create=True)
    now = fs.write(handle, 0, data=b"\x01" * (4 * KIB)).finish_time  # misses
    with pytest.raises(DeviceIOError):
        fs.write(handle, 8 * KIB, data=b"\x02" * (4 * KIB), now=now)  # overlaps
    assert plane.stats.total == 1


def test_op_filter_spares_other_ops():
    fs, plane = fresh_fs(FaultPlan().io_error("device.submit", op="read"))
    handle, now = write_file(fs)  # writes only: no fire
    assert plane.stats.total == 0
    with pytest.raises(DeviceIOError):
        fs.read(handle, 0, 4 * KIB, now=now)


def test_at_time_gates_on_virtual_time():
    plan = FaultPlan().add(FaultRule(site="fs.write", kind="io_error", at_time=100.0))
    fs, plane = fresh_fs(plan)
    write_file(fs)  # virtual time well below 100
    assert plane.stats.total == 0
    handle = fs.open("/late", o_direct=True, create=True)
    with pytest.raises(DeviceIOError):
        fs.write(handle, 0, data=b"\x01" * (4 * KIB), now=200.0)


def test_probability_stream_is_seeded():
    def fires_for(seed):
        plan = FaultPlan(seed).latency_spike(
            "fs.write", latency=0.0, probability=0.5, max_fires=0)
        fs, plane = fresh_fs(plan)
        write_file(fs, blocks=16)
        return [fire.now for fire in plane.stats.fires]

    assert fires_for(5) == fires_for(5)
    assert fires_for(5) != fires_for(6)


def test_inactive_plane_sees_nothing():
    fs, plane = fresh_fs(FaultPlan().io_error("fs.write"), active=False)
    write_file(fs)  # no raise: the plane is not active yet
    assert plane.stats.total == 0
    assert plane.ops_seen("fs") == 0


def test_ops_seen_counts_only_while_active():
    fs, plane = fresh_fs(FaultPlan())
    write_file(fs, blocks=3)
    assert plane.ops_seen("fs") == 3
    assert plane.ops_seen("fs.write") == 3
    assert plane.ops_seen("device") > 0


# ----------------------------------------------------------------------
# defaults and observability
# ----------------------------------------------------------------------

def test_default_plane_is_null():
    assert isinstance(hooks.current(), NullFaultPlane) or hooks.current() is hooks.NULL
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    assert fs.faults.enabled is False
    assert fs.device.faults.enabled is False


def test_fires_surface_in_obs_metrics():
    with obs_hooks.use(Instrumentation()) as obs:
        fs, _ = fresh_fs(FaultPlan().latency_spike("fs.write", latency=0.0))
        write_file(fs)
    assert obs.registry.counter("faults.injected.total").value == 1
    assert obs.registry.counter("faults.injected.fs.write.latency").value == 1
