"""The analysis phase: alignment, readahead imitation, merging."""

from repro.constants import BLOCK_SIZE, KIB
from repro.core import FileRange, analyze_records
from repro.core.analysis import AnalysisPhase
from repro.trace.records import IORecord


def rec(ino, offset, size, io_type="read", o_direct=True, t=0.0):
    return IORecord(io_type, ino, offset, size, o_direct, "app", t)


def make_file(fs, path="/f", size=1024 * KIB):
    handle = fs.open(path, o_direct=True, create=True)
    fs.write(handle, 0, size)
    return fs.inode_of(path).ino


def test_block_alignment(fs):
    ino = make_file(fs)
    out = analyze_records(fs, [rec(ino, 1000, 5000)])
    ranges = out[ino].ranges
    assert ranges == [FileRange(0, 8 * KIB, 1)]
    assert all(r.start % BLOCK_SIZE == 0 and r.end % BLOCK_SIZE == 0 for r in ranges)


def test_clamped_to_file_size(fs):
    ino = make_file(fs, size=16 * KIB)
    out = analyze_records(fs, [rec(ino, 12 * KIB, 64 * KIB)])
    assert out[ino].ranges == [FileRange(12 * KIB, 16 * KIB, 1)]


def test_overlapping_ios_merge_with_counts(fs):
    ino = make_file(fs)
    records = [rec(ino, 0, 8 * KIB), rec(ino, 4 * KIB, 8 * KIB)]
    out = analyze_records(fs, [
        # random buffered reads (not sequential) keep their own sizes
        rec(ino, 0, 8 * KIB), rec(ino, 4 * KIB, 8 * KIB)
    ])
    assert out[ino].ranges == [FileRange(0, 12 * KIB, 2)]


def test_buffered_sequential_reads_expanded(fs):
    """32 KiB buffered sequential reads become 128 KiB ranges, and reads
    inside the imitated window are dropped (page cache hits)."""
    ino = make_file(fs)
    records = [
        rec(ino, i * 32 * KIB, 32 * KIB, o_direct=False, t=float(i))
        for i in range(8)
    ]
    out = analyze_records(fs, records)
    assert out[ino].ranges == [
        FileRange(0, 128 * KIB, 1),
        FileRange(128 * KIB, 256 * KIB, 1),
    ]


def test_o_direct_reads_not_expanded(fs):
    ino = make_file(fs)
    records = [rec(ino, i * 32 * KIB, 32 * KIB, t=float(i)) for i in range(4)]
    out = analyze_records(fs, records)
    assert out[ino].ranges == [
        FileRange(i * 32 * KIB, (i + 1) * 32 * KIB, 1) for i in range(4)
    ]


def test_writes_recorded_as_is(fs):
    ino = make_file(fs)
    out = analyze_records(fs, [rec(ino, 0, 64 * KIB, io_type="write", o_direct=False)])
    assert out[ino].ranges == [FileRange(0, 64 * KIB, 1)]


def test_readahead_imitation_can_be_disabled(fs):
    ino = make_file(fs)
    records = [rec(ino, i * 32 * KIB, 32 * KIB, o_direct=False, t=float(i)) for i in range(4)]
    phase = AnalysisPhase(imitate_readahead=False)
    out = phase.run(fs, records)
    assert len(out[ino].ranges) == 4


def test_unknown_inode_dropped(fs):
    make_file(fs)
    out = analyze_records(fs, [rec(99999, 0, 4 * KIB)])
    assert out == {}


def test_inode_filter(fs):
    ino_a = make_file(fs, "/a")
    ino_b = make_file(fs, "/b")
    records = [rec(ino_a, 0, 4 * KIB), rec(ino_b, 0, 4 * KIB)]
    out = analyze_records(fs, records, inodes=[ino_a])
    assert set(out) == {ino_a}


def test_random_buffered_read_resets_window(fs):
    ino = make_file(fs)
    records = [
        rec(ino, 0, 32 * KIB, o_direct=False, t=0.0),       # seq: expand
        rec(ino, 512 * KIB, 32 * KIB, o_direct=False, t=1.0),  # random
    ]
    out = analyze_records(fs, records)
    assert FileRange(512 * KIB, 544 * KIB, 1) in out[ino].ranges
