"""The crash-consistency harness and seeded campaigns."""

import pytest

from repro.faults.campaign import (
    CampaignConfig,
    run_campaign,
    survival_report,
)
from repro.faults.crashpoints import (
    build_scenario,
    count_migration_syscalls,
    crash_sweep,
)
from repro.fs.fiemap import fragment_count


def small_sweep(device, tool, **kwargs):
    return crash_sweep(device=device, tool=tool, files=1, pieces=6, **kwargs)


def test_scenario_files_are_fragmented_and_content_bearing():
    scenario = build_scenario(files=2, pieces=6)
    for path in scenario.paths:
        assert fragment_count(scenario.fs, path) > 1
    blobs = scenario.contents()
    assert len(set(blobs.values())) == len(blobs)  # distinctive payloads
    assert all(blob.strip(b"\x00") for blob in blobs.values())


def test_syscall_enumeration_counts_the_migration_path():
    total = count_migration_syscalls(lambda: build_scenario(files=1, pieces=6), "fragpicker")
    # at least fiemap + read + punch + alloc + write + fsync
    assert total >= 6


@pytest.mark.parametrize("device", ["hdd", "microsd", "flash", "optane"])
def test_fragpicker_survives_every_crash_point(device):
    report = small_sweep(device, "fragpicker")
    assert report.total >= 6
    assert report.ok, report.summary()
    # every point actually crashed (the plan covers the whole fs path)
    assert all(p.crashed for p in report.points)
    # the crash points land on distinct syscall kinds, not one choke point
    assert len({p.site for p in report.points}) >= 3


def test_journal_carrying_conventional_tool_survives_too():
    report = small_sweep("optane", "conventional")
    assert report.ok, report.summary()


def test_sweep_report_shape():
    report = small_sweep("optane", "fragpicker")
    assert "crash points recovered" in report.summary()
    assert "[OK]" in report.summary()
    doc = report.to_dict()
    assert doc["ok"] is True and doc["failed_points"] == []
    assert doc["points"] == report.total


def test_unknown_tool_rejected():
    with pytest.raises(ValueError):
        crash_sweep(tool="defrag9000")


def test_campaign_survives_and_reports():
    result = run_campaign(CampaignConfig(seed=0, files=2))
    assert result.data_intact
    assert result.pending_after_recovery == 0
    assert result.faults_injected == sum(result.by_site_kind.values())
    doc = result.to_dict()
    assert doc["fingerprint"] == result.fingerprint


def test_survival_report_smoke():
    report = survival_report(smoke=True)
    assert report.ok
    text = report.text()
    assert "SURVIVED" in text
    assert "crash points recovered" in text
    assert '"ok": true' in report.to_json()
