"""Unit tests for repro.obs.spans."""

from repro.obs.spans import SpanRecorder
from repro.sim.clock import Clock


def test_span_nesting_parent_child_depth():
    rec = SpanRecorder()
    outer = rec.start("outer", 0.0)
    child = rec.start("child", 1.0)
    grandchild = rec.start("grandchild", 2.0)
    assert grandchild.parent is child and child.parent is outer
    assert (outer.depth, child.depth, grandchild.depth) == (0, 1, 2)
    rec.finish(grandchild, 3.0)
    rec.finish(child, 4.0)
    rec.finish(outer, 5.0)
    assert [s.name for s in rec.finished_spans()] == ["grandchild", "child", "outer"]
    assert outer.duration == 5.0


def test_tracks_nest_independently():
    rec = SpanRecorder()
    a = rec.start("a", 0.0, track="fg")
    b = rec.start("b", 0.0, track="bg")
    assert b.parent is None  # different track: not a child of a
    assert rec.active("fg") is a
    rec.finish(b, 1.0)
    rec.finish(a, 2.0)
    assert set(rec.tracks()) == {"fg", "bg"}


def test_finish_closes_dangling_children():
    rec = SpanRecorder()
    outer = rec.start("outer", 0.0)
    rec.start("leaked", 1.0)  # never finished explicitly
    rec.finish(outer, 5.0)
    leaked = rec.by_name("leaked")[0]
    assert leaked.finished and leaked.end == 5.0
    assert rec.active() is None


def test_span_context_manager_uses_clock():
    rec = SpanRecorder()
    clock = Clock()
    with rec.span("timed", clock, file="/a") as span:
        clock.advance_by(2.5)
    assert span.start == 0.0 and span.end == 2.5
    assert span.attrs == {"file": "/a"}


def test_event_ring_buffer_is_bounded():
    rec = SpanRecorder(max_events=8)
    for i in range(20):
        rec.event("tick", float(i), seq=i)
    assert len(rec.events) == 8
    assert rec.events[0].attrs["seq"] == 12  # oldest entries evicted


def test_event_ring_wrap_counts_drops_and_feeds_counter():
    from repro.obs.metrics import MetricsRegistry

    rec = SpanRecorder(max_events=4)
    rec.drop_counter = MetricsRegistry().counter("obs.events_dropped")
    for i in range(10):
        rec.event("tick", float(i))
    assert rec.dropped_events == 6  # 10 appended, ring holds 4
    assert rec.drop_counter.value == 6
    rec.clear()
    assert rec.dropped_events == 0  # counter keeps its cumulative value


def test_instrumentation_ring_capacities_are_configurable():
    from repro.obs.hooks import Instrumentation

    obs = Instrumentation(max_spans=3, max_events=5)
    for i in range(8):
        obs.span_finish(obs.span_start(f"s{i}", float(i)), float(i) + 0.5)
        obs.event("e", float(i))
    assert len(obs.spans.spans) == 3
    assert len(obs.spans.events) == 5
    assert obs.registry.counter("obs.events_dropped").value == 3


def test_span_cap_counts_drops():
    rec = SpanRecorder(max_spans=2)
    for i in range(4):
        span = rec.start(f"s{i}", float(i))
        rec.finish(span, float(i) + 1)
    assert len(rec.spans) == 2
    assert rec.dropped_spans == 2


def test_clear_resets_everything():
    rec = SpanRecorder()
    rec.finish(rec.start("s", 0.0), 1.0)
    rec.event("e", 0.5)
    rec.clear()
    assert not rec.spans and not rec.events and rec.active() is None
