"""Equations (1) and (2): CC and NLRS."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidArgument
from repro.stats import correlation_coefficient, nlrs, normalize_to_min


def test_perfect_positive_correlation():
    xs = [1, 2, 3, 4]
    ys = [2, 4, 6, 8]
    assert correlation_coefficient(xs, ys) == pytest.approx(1.0)


def test_perfect_negative_correlation():
    assert correlation_coefficient([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)


def test_zero_correlation_constant_y():
    assert correlation_coefficient([1, 2, 3], [5, 5, 5]) == 0.0


def test_nlrs_is_regression_slope():
    xs = [0, 1, 2, 3]
    ys = [1, 3, 5, 7]  # slope 2
    assert nlrs(xs, ys) == pytest.approx(2.0)


def test_nlrs_constant_x_is_zero():
    assert nlrs([2, 2, 2], [1, 5, 9]) == 0.0


def test_normalize_to_min():
    assert normalize_to_min([2.0, 4.0, 8.0]) == [1.0, 2.0, 4.0]


def test_normalize_rejects_nonpositive():
    with pytest.raises(InvalidArgument):
        normalize_to_min([0.0, 1.0])
    with pytest.raises(InvalidArgument):
        normalize_to_min([])


def test_length_mismatch_rejected():
    with pytest.raises(InvalidArgument):
        correlation_coefficient([1, 2], [1, 2, 3])
    with pytest.raises(InvalidArgument):
        nlrs([1], [1])


finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
# well-separated sample points (avoid catastrophic cancellation noise)
grid = st.integers(-10**6, 10**6).map(float)


@given(st.lists(st.tuples(finite, finite), min_size=2, max_size=50))
def test_cc_bounded(pairs):
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    assert -1.0 - 1e-9 <= correlation_coefficient(xs, ys) <= 1.0 + 1e-9


@given(st.lists(grid, min_size=2, max_size=50, unique=True))
def test_cc_self_is_one(xs):
    assert correlation_coefficient(xs, xs) == pytest.approx(1.0)


@given(
    st.lists(grid, min_size=2, max_size=30, unique=True),
    st.floats(min_value=0.1, max_value=10),
    st.floats(min_value=-100, max_value=100),
)
def test_nlrs_recovers_linear_slope(xs, slope, intercept):
    ys = [slope * x + intercept for x in xs]
    assert nlrs(xs, ys) == pytest.approx(slope, rel=1e-4, abs=1e-6)
