"""snapshot()/delta() round-trips for the legacy per-layer counters.

TrafficCounter (block tracer) and DeviceStats (device) predate repro.obs;
experiments still window them around phases, so their copy semantics must
hold: snapshots are independent copies, and delta(snapshot) isolates
exactly the traffic in between.
"""

from repro.block.request import IoCommand, IoOp
from repro.block.tracer import BlockTracer, TrafficCounter
from repro.device.base import DeviceStats


def _cmd(op, length, tag="t"):
    return IoCommand(op, 0, length, tag)


class TestTrafficCounter:
    def test_snapshot_is_independent_copy(self):
        counter = TrafficCounter()
        counter.account(_cmd(IoOp.READ, 4096))
        snap = counter.snapshot()
        counter.account(_cmd(IoOp.WRITE, 8192))
        assert snap.read_bytes == 4096
        assert snap.write_bytes == 0
        assert counter.write_bytes == 8192

    def test_delta_isolates_window(self):
        counter = TrafficCounter()
        counter.account(_cmd(IoOp.READ, 4096))
        counter.account(_cmd(IoOp.DISCARD, 1024))
        snap = counter.snapshot()
        counter.account(_cmd(IoOp.READ, 4096))
        counter.account(_cmd(IoOp.WRITE, 512))
        counter.account(_cmd(IoOp.DISCARD, 2048))
        delta = counter.delta(snap)
        assert delta.read_bytes == 4096 and delta.read_commands == 1
        assert delta.write_bytes == 512 and delta.write_commands == 1
        assert delta.discard_bytes == 2048 and delta.discard_commands == 1
        # snapshot + delta reconstructs the current totals
        assert snap.read_bytes + delta.read_bytes == counter.read_bytes
        assert snap.discard_commands + delta.discard_commands == counter.discard_commands

    def test_delta_of_snapshot_with_itself_is_zero(self):
        counter = TrafficCounter()
        counter.account(_cmd(IoOp.WRITE, 4096))
        snap = counter.snapshot()
        zero = snap.delta(snap)
        assert zero.total_bytes == 0
        assert zero.read_commands == zero.write_commands == zero.discard_commands == 0

    def test_tracer_tag_counters_roundtrip(self):
        tracer = BlockTracer()
        tracer.observe([_cmd(IoOp.READ, 4096, tag="defrag")])
        before = tracer.tag("defrag").snapshot()
        tracer.observe([_cmd(IoOp.WRITE, 8192, tag="defrag"),
                        _cmd(IoOp.WRITE, 100, tag="other")])
        delta = tracer.tag("defrag").delta(before)
        assert delta.read_bytes == 0
        assert delta.write_bytes == 8192
        assert tracer.total.write_bytes == 8292


class TestDeviceStats:
    def test_snapshot_is_independent_copy(self):
        stats = DeviceStats()
        stats.account(_cmd(IoOp.READ, 4096))
        stats.busy_time += 0.5
        snap = stats.snapshot()
        stats.account(_cmd(IoOp.WRITE, 8192))
        stats.busy_time += 0.25
        assert snap.read_bytes == 4096 and snap.write_bytes == 0
        assert snap.busy_time == 0.5
        assert stats.busy_time == 0.75

    def test_delta_isolates_window(self):
        stats = DeviceStats()
        for _ in range(3):
            stats.account(_cmd(IoOp.READ, 4096))
        stats.busy_time = 1.0
        snap = stats.snapshot()
        stats.account(_cmd(IoOp.WRITE, 8192))
        stats.account(_cmd(IoOp.DISCARD, 512))
        stats.busy_time = 1.75
        delta = stats.delta(snap)
        assert delta.read_bytes == 0 and delta.read_commands == 0
        assert delta.write_bytes == 8192 and delta.write_commands == 1
        assert delta.discard_bytes == 512 and delta.discard_commands == 1
        assert delta.busy_time == 0.75
        assert delta.total_commands == 2
        assert snap.total_commands + delta.total_commands == stats.total_commands
