"""Extent map: mapping, punching, inserting, coalescing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import BLOCK_SIZE as B
from repro.errors import InvalidArgument
from repro.fs import Extent, ExtentMap


def test_extent_alignment_enforced():
    # validation is explicit (hot-path extents skip it); insert() applies
    # it when repro.fs.extent_map.DEBUG_CHECKS is on
    with pytest.raises(InvalidArgument):
        Extent(1, 0, B).validate()
    with pytest.raises(InvalidArgument):
        Extent(0, 0, B + 1).validate()
    with pytest.raises(InvalidArgument):
        Extent(0, 0, 0).validate()


def test_insert_validates_in_debug_mode(monkeypatch):
    from repro.fs import extent_map as extent_map_mod

    monkeypatch.setattr(extent_map_mod, "DEBUG_CHECKS", True)
    m = ExtentMap()
    with pytest.raises(InvalidArgument):
        m.insert(Extent(1, 0, B))


def test_disk_at():
    e = Extent(4 * B, 100 * B, 4 * B)
    assert e.disk_at(4 * B) == 100 * B
    assert e.disk_at(5 * B) == 101 * B
    with pytest.raises(InvalidArgument):
        e.disk_at(8 * B)


def test_map_range_with_holes():
    m = ExtentMap()
    m.insert(Extent(0, 10 * B, 2 * B))
    m.insert(Extent(4 * B, 50 * B, 2 * B))
    pieces = m.map_range(0, 6 * B)
    assert pieces == [(10 * B, 2 * B), (None, 2 * B), (50 * B, 2 * B)]
    assert m.holes(0, 6 * B) == [(2 * B, 2 * B)]
    assert not m.is_fully_mapped(0, 6 * B)
    assert m.is_fully_mapped(0, 2 * B)


def test_map_range_partial_extent():
    m = ExtentMap()
    m.insert(Extent(0, 100 * B, 10 * B))
    assert m.map_range(2 * B, 3 * B) == [(102 * B, 3 * B)]


def test_insert_replaces_overlap():
    m = ExtentMap()
    m.insert(Extent(0, 100 * B, 4 * B))
    displaced = m.insert(Extent(B, 200 * B, 2 * B))
    assert displaced == [Extent(B, 101 * B, 2 * B)]
    assert m.map_range(0, 4 * B) == [
        (100 * B, B), (200 * B, 2 * B), (103 * B, B)
    ]


def test_insert_coalesces_neighbours():
    m = ExtentMap()
    m.insert(Extent(0, 100 * B, B))
    m.insert(Extent(B, 101 * B, B))
    m.insert(Extent(2 * B, 102 * B, B))
    assert len(m) == 1
    assert m.extents()[0] == Extent(0, 100 * B, 3 * B)


def test_no_coalesce_across_disk_gap():
    m = ExtentMap()
    m.insert(Extent(0, 100 * B, B))
    m.insert(Extent(B, 200 * B, B))
    assert len(m) == 2


def test_punch_middle_splits():
    m = ExtentMap()
    m.insert(Extent(0, 100 * B, 10 * B))
    removed = m.punch(4 * B, 2 * B)
    assert removed == [Extent(4 * B, 104 * B, 2 * B)]
    assert len(m) == 2
    assert m.holes(0, 10 * B) == [(4 * B, 2 * B)]


def test_punch_unaligned_rejected(monkeypatch):
    from repro.fs import extent_map as extent_map_mod

    monkeypatch.setattr(extent_map_mod, "DEBUG_CHECKS", True)
    m = ExtentMap()
    with pytest.raises(InvalidArgument):
        m.punch(1, B)


def test_fragment_count_merges_contiguous():
    m = ExtentMap()
    m.insert(Extent(0, 100 * B, B))
    m.insert(Extent(B, 101 * B, B))    # contiguous: same fragment
    m.insert(Extent(2 * B, 500 * B, B))  # jump: new fragment
    assert m.fragment_count() == 2


def test_preceding():
    m = ExtentMap()
    m.insert(Extent(0, 100 * B, 2 * B))
    m.insert(Extent(10 * B, 200 * B, 2 * B))
    assert m.preceding(5 * B) == Extent(0, 100 * B, 2 * B)
    assert m.preceding(0) is None
    assert m.preceding(100 * B).disk_offset == 200 * B


# ---------------------------------------------------------------------------
# model-based property test: the map must agree with a naive page dict
# ---------------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "punch"]),
        st.integers(0, 120),   # start page
        st.integers(1, 16),    # page count
        st.integers(0, 5000),  # disk page
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops)
def test_matches_naive_model(operations):
    m = ExtentMap()
    model = {}
    for op, start, count, disk in operations:
        if op == "insert":
            m.insert(Extent(start * B, disk * B, count * B))
            for i in range(count):
                model[start + i] = disk + i
        else:
            m.punch(start * B, count * B)
            for i in range(count):
                model.pop(start + i, None)
        m.check_invariants()
    for page in range(0, 140):
        got = m.map_range(page * B, B)[0][0]
        want = model.get(page)
        assert got == (want * B if want is not None else None), page
    assert m.mapped_bytes == len(model) * B
