"""The migration phase: both strategies, locking, data integrity."""

import pytest

from repro.constants import KIB
from repro.core import FileRange
from repro.core.migration import Migrator
from repro.device import make_device
from repro.constants import GIB
from repro.errors import FileLocked
from repro.fs import make_filesystem


def fragment(fs, path="/f", pieces=8, piece=4 * KIB, data=False):
    handle = fs.open(path, o_direct=True, create=True)
    dummy = fs.open(path + ".d", o_direct=True, create=True)
    now = 0.0
    for i in range(pieces):
        payload = bytes([i % 251]) * piece if data else None
        now = fs.write(handle, i * piece, length=piece, data=payload, now=now).finish_time
        now = fs.write(dummy, i * piece, piece, now=now).finish_time
    return now


def test_migration_defragments_ext4(fs):
    now = fragment(fs)
    assert fs.inode_of("/f").fragment_count() == 8
    migrator = Migrator(fs)
    outcome = migrator.migrate_range("/f", FileRange(0, 32 * KIB), now=now)
    assert fs.inode_of("/f").fragment_count() == 1
    assert outcome.finish_time > now


def test_migration_defragments_out_of_place():
    fs = make_filesystem("btrfs", make_device("optane", capacity=1 * GIB))
    now = fragment(fs)
    Migrator(fs).migrate_range("/f", FileRange(0, 32 * KIB), now=now)
    assert fs.inode_of("/f").fragment_count() == 1


def test_migration_disables_f2fs_ipu_via_orchestrator():
    """The Migrator honours the IPU knob state it finds."""
    fs = make_filesystem("f2fs", make_device("flash", capacity=1 * GIB))
    now = fragment(fs)
    # with IPU on, a plain rewrite would not move data; the Migrator must
    # use the punch path (or the caller disables IPU, as FragPicker does)
    fs.set_ipu(False)
    Migrator(fs).migrate_range("/f", FileRange(0, 32 * KIB), now=now)
    assert fs.inode_of("/f").fragment_count() == 1


def test_content_survives_migration(fs):
    now = fragment(fs, data=True)
    handle = fs.open("/f")
    before = fs.read(handle, 0, 32 * KIB, want_data=True, now=now).data
    Migrator(fs).migrate_range("/f", FileRange(0, 32 * KIB), now=now)
    fs.drop_caches()
    after = fs.read(handle, 0, 32 * KIB, want_data=True, now=now + 1).data
    assert after == before
    assert before[:1] == b"\x00" and before[4096:4097] == b"\x01"


def test_file_size_preserved(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    now = fs.write(handle, 0, 20 * KIB).finish_time
    # unaligned logical size
    fs.inode_of("/f").size = 18 * KIB + 100
    Migrator(fs).migrate_range("/f", FileRange(0, 20 * KIB), now=now)
    assert fs.inode_of("/f").size == 18 * KIB + 100


def test_lock_held_during_migration_steps(fs):
    now = fragment(fs)
    migrator = Migrator(fs)
    steps = migrator.migrate_range_steps("/f", FileRange(0, 32 * KIB), now=now)
    next(steps)
    assert fs.inode_of("/f").lock_holder == "fragpicker"
    with pytest.raises(FileLocked):
        fs.lock_file("/f", "other")
    for _ in steps:
        pass
    assert fs.inode_of("/f").lock_holder is None


def test_migration_io_accounted(fs):
    now = fragment(fs)
    before = fs.tracer.tag("fragpicker").snapshot()
    Migrator(fs).migrate_range("/f", FileRange(0, 32 * KIB), now=now)
    delta = fs.tracer.tag("fragpicker").delta(before)
    assert delta.read_bytes == 32 * KIB
    assert delta.write_bytes >= 32 * KIB  # data + journal lives under "meta"


def test_empty_range_is_noop(fs):
    fs.create("/empty")
    outcome = Migrator(fs).migrate_range("/empty", FileRange(0, 4 * KIB), now=5.0)
    assert outcome.finish_time == 5.0
