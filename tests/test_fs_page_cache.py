"""Page cache: LRU, dirty tracking, eviction, drop_caches."""

from repro.fs import PageCache


def test_probe_miss_then_hit():
    cache = PageCache(capacity_pages=10)
    assert not cache.probe((1, 0))
    cache.fill([(1, 0)])
    assert cache.probe((1, 0))
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_ratio == 0.5


def test_lru_eviction_order():
    cache = PageCache(capacity_pages=2)
    cache.fill([(1, 0), (1, 1)])
    cache.probe((1, 0))        # refresh page 0
    cache.fill([(1, 2)])       # evicts page 1 (least recent)
    assert (1, 0) in cache
    assert (1, 1) not in cache
    assert (1, 2) in cache


def test_dirty_eviction_reported():
    cache = PageCache(capacity_pages=2)
    cache.mark_dirty([(1, 0)])
    cache.fill([(1, 1)])
    evicted = cache.fill([(1, 2)])
    assert evicted == [(1, 0)]
    assert cache.dirty_count() == 0


def test_clean_eviction_silent():
    cache = PageCache(capacity_pages=1)
    cache.fill([(1, 0)])
    assert cache.fill([(1, 1)]) == []


def test_dirty_pages_sorted_per_inode():
    cache = PageCache()
    cache.mark_dirty([(1, 5), (2, 0), (1, 2)])
    assert cache.dirty_pages(1) == [2, 5]
    assert cache.dirty_pages(2) == [0]
    cache.clean(1, [2, 5])
    assert cache.dirty_pages(1) == []


def test_invalidate_inode():
    cache = PageCache()
    cache.mark_dirty([(1, 0), (2, 0)])
    cache.invalidate_inode(1)
    assert (1, 0) not in cache
    assert (2, 0) in cache
    assert cache.dirty_pages(1) == []


def test_drop_clean_keeps_dirty():
    cache = PageCache()
    cache.fill([(1, 0), (1, 1)])
    cache.mark_dirty([(1, 2)])
    dropped = cache.drop_clean()
    assert dropped == 2
    assert (1, 2) in cache
    assert (1, 0) not in cache
