"""Fileserver + grep, FIO writer, and aging."""

import pytest

from repro.constants import GIB, KIB, MIB
from repro.device import make_device
from repro.errors import InvalidArgument
from repro.fs import make_filesystem
from repro.sim import run_concurrently
from repro.workloads.aging import age_filesystem
from repro.workloads.fileserver import FileServer, FileServerConfig, grep_directory
from repro.workloads.fio import fio_sequential_writer


def f2fs():
    return make_filesystem("f2fs", make_device("flash", capacity=1 * GIB))


def test_fileserver_populates_and_fragments():
    fs = f2fs()
    server = FileServer(fs, FileServerConfig(file_count=10, mean_file_size=256 * KIB, seed=1))
    server.populate(0.0)
    assert len(server.paths) == 10
    assert server.total_bytes() > 0
    assert server.average_fragments() > 3


def test_fileserver_contiguous_base():
    fs = f2fs()
    server = FileServer(
        fs, FileServerConfig(file_count=6, mean_file_size=512 * KIB,
                             contiguous_fraction=0.5, churn_rounds=0, seed=2)
    )
    server.populate(0.0)
    # each file's first extent is its streaming-written base: big
    for path in server.paths:
        first = fs.inode_of(path).extent_map.extents()[0]
        assert first.length >= 64 * KIB


def test_grep_reads_everything():
    fs = f2fs()
    server = FileServer(fs, FileServerConfig(file_count=5, mean_file_size=128 * KIB, seed=3))
    now = server.populate(0.0)
    fs.drop_caches()
    now, result = grep_directory(fs, "/fileserver", now)
    assert result.files == 5
    assert result.bytes_read == server.total_bytes()
    assert result.cost_per_gb > 0


def test_grep_empty_directory():
    fs = f2fs()
    with pytest.raises(InvalidArgument):
        grep_directory(fs, "/nothing")


def test_fio_writer_records_bytes():
    fs = f2fs()
    actor = fio_sequential_writer(fs, max_bytes=1 * MIB)
    contexts = run_concurrently({"fio": actor})
    assert contexts["fio"].timeline.total() == 1 * MIB
    assert fs.inode_of("/fio.dat").size == 1 * MIB


def test_fio_needs_bound():
    fs = f2fs()
    with pytest.raises(ValueError):
        fio_sequential_writer(fs)


def test_aging_fragments_free_space():
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    report = age_filesystem(fs, fill_fraction=0.8, delete_fraction=0.5,
                            min_file=16 * KIB, max_file=64 * KIB, seed=1)
    assert report.files_created > 100
    assert report.files_deleted > 50
    assert report.free_runs > 50
    stats = fs.free_space.stats()
    assert stats.run_count == report.free_runs


def test_aging_deterministic():
    fs1 = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    fs2 = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    r1 = age_filesystem(fs1, fill_fraction=0.5, seed=9)
    r2 = age_filesystem(fs2, fill_fraction=0.5, seed=9)
    assert r1 == r2
    assert fs1.free_space.runs() == fs2.free_space.runs()
