"""Algorithm 1 (merging overlapped I/Os) and file range lists."""

import pytest
from hypothesis import given, strategies as st

from repro.core import FileRange, FileRangeList, merge_overlapped
from repro.errors import InvalidArgument


def test_paper_example():
    """Section 4.1.2: I/Os over 1-40 and 31-60 merge into 1-60, count 2."""
    merged = merge_overlapped([FileRange(1, 40), FileRange(31, 60)])
    assert merged == [FileRange(1, 60, 2)]


def test_touching_ranges_stay_separate():
    merged = merge_overlapped([FileRange(0, 40), FileRange(40, 60)])
    assert merged == [FileRange(0, 40, 1), FileRange(40, 60, 1)]


def test_identical_ranges_accumulate_counts():
    merged = merge_overlapped([FileRange(0, 10)] * 5)
    assert merged == [FileRange(0, 10, 5)]


def test_nested_range_absorbed():
    merged = merge_overlapped([FileRange(0, 100), FileRange(20, 30)])
    assert merged == [FileRange(0, 100, 2)]


def test_unsorted_input():
    merged = merge_overlapped([FileRange(50, 60), FileRange(0, 55)])
    assert merged == [FileRange(0, 60, 2)]


def test_counts_carry_through_merge():
    merged = merge_overlapped([FileRange(0, 10, 3), FileRange(5, 20, 2)])
    assert merged == [FileRange(0, 20, 5)]


def test_empty():
    assert merge_overlapped([]) == []


def test_file_range_validation():
    with pytest.raises(InvalidArgument):
        FileRange(10, 10)
    with pytest.raises(InvalidArgument):
        FileRange(-1, 5)
    with pytest.raises(InvalidArgument):
        FileRange(0, 5, 0)


def test_range_list_views():
    rl = FileRangeList(ino=1, path="/f", ranges=[
        FileRange(100, 200, 1), FileRange(0, 50, 9),
    ])
    assert rl.total_bytes == 150
    assert [r.start for r in rl.sorted_by_start()] == [0, 100]
    assert [r.count for r in rl.sorted_by_hotness()] == [9, 1]


entries = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 80), st.integers(1, 4)).map(
        lambda t: FileRange(t[0], t[0] + t[1], t[2])
    ),
    min_size=1,
    max_size=40,
)


@given(entries)
def test_merged_output_sorted_and_disjoint(ranges):
    merged = merge_overlapped(ranges)
    for a, b in zip(merged, merged[1:]):
        assert a.end <= b.start  # disjoint, sorted (touching allowed)


@given(entries)
def test_merge_conserves_counts_and_coverage(ranges):
    merged = merge_overlapped(ranges)
    assert sum(r.count for r in merged) == sum(r.count for r in ranges)
    # every input byte is covered by the output
    for r in ranges:
        assert any(m.start <= r.start and r.end <= m.end for m in merged)
    # output bounds never exceed input bounds
    assert min(m.start for m in merged) == min(r.start for r in ranges)
    assert max(m.end for m in merged) == max(r.end for r in ranges)


@given(entries)
def test_merge_idempotent(ranges):
    once = merge_overlapped(ranges)
    assert merge_overlapped(once) == once
