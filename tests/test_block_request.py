"""IoCommand invariants."""

import pytest

from repro.block import IoCommand, IoOp
from repro.errors import InvalidArgument


def test_end():
    assert IoCommand(IoOp.READ, 100, 50).end == 150


def test_rejects_bad_lengths():
    with pytest.raises(InvalidArgument):
        IoCommand(IoOp.READ, 0, 0)
    with pytest.raises(InvalidArgument):
        IoCommand(IoOp.READ, 0, -5)
    with pytest.raises(InvalidArgument):
        IoCommand(IoOp.READ, -1, 5)


def test_retagged():
    cmd = IoCommand(IoOp.WRITE, 0, 10, "a")
    other = cmd.retagged("b")
    assert other.tag == "b"
    assert other.offset == cmd.offset and other.op == cmd.op


def test_frozen():
    cmd = IoCommand(IoOp.READ, 0, 10)
    with pytest.raises(Exception):
        cmd.length = 20
