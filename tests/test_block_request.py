"""IoCommand invariants."""

import pytest

from repro.block import IoCommand, IoOp
from repro.errors import InvalidArgument


def test_end():
    assert IoCommand(IoOp.READ, 100, 50).end == 150


def test_rejects_bad_lengths():
    # validation is explicit: ranges are checked once at the syscall
    # boundary, not in the per-command hot-path constructor
    with pytest.raises(InvalidArgument):
        IoCommand(IoOp.READ, 0, 0).validate()
    with pytest.raises(InvalidArgument):
        IoCommand(IoOp.READ, 0, -5).validate()
    with pytest.raises(InvalidArgument):
        IoCommand(IoOp.READ, -1, 5).validate()


def test_validate_passthrough():
    cmd = IoCommand(IoOp.READ, 0, 10)
    assert cmd.validate() is cmd


def test_retagged():
    cmd = IoCommand(IoOp.WRITE, 0, 10, "a")
    other = cmd.retagged("b")
    assert other.tag == "b"
    assert other.offset == cmd.offset and other.op == cmd.op


def test_frozen():
    cmd = IoCommand(IoOp.READ, 0, 10)
    with pytest.raises(Exception):
        cmd.length = 20
