"""Goal-directed contiguous allocation edge cases (mid-run goals)."""

import pytest

from repro.constants import BLOCK_SIZE as B
from repro.errors import NoSpaceError
from repro.fs import FreeSpaceManager


def test_goal_inside_run_allocates_at_goal():
    m = FreeSpaceManager(0, 100 * B)
    start = m.alloc_contiguous(10 * B, goal=37 * B)
    assert start == 37 * B
    # the head of the run survived
    assert (0, 37 * B) in m.runs()


def test_goal_inside_run_with_small_tail_moves_on():
    m = FreeSpaceManager(0, 100 * B)
    # free: [0, 50) and [60, 100); goal late in the first run
    m.alloc_at(50 * B, 10 * B)
    start = m.alloc_contiguous(20 * B, goal=45 * B)
    assert start == 60 * B  # tail after goal too small -> next run


def test_goal_wraps_to_pivot_run_start():
    m = FreeSpaceManager(0, 100 * B)
    # only the run containing the goal is big enough
    m.alloc_at(60 * B, 40 * B)
    start = m.alloc_contiguous(50 * B, goal=30 * B)
    assert start == 0  # wrapped back to the pivot run's start


def test_goal_exactly_at_run_start():
    m = FreeSpaceManager(0, 100 * B)
    m.alloc_at(0, 10 * B)
    start = m.alloc_contiguous(5 * B, goal=10 * B)
    assert start == 10 * B


def test_goal_beyond_everything_wraps():
    m = FreeSpaceManager(0, 100 * B)
    start = m.alloc_contiguous(10 * B, goal=99 * B)
    # tail after goal is 1 block; wraps to the run start
    assert start == 0


def test_no_space_still_raised():
    m = FreeSpaceManager(0, 10 * B)
    m.alloc_at(0, 5 * B)
    with pytest.raises(NoSpaceError):
        m.alloc_contiguous(6 * B, goal=7 * B)


def test_invariants_after_mid_run_allocation():
    m = FreeSpaceManager(0, 100 * B)
    m.alloc_contiguous(10 * B, goal=37 * B)
    m.check_invariants()
    m.free(37 * B, 10 * B)
    m.check_invariants()
    assert m.stats().run_count == 1
