"""Reconstruction layer: placement determinism, repairs, fingerprints."""

import pytest

from repro.constants import BLOCK_SIZE, GIB, KIB, MIB
from repro.device import make_device
from repro.errors import InvalidArgument
from repro.fs import make_filesystem
from repro.replay import (
    PlacementPolicy,
    ReplayConfig,
    Reconstructor,
    TraceProfile,
    generate_ops,
    generate_trace,
    run_replay,
    validate,
)
from repro.replay import compare as replay_compare
from repro.types import IoOp


@pytest.fixture
def fs():
    return make_filesystem("ext4", make_device("flash", capacity=1 * GIB))


# ----------------------------------------------------------------------
# placement policy
# ----------------------------------------------------------------------

def test_placement_deterministic_across_instances():
    a = PlacementPolicy(seed=7)
    b = PlacementPolicy(seed=7)
    assert [a.path_for(i) for i in range(50)] == [b.path_for(i) for i in range(50)]


def test_placement_seed_changes_layout():
    a = PlacementPolicy(seed=0)
    b = PlacementPolicy(seed=1)
    paths_a = [a.path_for(i) for i in range(50)]
    paths_b = [b.path_for(i) for i in range(50)]
    assert paths_a != paths_b


def test_placement_explicit_mapping_wins():
    policy = PlacementPolicy(seed=0, mapping={3: "/pinned/file"})
    assert policy.path_for(3) == "/pinned/file"
    assert policy.path_for(4).startswith("/replay/")


def test_placement_rejects_bad_knobs():
    with pytest.raises(InvalidArgument):
        PlacementPolicy(fanout=0)
    with pytest.raises(InvalidArgument):
        PlacementPolicy(file_cap=100)


# ----------------------------------------------------------------------
# record repairs (counted, never silent)
# ----------------------------------------------------------------------

def test_offset_past_cap_wraps_and_counts(fs):
    rec = Reconstructor(fs, PlacementPolicy(file_cap=1 * MIB))
    rec.run([IoOp("write", 0, 5 * MIB + 4096, 8192, 0.0)])
    assert rec.stats.clamped == 1
    assert rec.stats.ops_write == 1
    # the shaped write landed inside the cap
    path = rec.policy.path_for(0)
    assert fs.inode_of(path).size <= 1 * MIB


def test_oversized_request_clamped(fs):
    rec = Reconstructor(fs, PlacementPolicy(file_cap=1 * MIB))
    rec.run([IoOp("write", 0, 0, 4 * MIB, 0.0)])
    assert rec.stats.clamped >= 1
    assert rec.stats.bytes_written == 1 * MIB


def test_unaligned_o_direct_realigned(fs):
    rec = Reconstructor(fs)
    rec.run([IoOp("write", 0, 100, 5000, 0.0, True)])
    assert rec.stats.realigned == 1
    size = fs.inode_of(rec.policy.path_for(0)).size
    assert size % BLOCK_SIZE == 0


def test_unaligned_buffered_not_realigned(fs):
    rec = Reconstructor(fs)
    rec.run([IoOp("write", 0, 100, 5000, 0.0, False)])
    assert rec.stats.realigned == 0


def test_read_beyond_eof_backfills(fs):
    rec = Reconstructor(fs)
    rec.run([IoOp("read", 0, 64 * KIB, 16 * KIB, 0.0)])
    assert rec.stats.backfill_bytes == 80 * KIB
    assert rec.stats.ops_read == 1
    assert fs.inode_of(rec.policy.path_for(0)).size == 80 * KIB


def test_zero_length_dropped(fs):
    rec = Reconstructor(fs)
    rec.run([IoOp("write", 0, 0, 0, 0.0)])
    assert rec.stats.dropped == 1
    assert rec.stats.ops == 0


def test_no_space_counted_not_raised():
    # 128 MiB device minus the 64 MiB metadata region = 64 MiB usable
    small = make_filesystem("ext4", make_device("flash", capacity=128 * MIB))
    rec = Reconstructor(small, PlacementPolicy(file_cap=4 * MIB))
    ops = [IoOp("write", i, 0, 4 * MIB, 0.0) for i in range(64)]
    rec.run(ops)  # must not raise
    assert rec.stats.no_space > 0
    assert rec.stats.ops_write + rec.stats.no_space == 64


def test_files_created_once_per_entity(fs):
    rec = Reconstructor(fs)
    rec.run([
        IoOp("write", 0, 0, 4096, 0.0),
        IoOp("write", 0, 4096, 4096, 0.0),
        IoOp("write", 1, 0, 4096, 0.0),
    ])
    assert rec.stats.files_created == 2


def test_fsync_routes_through(fs):
    rec = Reconstructor(fs)
    rec.run([IoOp("write", 0, 0, 4096, 0.0), IoOp("fsync", 0, 0, 0, 0.0)])
    assert rec.stats.ops_fsync == 1


# ----------------------------------------------------------------------
# pacing
# ----------------------------------------------------------------------

def test_trace_pacing_honours_gaps(fs):
    ops = [
        IoOp("write", 0, 0, 4096, 10.0),
        IoOp("write", 0, 4096, 4096, 12.5),
    ]
    afap = Reconstructor(make_filesystem("ext4", make_device("flash")), pacing="afap")
    afap_finish = afap.run(iter(ops), now=0.0)
    traced = Reconstructor(fs, pacing="trace")
    traced_finish = traced.run(iter(ops), now=0.0)
    # trace pacing preserves the 2.5 s inter-arrival gap; afap does not
    assert traced_finish >= 2.5
    assert afap_finish < 2.5


def test_unknown_pacing_rejected(fs):
    with pytest.raises(InvalidArgument):
        Reconstructor(fs, pacing="warp")
    with pytest.raises(InvalidArgument):
        ReplayConfig(pacing="warp")


# ----------------------------------------------------------------------
# generator + full pipeline determinism
# ----------------------------------------------------------------------

def test_generator_deterministic_and_bounded():
    profile = TraceProfile(ops=500, seed=3)
    a, b = list(generate_ops(profile)), list(generate_ops(profile))
    assert a == b
    assert len(a) >= 500  # fsync records ride along
    for op in a:
        assert op.offset + op.size <= profile.file_bytes
    assert all(x.time <= y.time for x, y in zip(a, a[1:]))


def test_generator_validates():
    with pytest.raises(InvalidArgument):
        TraceProfile(ops=-1)
    with pytest.raises(InvalidArgument):
        TraceProfile(files=0)


def test_run_replay_fingerprint_reproducible(tmp_path):
    trace = str(tmp_path / "t.bin")
    generate_trace(trace, TraceProfile(ops=2000, seed=5))
    config = ReplayConfig(seed=9)
    doc_a = run_replay(trace, config).to_dict("a")
    doc_b = run_replay(trace, config).to_dict("b")
    validate(doc_a)
    # label excluded from identity: same run, same fingerprint
    assert doc_a["fingerprint"] == doc_b["fingerprint"]
    assert doc_a["reconstruction"] == doc_b["reconstruction"]
    assert doc_a["figures"] == doc_b["figures"]


def test_run_replay_seed_changes_placement(tmp_path):
    trace = str(tmp_path / "t.bin")
    generate_trace(trace, TraceProfile(ops=2000, seed=5))
    doc_a = run_replay(trace, ReplayConfig(seed=0)).to_dict()
    doc_b = run_replay(trace, ReplayConfig(seed=1)).to_dict()
    assert doc_a["fingerprint"] != doc_b["fingerprint"]
    # but the parsed workload is the same trace either way
    assert doc_a["parse"] == doc_b["parse"]


def test_replay_attribution_sums(tmp_path):
    trace = str(tmp_path / "t.bin")
    generate_trace(trace, TraceProfile(ops=1000, seed=2))
    document = run_replay(trace, ReplayConfig()).to_dict()
    assert document["attribution"]["ok"] is True


def test_replay_compare_flags_regression(tmp_path):
    trace = str(tmp_path / "t.bin")
    generate_trace(trace, TraceProfile(ops=1000, seed=2))
    base = run_replay(trace, ReplayConfig()).to_dict("base")
    cand = {k: (dict(v) if isinstance(v, dict) else v) for k, v in base.items()}
    cand["label"] = "cand"
    cand["figures"]["ops_per_vsec"] = base["figures"]["ops_per_vsec"] * 0.5
    comparison = replay_compare(base, cand, threshold=0.10)
    assert not comparison.ok
    assert any(f.metric == "ops_per_vsec" for f in comparison.regressions)
    same = replay_compare(base, base, threshold=0.10)
    assert same.ok
