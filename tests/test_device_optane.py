"""Optane: in-place banks, update sensitivity, endurance."""

from repro.block import IoCommand, IoOp
from repro.constants import GIB, KIB, MIB
from repro.device.optane import OptaneSsd


def test_bank_interleaving():
    ssd = OptaneSsd(capacity=1 * GIB)
    assert [ssd.bank_of(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_bank_conflict_hurts_reads_and_writes():
    """In-place: both ops are address-bound (unlike flash writes)."""
    for op in (IoOp.READ, IoOp.WRITE):
        conflicted_cmds = [IoCommand(op, i * 4 * 4 * KIB, 4 * KIB) for i in range(16)]
        spread_cmds = [IoCommand(op, i * 4 * KIB, 4 * KIB) for i in range(16)]
        a = OptaneSsd(capacity=1 * GIB).submit(conflicted_cmds, 0.0)
        b = OptaneSsd(capacity=1 * GIB).submit(spread_cmds, 0.0)
        assert a.latency > 1.5 * b.latency, op


def test_low_latency_small_read():
    ssd = OptaneSsd(capacity=1 * GIB)
    result = ssd.submit([IoCommand(IoOp.READ, 0, 4 * KIB)], 0.0)
    assert result.latency < 0.0001  # ~tens of microseconds


def test_endurance_accounting():
    ssd = OptaneSsd(capacity=1 * GIB)
    assert ssd.endurance_consumed == 0.0
    ssd.submit([IoCommand(IoOp.WRITE, 0, 100 * MIB)], 0.0)
    assert ssd.endurance_consumed > 0.0
    assert ssd.lifetime_write_budget == ssd.capacity * 10.0 * 5 * 365


def test_discard_cheap():
    ssd = OptaneSsd(capacity=1 * GIB)
    result = ssd.submit([IoCommand(IoOp.DISCARD, 0, 64 * MIB)], 0.0)
    assert result.latency < 0.0001
