"""fstrim over (fragmented) free space."""

from repro.constants import GIB, KIB, MIB
from repro.device import make_device
from repro.fs import make_filesystem
from repro.tools import Fstrim


def test_trim_counts_free_runs():
    fs = make_filesystem("ext4", make_device("flash", capacity=1 * GIB))
    result = Fstrim(fs).run()
    assert result.commands == 1  # one giant free run on a fresh fs
    assert result.discarded_bytes == fs.free_space.free_bytes


def test_fragmented_free_space_costs_commands():
    fs = make_filesystem("ext4", make_device("flash", capacity=1 * GIB))
    target = fs.open("/f", o_direct=True, create=True)
    dummy = fs.open("/d", o_direct=True, create=True)
    now = 0.0
    for i in range(16):
        now = fs.write(target, i * 4 * KIB, 4 * KIB, now=now).finish_time
        now = fs.write(dummy, i * 4 * KIB, 4 * KIB, now=now).finish_time
    now = fs.unlink("/f", now=now).finish_time  # frees 16 scattered blocks
    result = Fstrim(fs).run(now)
    assert result.commands >= 17


def test_min_run_filter():
    fs = make_filesystem("ext4", make_device("flash", capacity=1 * GIB))
    target = fs.open("/f", o_direct=True, create=True)
    dummy = fs.open("/d", o_direct=True, create=True)
    now = 0.0
    for i in range(8):
        now = fs.write(target, i * 4 * KIB, 4 * KIB, now=now).finish_time
        now = fs.write(dummy, i * 4 * KIB, 4 * KIB, now=now).finish_time
    now = fs.unlink("/f", now=now).finish_time
    result = Fstrim(fs).run(now, min_run=1 * MIB)
    assert result.commands == 1  # only the big tail run


def test_max_discard_split():
    fs = make_filesystem("ext4", make_device("flash", capacity=1 * GIB))
    result = Fstrim(fs, max_discard_size=64 * MIB).run()
    assert result.commands >= fs.free_space.free_bytes // (64 * MIB)


def test_cost_per_gb():
    fs = make_filesystem("ext4", make_device("flash", capacity=1 * GIB))
    result = Fstrim(fs).run()
    assert result.cost_per_gb() > 0
