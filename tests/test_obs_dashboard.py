"""The plain-text fleet health dashboard: sparklines and frames."""

from repro.fleet.report import TickRow
from repro.obs.dashboard import BARS, Frame, render, sparkline


def _row(tick, above=2, migrated=1 << 20, running=1, waiting=0, fg=64):
    return TickRow(
        tick=tick, volumes_above=above, migrated_bytes=migrated,
        jobs_running=running, jobs_admitted=0, jobs_waiting=waiting,
        fg_ops=fg,
    )


def _summary(**overrides):
    base = {
        "metric": "m", "objective": "le", "threshold": 1.0, "target": 0.95,
        "windows": 3, "samples": 30, "bad_samples": 3,
        "compliance": 0.9, "budget_consumed": 2.0, "budget_remaining": -1.0,
        "breaches": 1, "alerts": 0, "max_fast_burn": 2.0,
        "max_slow_burn": 1.5, "last_fast_burn": 0.5, "last_slow_burn": 0.8,
        "burn": [0.0, 2.0, 0.5],
    }
    base.update(overrides)
    return base


def test_sparkline_scales_min_to_max():
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4
    assert line[0] == BARS[0] and line[-1] == BARS[-1]
    assert all(ch in BARS for ch in line)


def test_sparkline_flat_empty_and_tail():
    assert sparkline([]) == ""
    assert sparkline([0.0, 0.0]) == BARS[0] * 2  # all-zero: baseline
    assert sparkline([5.0, 5.0]) == BARS[3] * 2  # flat nonzero: mid
    assert len(sparkline(list(range(100)), width=10)) == 10


def test_render_shows_slos_alerts_and_fleet_curves():
    frame = Frame(
        tick=3, ticks_total=6, now=1.0, volumes=8,
        rows=[_row(t) for t in range(4)],
        slo_summaries={"fg_read_latency": _summary()},
        alerts=[{"slo": "fg_read_latency", "window": 2, "time_s": 0.75,
                 "fast_burn": 2.5, "slow_burn": 1.6, "bad": 3, "samples": 10}],
        firing=["fg_read_latency"],
        budget_per_tick=2 << 20,
    )
    text = render(frame)
    assert "tick 4/6" in text and "8 volumes" in text
    assert "fg_read_latency" in text
    assert "FIRING" in text
    assert "1 burn-rate alert" in text
    assert "fast 2.50 slow 1.60" in text
    assert "above-trigger" in text and "migrated MiB" in text
    assert "(budget 2.00)" in text


def test_render_without_alerts_or_slos():
    frame = Frame(
        tick=0, ticks_total=1, now=0.25, volumes=2,
        rows=[_row(0)], slo_summaries={}, alerts=[], firing=[],
    )
    text = render(frame)
    assert "no alerts fired" in text
    assert "FIRING" not in text


def test_render_state_column_breach_vs_ok():
    def frame_for(summary, firing):
        return Frame(
            tick=0, ticks_total=1, now=0.25, volumes=1,
            rows=[], slo_summaries={"s": summary}, alerts=[], firing=firing,
        )
    assert " ok" in render(frame_for(_summary(breaches=0), []))
    assert "breach" in render(frame_for(_summary(breaches=2), []))
    assert "FIRING" in render(frame_for(_summary(), ["s"]))


def test_render_is_deterministic():
    frame_args = dict(
        tick=1, ticks_total=4, now=0.5, volumes=4,
        rows=[_row(0), _row(1, above=3)],
        slo_summaries={"a": _summary(), "b": _summary(compliance=1.0)},
        alerts=[], firing=[],
    )
    assert render(Frame(**frame_args)) == render(Frame(**frame_args))
