"""Free-space manager: allocation policies and invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import BLOCK_SIZE as B
from repro.errors import InvalidArgument, NoSpaceError
from repro.fs import FreeSpaceManager


def manager(blocks=100):
    return FreeSpaceManager(0, blocks * B)


def test_alloc_contiguous_first_fit():
    m = manager()
    assert m.alloc_contiguous(10 * B) == 0
    assert m.alloc_contiguous(10 * B) == 10 * B


def test_alloc_with_goal():
    m = manager()
    m.alloc_at(0, 10 * B)
    m.alloc_at(20 * B, 10 * B)
    # goal inside the second gap: allocate after it, wrapping if needed
    start = m.alloc_contiguous(5 * B, goal=30 * B)
    assert start == 30 * B


def test_goal_wraps_around():
    m = manager(10)
    m.alloc_at(5 * B, 5 * B)
    start = m.alloc_contiguous(3 * B, goal=8 * B)
    assert start == 0  # nothing after the goal; wraps to the front


def test_alloc_stitches_in_address_order():
    m = manager(100)
    # free space: [0,10) [20,30) [40,100) — no single run holds 65 blocks
    m.alloc_at(10 * B, 10 * B)
    m.alloc_at(30 * B, 10 * B)
    runs = m.alloc(65 * B)
    assert runs == [(0, 10 * B), (20 * B, 10 * B), (40 * B, 45 * B)]


def test_alloc_no_space():
    m = manager(10)
    with pytest.raises(NoSpaceError):
        m.alloc(11 * B)
    with pytest.raises(NoSpaceError):
        m.alloc_contiguous(11 * B)


def test_free_coalesces():
    m = manager(100)
    m.alloc_at(0, 30 * B)
    m.free(0, 10 * B)
    m.free(20 * B, 10 * B)  # coalesces with the [30, 100) tail
    assert m.stats().run_count == 2
    m.free(10 * B, 10 * B)  # bridges everything
    assert m.stats().run_count == 1
    assert m.free_bytes == 100 * B


def test_double_free_detected():
    m = manager(10)
    m.alloc_at(0, 5 * B)
    m.free(0, 5 * B)
    with pytest.raises(InvalidArgument):
        m.free(0, 5 * B)


def test_alloc_at_occupied():
    m = manager(10)
    m.alloc_at(0, 5 * B)
    with pytest.raises(NoSpaceError):
        m.alloc_at(4 * B, 2 * B)


def test_unaligned_rejected():
    m = manager(10)
    with pytest.raises(InvalidArgument):
        m.alloc(B + 1)
    with pytest.raises(InvalidArgument):
        FreeSpaceManager(1, 2 * B)


def test_stats():
    m = manager(100)
    m.alloc_at(10 * B, 10 * B)
    stats = m.stats()
    assert stats.free_bytes == 90 * B
    assert stats.run_count == 2
    assert stats.largest_run == 80 * B


actions = st.lists(
    st.tuples(st.sampled_from(["alloc", "alloc_contig"]), st.integers(1, 20)),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(actions)
def test_alloc_free_roundtrip_conserves_space(seq):
    m = manager(200)
    total = 200 * B
    held = []
    for kind, blocks in seq:
        length = blocks * B
        try:
            if kind == "alloc_contig":
                start = m.alloc_contiguous(length)
                held.append((start, length))
            else:
                held.extend(m.alloc(length))
        except NoSpaceError:
            continue
        m.check_invariants()
    assert m.free_bytes == total - sum(l for _, l in held)
    for start, length in held:
        m.free(start, length)
        m.check_invariants()
    assert m.free_bytes == total
    assert m.stats().run_count == 1
