"""Table formatting."""

from repro.stats import format_table


def test_basic_table():
    out = format_table(["a", "bb"], [[1, 2.5], ["x", 0.000123]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert set(lines[1]) <= {"-", " "}


def test_alignment():
    out = format_table(["col"], [["longvalue"], ["s"]])
    lines = out.splitlines()
    assert len(lines[2]) >= len("longvalue")


def test_number_formats():
    out = format_table(["n"], [[1234567.0], [0.5], [0.0000001], [0]])
    assert "1,234,567" in out
    assert "0.50" in out
