"""Fault injection must be zero-cost when silent, reproducible when armed.

Mirror of ``test_obs_determinism.py``: an armed-but-empty fault plane runs
every check on the hot path, and must still produce results bit-identical
to the null plane — checks read the timeline, they never advance it.  And
a seeded campaign must reproduce itself fire-for-fire.
"""

import pytest

from repro.bench.experiments import synthetic_defrag
from repro.constants import MIB
from repro.faults import FaultPlan, FaultPlane, hooks
from repro.faults.campaign import CampaignConfig, run_campaign


@pytest.fixture(autouse=True)
def _disarm_after():
    yield
    hooks.disarm()


def _run_once(armed: bool):
    if armed:
        # a live plane with an empty plan: every layer consults it
        context = hooks.use(FaultPlane(FaultPlan(), active=True))
    else:
        context = hooks.use(hooks.NULL)
    with context:
        return synthetic_defrag.run(
            "ext4", "flash",
            file_size=4 * MIB,
            variants=("original", "fragpicker_b"),
            patterns=("seq_read", "stride_read"),
        )


def test_armed_empty_plane_is_bit_identical():
    armed = _run_once(armed=True)
    silent = _run_once(armed=False)
    assert set(armed.cells) == set(silent.cells)
    for variant in armed.cells:
        for pattern in armed.cells[variant]:
            a = armed.cells[variant][pattern]
            b = silent.cells[variant][pattern]
            # == (not approx): virtual time must not shift by one float ulp
            assert a.throughput_mbps == b.throughput_mbps, (variant, pattern)
            assert a.defrag_write_mb == b.defrag_write_mb
            assert a.defrag_read_mb == b.defrag_read_mb
            assert a.defrag_elapsed == b.defrag_elapsed
            assert a.fragments_after == b.fragments_after


def test_campaign_fingerprint_is_reproducible():
    first = run_campaign(CampaignConfig(seed=11, files=2))
    second = run_campaign(CampaignConfig(seed=11, files=2))
    assert first.fingerprint == second.fingerprint
    assert first.faults_injected == second.faults_injected
    assert first.by_site_kind == second.by_site_kind


def test_different_seeds_draw_different_storms():
    storms = {
        run_campaign(CampaignConfig(seed=seed, files=2)).fingerprint
        for seed in (0, 1, 2, 3)
    }
    assert len(storms) > 1
