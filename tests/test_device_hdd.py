"""HDD: seeks, rotation, serialization."""

from repro.block import IoCommand, IoOp
from repro.constants import GIB, KIB, MIB
from repro.device.hdd import HddDevice


def read(offset, length=128 * KIB):
    return IoCommand(IoOp.READ, offset, length)


def test_seek_monotone_in_distance():
    hdd = HddDevice(capacity=4 * GIB)
    times = [hdd.seek_time(d) for d in [4 * KIB, 1 * MIB, 64 * MIB, 1 * GIB]]
    assert times == sorted(times)
    assert times[0] > 0


def test_sequential_access_skips_seek():
    hdd = HddDevice(capacity=4 * GIB)
    first = hdd.submit([read(0)], 0.0)
    sequential = hdd.submit([read(128 * KIB)], first.finish_time)
    hdd2 = HddDevice(capacity=4 * GIB)
    hdd2.submit([read(0)], 0.0)
    random = hdd2.submit([read(1 * GIB)], first.finish_time)
    assert sequential.latency < random.latency


def test_fragmentation_costs_seeks():
    hdd = HddDevice(capacity=4 * GIB)
    contig = hdd.submit([read(0, 128 * KIB)], 0.0)
    hdd2 = HddDevice(capacity=4 * GIB)
    frag = hdd2.submit([read(i * 1 * MIB, 4 * KIB) for i in range(32)], 0.0)
    assert frag.latency > 10 * contig.latency


def test_discard_is_cheap():
    hdd = HddDevice(capacity=4 * GIB)
    trim = hdd.submit([IoCommand(IoOp.DISCARD, 1 * GIB, 64 * MIB)], 0.0)
    assert trim.latency < 0.001


def test_head_position_tracked():
    hdd = HddDevice(capacity=4 * GIB)
    hdd.submit([read(0, 64 * KIB)], 0.0)
    assert hdd.head_position == 64 * KIB
