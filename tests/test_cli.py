"""The command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_fast_experiment(capsys):
    assert main(["run", "splitting"]) == 0
    out = capsys.readouterr().out
    assert "cmds/syscall" in out


def test_run_with_options(capsys):
    assert main(["run", "splitting", "--device", "microsd"]) == 0
    assert "microsd" in capsys.readouterr().out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nope"])


def test_obs_smoke_writes_valid_trace(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    assert main(["obs", "--smoke", "--out", str(trace_path),
                 "--metrics-json", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "split fan-out" in out
    assert "fragpicker" in out
    doc = json.loads(trace_path.read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert "fragpicker.defragment" in names and "fragpicker.migrate" in names
    metrics = json.loads(metrics_path.read_text())
    assert any(name.startswith("device.optane.command_latency") for name in metrics)


def test_obs_smoke_fanout_shifts_toward_one():
    from repro.bench.experiments import obs_trace
    result = obs_trace.run(smoke=True)
    assert result.fanout_before.count and result.fanout_after.count
    assert result.fanout_after.mean < result.fanout_before.mean
    assert result.defrag.ranges_migrated > 0


def test_faults_smoke_survives(capsys, tmp_path):
    json_path = tmp_path / "faults.json"
    assert main(["faults", "--smoke", "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "SURVIVED" in out
    assert "crash points recovered" in out
    doc = json.loads(json_path.read_text())
    assert doc["ok"] is True
    assert doc["sweeps"][0]["recovered"] == doc["sweeps"][0]["points"]
    assert doc["campaign"]["data_intact"] is True


def test_trace_smoke_writes_flamegraph_and_flow_trace(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    flame_path = tmp_path / "flame.txt"
    summary_path = tmp_path / "summary.json"
    assert main(["trace", "--smoke", "--out", str(trace_path),
                 "--flame", str(flame_path), "--json", str(summary_path)]) == 0
    out = capsys.readouterr().out
    assert "provenance:" in out
    assert "slowest syscalls" in out
    assert "critical path" in out.lower()
    # the Chrome trace carries causal flow arrows on the prov category
    doc = json.loads(trace_path.read_text())
    prov = [e for e in doc["traceEvents"] if e.get("cat") == "prov"]
    assert any(e["ph"] == "s" for e in prov)
    assert any(e["ph"] == "f" for e in prov)
    # collapsed stacks: "frame;frame;... <integer-microseconds>" per line
    stacks = flame_path.read_text().splitlines()
    assert stacks
    for line in stacks:
        frames, weight = line.rsplit(" ", 1)
        assert frames and int(weight) >= 0
    summary = json.loads(summary_path.read_text())
    assert summary["schema"] == "repro.obs.trace/v1"
    assert summary["provenance"]["layer_crossing"] > 0
    assert summary["critical_path"]["ok"] is True


def test_obs_critical_path_flag(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    assert main(["obs", "--smoke", "--critical-path",
                 "--out", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "critical path:" in out
    assert "provenance:" in out
    assert "tail command" in out  # the forest's fan-out table rode along


def test_every_experiment_registered():
    # one CLI entry per paper artifact + ablations + extensions
    assert len(EXPERIMENTS) >= 15
    for spec in EXPERIMENTS.values():
        assert callable(spec["fn"])
        assert spec["help"]


def test_fleet_smoke_runs_and_writes_document(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["fleet", "--smoke", "--volumes", "4", "--json"]) == 0
    out = capsys.readouterr().out
    assert "fleet SLO report" in out
    assert "p99" in out
    doc = json.loads((tmp_path / "FLEET_smoke.json").read_text())
    assert doc["schema"] == "repro.fleet/v1"
    assert doc["jobs"]["admitted"] >= 1
    assert doc["migration"]["budget_ok"] is True


def test_fleet_compare_flow(capsys, tmp_path):
    a = tmp_path / "FLEET_a.json"
    b = tmp_path / "FLEET_b.json"
    assert main(["fleet", "--smoke", "--volumes", "4", "--json", str(a)]) == 0
    assert main(["fleet", "--smoke", "--volumes", "4", "--json", str(b)]) == 0
    assert a.read_text() == b.read_text()  # byte-reproducible documents
    assert main(["fleet", "--compare", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "fleet compare" in out
    assert "0 regression(s)" in out


def test_fleet_exports_obs_artifacts(capsys, tmp_path):
    trace = tmp_path / "fleet_trace.json"
    prom = tmp_path / "fleet.prom"
    assert main(["fleet", "--smoke", "--volumes", "4", "--seed", "2",
                 "--json", str(tmp_path / "f.json"),
                 "--trace", str(trace), "--prom", str(prom)]) == 0
    doc = json.loads(trace.read_text())
    assert any(e["name"] == "fleet.tick" for e in doc["traceEvents"])
    assert "fleet.volumes_above" in doc["metrics"]
    assert any(line.startswith("fleet_") for line in prom.read_text().splitlines())


def test_slo_smoke_writes_valid_document(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["slo", "--smoke", "--volumes", "8", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "SLO report" in out
    assert "fg_read_latency" in out
    assert "burn-rate alert" in out
    from repro.obs import slo as obs_slo

    doc = json.loads((tmp_path / "SLO_smoke.json").read_text())
    assert doc["schema"] == "repro.slo/v1"
    obs_slo.validate(doc)
    assert doc["source"]["kind"] == "fleet"
    assert "fg_read_latency" in doc["slos"]


def test_slo_documents_are_byte_reproducible(tmp_path):
    a = tmp_path / "SLO_a.json"
    b = tmp_path / "SLO_b.json"
    for path in (a, b):
        assert main(["slo", "--smoke", "--volumes", "8", "--seed", "0",
                     "--json", str(path)]) == 0
    assert a.read_text() == b.read_text()


def test_slo_prom_export(capsys, tmp_path):
    prom = tmp_path / "slo.prom"
    assert main(["slo", "--smoke", "--volumes", "4", "--seed", "0",
                 "--json", str(tmp_path / "s.json"),
                 "--prom", str(prom)]) == 0
    text = prom.read_text()
    assert "# HELP slo_" in text
    assert "# TYPE slo_" in text
    assert "slo_fg_read_latency_compliance" in text


def test_slo_compare_flags_storm_regression(capsys, tmp_path):
    clean = tmp_path / "SLO_clean.json"
    storm = tmp_path / "SLO_storm.json"
    assert main(["slo", "--smoke", "--volumes", "8", "--seed", "0",
                 "--json", str(clean)]) == 0
    assert main(["slo", "--smoke", "--volumes", "8", "--seed", "0",
                 "--faults", "--json", str(storm)]) == 0
    assert main(["slo", "--compare", str(clean), str(storm)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    # identical documents compare clean
    assert main(["slo", "--compare", str(clean), str(clean)]) == 0


def test_fleet_slo_gating_report(capsys, tmp_path):
    assert main(["fleet", "--smoke", "--volumes", "8", "--seed", "0",
                 "--slo", "--json", str(tmp_path / "f.json")]) == 0
    out = capsys.readouterr().out
    assert "SLO gating" in out
    doc = json.loads((tmp_path / "f.json").read_text())
    assert "slo" in doc
    assert "slo" in doc["config"]
    assert doc["slo"]["alerts"]


def test_watch_once_matches_golden(capsys):
    assert main(["watch", "--smoke", "--volumes", "8", "--seed", "0",
                 "--once"]) == 0
    out = capsys.readouterr().out
    golden = Path(__file__).parent / "golden" / "watch_once_smoke.txt"
    assert out == golden.read_text()


def test_watch_every_prints_periodic_frames(capsys):
    assert main(["watch", "--smoke", "--volumes", "4", "--seed", "1",
                 "--every", "3"]) == 0
    out = capsys.readouterr().out
    frames = out.count("fleet health —")
    # 6 smoke ticks, a frame every 3rd tick plus the final one
    assert frames == 2
    assert "burn-rate alert" in out or "no alerts fired" in out
