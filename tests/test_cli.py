"""The command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_fast_experiment(capsys):
    assert main(["run", "splitting"]) == 0
    out = capsys.readouterr().out
    assert "cmds/syscall" in out


def test_run_with_options(capsys):
    assert main(["run", "splitting", "--device", "microsd"]) == 0
    assert "microsd" in capsys.readouterr().out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nope"])


def test_every_experiment_registered():
    # one CLI entry per paper artifact + ablations + extensions
    assert len(EXPERIMENTS) >= 15
    for spec in EXPERIMENTS.values():
        assert callable(spec["fn"])
        assert spec["help"]
