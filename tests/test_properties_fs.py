"""Model-based property tests of the filesystem syscall layer.

A random sequence of syscalls is applied both to the simulated filesystem
and to a trivial in-memory reference model; afterwards the data contents,
sizes, and accounting invariants must agree.  This is the strongest
correctness check in the suite: it exercises extent maps, allocators, the
page cache, writeback, fallocate, truncate, and unlink together.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.constants import BLOCK_SIZE, GIB
from repro.device import make_device
from repro.errors import NoSpaceError
from repro.fs import make_filesystem
from repro.fs.base import FallocMode

PAGES = 64  # model file span, in blocks
FILES = ["/a", "/b", "/c"]

syscall = st.one_of(
    st.tuples(st.just("write"), st.sampled_from(FILES), st.integers(0, PAGES - 1),
              st.integers(1, 8), st.booleans(), st.integers(0, 255)),
    st.tuples(st.just("punch"), st.sampled_from(FILES), st.integers(0, PAGES - 1),
              st.integers(1, 8)),
    st.tuples(st.just("falloc"), st.sampled_from(FILES), st.integers(0, PAGES - 1),
              st.integers(1, 8)),
    st.tuples(st.just("fsync"), st.sampled_from(FILES)),
    st.tuples(st.just("truncate"), st.sampled_from(FILES), st.integers(0, PAGES)),
    st.tuples(st.just("unlink"), st.sampled_from(FILES)),
    st.tuples(st.just("drop_caches"),),
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from(["ext4", "f2fs", "btrfs"]), st.lists(syscall, max_size=40))
def test_fs_agrees_with_reference_model(fs_type, calls):
    fs = make_filesystem(fs_type, make_device("optane", capacity=1 * GIB))
    model = {}  # path -> {"size": int, "data": bytearray}
    handles = {}
    now = 0.0

    def ensure(path):
        if path not in model:
            fs.create(path)
            model[path] = {"size": 0, "data": bytearray((PAGES + 8) * BLOCK_SIZE)}
        if path not in handles:
            handles[path] = fs.open(path, o_direct=False, app="t")
        return handles[path]

    for call in calls:
        op = call[0]
        if op == "write":
            _, path, page, count, o_direct, fill = call
            handle = ensure(path)
            offset, length = page * BLOCK_SIZE, count * BLOCK_SIZE
            data = bytes([fill]) * length
            direct_handle = fs.open(path, o_direct=o_direct, app="t")
            now = fs.write(direct_handle, offset, data=data, now=now).finish_time
            entry = model[path]
            entry["data"][offset : offset + length] = data
            entry["size"] = max(entry["size"], offset + length)
        elif op == "punch":
            _, path, page, count = call
            handle = ensure(path)
            offset, length = page * BLOCK_SIZE, count * BLOCK_SIZE
            now = fs.fallocate(handle, FallocMode.PUNCH_HOLE, offset, length, now=now).finish_time
            model[path]["data"][offset : offset + length] = b"\x00" * length
        elif op == "falloc":
            _, path, page, count = call
            handle = ensure(path)
            offset, length = page * BLOCK_SIZE, count * BLOCK_SIZE
            now = fs.fallocate(handle, FallocMode.ALLOCATE, offset, length, now=now).finish_time
            model[path]["size"] = max(model[path]["size"], offset + length)
        elif op == "fsync":
            _, path = call
            now = fs.fsync(ensure(path), now=now).finish_time
        elif op == "truncate":
            _, path, pages = call
            handle = ensure(path)
            size = pages * BLOCK_SIZE
            old = model[path]["size"]
            now = fs.truncate(handle, size, now=now).finish_time
            if size < old:
                model[path]["data"][size:old] = b"\x00" * (old - size)
            model[path]["size"] = size
        elif op == "unlink":
            _, path = call
            if path in model:
                now = fs.unlink(path, now=now).finish_time
                del model[path]
                handles.pop(path, None)
        elif op == "drop_caches":
            fs.sync(now=now)
            fs.drop_caches()

    # final agreement
    for path, entry in model.items():
        inode = fs.inode_of(path)
        assert inode.size == entry["size"], path
        if entry["size"]:
            got = fs.read(handles[path], 0, entry["size"], now=now, want_data=True).data
            assert got == bytes(entry["data"][: entry["size"]]), path
        inode.extent_map.check_invariants()
    fs.free_space.check_invariants()
    # space accounting: free + mapped(+ f2fs's carved log slack) = total
    mapped = sum(inode.extent_map.mapped_bytes for inode in fs.inodes.values())
    total = fs.free_space.region_end - fs.free_space.region_start
    slack = total - fs.free_space.free_bytes - mapped
    assert 0 <= slack <= 2 * 1024 * 1024  # at most one active log segment
