"""Host-side scheduler: kernel cost, shared CPU, tracing."""

from repro.block import BlockScheduler, IoCommand, IoOp
from repro.constants import KIB
from repro.device import make_device
from repro.constants import GIB


def make_sched(kernel=0.00001):
    device = make_device("optane", capacity=1 * GIB)
    return BlockScheduler(device, kernel_overhead_per_request=kernel)


def test_empty_batch_is_free():
    sched = make_sched()
    result = sched.submit([], now=5.0)
    assert result.finish_time == 5.0
    assert result.commands == 0


def test_kernel_cost_scales_with_commands():
    sched = make_sched(kernel=0.001)
    one = sched.submit([IoCommand(IoOp.READ, 0, 4 * KIB)], now=0.0)
    many_commands = [IoCommand(IoOp.READ, i * 64 * KIB, 4 * KIB) for i in range(8)]
    many = sched.submit(many_commands, now=one.finish_time)
    assert many.kernel_time == 8 * one.kernel_time


def test_requests_counted():
    sched = make_sched()
    sched.submit([IoCommand(IoOp.READ, 0, 4 * KIB)] , now=0.0)
    sched.submit([IoCommand(IoOp.READ, 0, 4 * KIB), IoCommand(IoOp.READ, 64 * KIB, 4 * KIB)], now=1.0)
    assert sched.requests_submitted == 3


def test_tracer_sees_commands():
    sched = make_sched()
    sched.submit([IoCommand(IoOp.WRITE, 0, 8 * KIB, "me")], now=0.0)
    assert sched.tracer.tag("me").write_bytes == 8 * KIB


def test_shared_cpu_serializes_submitters():
    """Two submitters at the same instant contend for kernel CPU."""
    sched = make_sched(kernel=0.001)
    a = sched.submit([IoCommand(IoOp.READ, 0, 4 * KIB)], now=0.0)
    b = sched.submit([IoCommand(IoOp.READ, 64 * KIB, 4 * KIB)], now=0.0)
    # b's kernel work had to queue behind a's
    assert b.finish_time > a.finish_time


def test_latency_includes_kernel_and_device():
    sched = make_sched(kernel=0.001)
    result = sched.submit([IoCommand(IoOp.READ, 0, 4 * KIB)], now=0.0)
    assert result.latency >= 0.001
    assert result.finish_time == result.latency
