"""Ext4 / F2FS / Btrfs update policies."""

import pytest

from repro.constants import KIB, MIB
from repro.device import make_device
from repro.constants import GIB
from repro.fs import make_filesystem
from repro.fs.f2fs import SEGMENT_SIZE


def disk_map(fs, path, length):
    return fs.inode_of(path).extent_map.disk_ranges(0, length)


def test_ext4_updates_in_place(fs):
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 64 * KIB)
    before = disk_map(fs, "/f", 64 * KIB)
    fs.write(handle, 0, 64 * KIB)
    assert disk_map(fs, "/f", 64 * KIB) == before


def test_ext4_delayed_allocation_contiguous():
    fs = make_filesystem("ext4", make_device("optane", capacity=1 * GIB))
    handle = fs.open("/f", create=True)
    # buffered writes in random order; allocation happens at fsync
    for page in (3, 1, 0, 2):
        fs.write(handle, page * 4 * KIB, 4 * KIB)
    assert fs.inode_of("/f").extent_map.mapped_bytes == 0
    fs.fsync(handle)
    assert fs.inode_of("/f").fragment_count() == 1


def test_f2fs_rewrite_moves_data_when_ipu_off():
    fs = make_filesystem("f2fs", make_device("flash", capacity=1 * GIB))
    fs.set_ipu(False)
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 64 * KIB)
    before = disk_map(fs, "/f", 64 * KIB)
    fs.write(handle, 0, 64 * KIB)
    assert disk_map(fs, "/f", 64 * KIB) != before


def test_f2fs_ipu_knob():
    fs = make_filesystem("f2fs", make_device("flash", capacity=1 * GIB))
    assert fs.ipu_enabled  # adaptive IPU on by default
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 64 * KIB)
    before = disk_map(fs, "/f", 64 * KIB)
    fs.write(handle, 0, 64 * KIB)  # in place
    assert disk_map(fs, "/f", 64 * KIB) == before
    fs.set_ipu(False)
    fs.write(handle, 0, 64 * KIB)  # now relocates
    assert disk_map(fs, "/f", 64 * KIB) != before
    assert fs.sysfs["ipu_policy"] == "0"


def test_f2fs_log_allocates_sequentially():
    fs = make_filesystem("f2fs", make_device("flash", capacity=1 * GIB))
    a = fs.open("/a", o_direct=True, create=True)
    b = fs.open("/b", o_direct=True, create=True)
    fs.write(a, 0, 16 * KIB)
    fs.write(b, 0, 16 * KIB)
    ra = disk_map(fs, "/a", 16 * KIB)
    rb = disk_map(fs, "/b", 16 * KIB)
    # /b lands immediately after /a in the log
    assert rb[0][0] == ra[0][0] + 16 * KIB


def test_f2fs_old_blocks_freed_on_move():
    fs = make_filesystem("f2fs", make_device("flash", capacity=1 * GIB))
    fs.set_ipu(False)
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 64 * KIB)
    free_before = fs.free_space.free_bytes
    fs.write(handle, 0, 64 * KIB)
    # the new copy comes from the already-carved log segment, the old
    # blocks return to the pool: free space *grows* by the rewrite size
    assert fs.free_space.free_bytes == free_before + 64 * KIB


def test_btrfs_always_cow():
    fs = make_filesystem("btrfs", make_device("optane", capacity=1 * GIB))
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 64 * KIB)
    before = disk_map(fs, "/f", 64 * KIB)
    fs.write(handle, 0, 64 * KIB)
    after = disk_map(fs, "/f", 64 * KIB)
    assert after != before


def test_btrfs_cow_frees_old_copy():
    fs = make_filesystem("btrfs", make_device("optane", capacity=1 * GIB))
    handle = fs.open("/f", o_direct=True, create=True)
    fs.write(handle, 0, 1 * MIB)
    free_after_first = fs.free_space.free_bytes
    for _ in range(5):
        fs.write(handle, 0, 1 * MIB)
        assert fs.free_space.free_bytes == free_after_first


def test_interleaved_writers_fragment_each_other(any_fs):
    fs = any_fs
    a = fs.open("/a", o_direct=True, create=True)
    b = fs.open("/b", o_direct=True, create=True)
    now = 0.0
    for i in range(16):
        now = fs.write(a, i * 4 * KIB, 4 * KIB, now=now).finish_time
        now = fs.write(b, i * 4 * KIB, 4 * KIB, now=now).finish_time
    assert fs.inode_of("/a").fragment_count() >= 8
